//! Cluster pre-selection (Fig. 1 line 5).
//!
//! "Line 5 performs a pre-selection of clusters i.e. it preserves only
//! those clusters for a possible partitioning that are expected to
//! yield high energy savings based on the bus traffic calculation"
//! (§3.2). The expensive per-cluster work (list scheduling, binding,
//! utilization — lines 6–13) only runs for the survivors, capped at the
//! designer's `N_max^c`.
//!
//! The expected saving of a cluster is its software-side energy (µP
//! instruction energy attributed to its blocks in the initial run)
//! minus the additional bus-transfer energy of Fig. 3.

use std::collections::HashSet;

use corepart_ir::cluster::ClusterId;
use corepart_isa::simulator::{NullSink, RunStats, SimConfig, SimError};
use corepart_isa::trace::{ReferenceTrace, TraceReplayer};
use corepart_tech::units::Energy;

use crate::bus_transfer::{cluster_transfer_energy, transfer_counts, TransferCounts};
use crate::prepare::PreparedApp;
use crate::system::SystemConfig;

/// The pre-selection score of one cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateScore {
    /// Which cluster.
    pub cluster: ClusterId,
    /// µP energy the cluster costs in the initial design.
    pub sw_energy: Energy,
    /// Additional bus-transfer energy if moved to the ASIC core
    /// (standalone, no synergy).
    pub transfer_energy: Energy,
    /// Per-invocation transfer word counts.
    pub transfers: TransferCounts,
    /// How often the cluster is entered per application run.
    pub invocations: u64,
    /// Expected saving: `sw_energy - transfer_energy` (joules).
    pub score: Energy,
}

/// Scores every cluster and keeps the best `n_max` with positive
/// expected savings, sorted by descending score.
pub fn preselect(
    prepared: &PreparedApp,
    initial: &RunStats,
    config: &SystemConfig,
) -> Vec<CandidateScore> {
    let mut scored: Vec<CandidateScore> = prepared
        .chain
        .iter()
        .filter_map(|c| {
            let invocations =
                corepart_ir::cluster::cluster_invocations(&prepared.app, &prepared.profile, c);
            if invocations == 0 {
                return None; // dead code cannot save energy
            }
            let sw_energy = initial.energy_of(&c.blocks);
            let counts = transfer_counts(&prepared.chain, c.id, &HashSet::new());
            let transfer = cluster_transfer_energy(
                &prepared.chain,
                c.id,
                &HashSet::new(),
                invocations,
                &config.bus,
            );
            Some(CandidateScore {
                cluster: c.id,
                sw_energy,
                transfer_energy: transfer,
                transfers: counts,
                invocations,
                score: sw_energy - transfer,
            })
        })
        .filter(|s| s.score.joules() > 0.0)
        .collect();
    scored.sort_by(|a, b| b.score.joules().total_cmp(&a.score.joules()));
    scored.truncate(config.n_max);
    scored
}

/// [`preselect`] driven by a captured reference trace instead of a
/// live run: the per-block energy attribution the scores need is
/// recovered by replaying the capture through a [`NullSink`] (no cache
/// hierarchy — pre-selection only consumes µP-side block energies),
/// bit-identical to the `RunStats` of the direct simulation the trace
/// was captured from.
///
/// # Errors
///
/// [`SimError`] only on a trace that does not belong to `prepared`.
pub fn preselect_from_trace(
    prepared: &PreparedApp,
    trace: &ReferenceTrace,
    config: &SystemConfig,
) -> Result<Vec<CandidateScore>, SimError> {
    let replayer = TraceReplayer::new(&prepared.prog, &prepared.app, &config.energy_table);
    let stats = replayer.replay(trace, &SimConfig::initial(config.max_cycles), &mut NullSink)?;
    Ok(preselect(prepared, &stats, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare::{prepare, Workload};
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;
    use corepart_isa::simulator::{NullSink, SimConfig, Simulator};

    fn prepared_and_stats(src: &str) -> (PreparedApp, RunStats) {
        let app = lower(&parse(src).unwrap()).unwrap();
        let prepared = prepare(app, Workload::empty(), &SystemConfig::new()).unwrap();
        let stats = Simulator::new(&prepared.prog, &prepared.app)
            .run(&SimConfig::initial(1_000_000_000), &mut NullSink)
            .unwrap();
        (prepared, stats)
    }

    const TWO_LOOPS: &str = r#"app t; var a[256]; var s = 0; var tiny = 0;
        func main() {
            tiny = 3;
            for (var i = 0; i < 256; i = i + 1) { a[i] = a[i] * 7 + i; }
            for (var j = 0; j < 4; j = j + 1) { s = s + a[j]; }
        }"#;

    #[test]
    fn hot_loop_ranks_first() {
        let (prepared, stats) = prepared_and_stats(TWO_LOOPS);
        let config = SystemConfig::new();
        let cands = preselect(&prepared, &stats, &config);
        assert!(!cands.is_empty());
        // The 256-iteration loop must outrank everything.
        let top = &cands[0];
        let top_cluster = prepared.chain.cluster(top.cluster);
        assert!(top_cluster.is_loop());
        assert!(top.sw_energy.joules() > 0.0);
        // Scores are sorted descending.
        for w in cands.windows(2) {
            assert!(w[0].score.joules() >= w[1].score.joules());
        }
    }

    #[test]
    fn n_max_caps_survivors() {
        let (prepared, stats) = prepared_and_stats(TWO_LOOPS);
        let config = SystemConfig::new().with_n_max(1);
        let cands = preselect(&prepared, &stats, &config);
        assert_eq!(cands.len(), 1);
    }

    #[test]
    fn dead_clusters_dropped() {
        let (prepared, stats) = prepared_and_stats(
            r#"app t; var g = 0; var s = 0;
            func main() {
                if (g > 0) { while (s < 100) { s = s + 1; } }
                s = s + 1;
            }"#,
        );
        let config = SystemConfig::new();
        let cands = preselect(&prepared, &stats, &config);
        // The never-executed while loop must not be a candidate.
        for c in &cands {
            assert!(c.invocations > 0);
        }
    }

    #[test]
    fn trace_driven_preselection_equals_direct() {
        use corepart_isa::trace::TraceBuilder;

        let app = lower(&parse(TWO_LOOPS).unwrap()).unwrap();
        let prepared = prepare(app, Workload::empty(), &SystemConfig::new()).unwrap();
        let config = SystemConfig::new();

        // One recorded run: stats for the direct path, trace for the
        // replayed path.
        let mut builder = TraceBuilder::new(usize::MAX);
        let stats = Simulator::with_energy_table(
            &prepared.prog,
            &prepared.app,
            config.energy_table.clone(),
        )
        .run_recorded(
            &SimConfig::initial(config.max_cycles),
            &mut NullSink,
            &mut builder,
        )
        .unwrap();
        let trace = builder.finish(stats.return_value).unwrap();

        let direct = preselect(&prepared, &stats, &config);
        let replayed = preselect_from_trace(&prepared, &trace, &config).unwrap();
        assert!(!direct.is_empty());
        assert_eq!(direct, replayed);
    }

    #[test]
    fn transfer_heavy_tiny_clusters_filtered() {
        // A cluster whose transfer energy exceeds its software energy
        // has a negative score and is dropped.
        let (prepared, stats) = prepared_and_stats(
            r#"app t; var a = 1; var b = 2; var c = 3; var d = 4; var o = 0;
            func main() {
                a = b + 1;
                if (o == 0) { o = a + b + c + d; }
                d = o * 2;
            }"#,
        );
        let config = SystemConfig::new();
        let cands = preselect(&prepared, &stats, &config);
        for c in &cands {
            assert!(c.score.joules() > 0.0);
        }
    }
}
