//! Reference-trace capture and replay.
//!
//! [`SimConfig::hw_blocks`](crate::simulator::SimConfig::hw_blocks)
//! changes *accounting only* — a partitioned run executes exactly the
//! same instruction stream as the initial run, because hardware-mapped
//! blocks still execute functionally. Verification therefore does not
//! need to re-interpret the program per candidate: one captured
//! reference execution (the pc stream plus the data addresses of every
//! load/store, in order) contains everything the energy and cache
//! accounting consume, and any candidate's `hw_blocks` filter can be
//! applied at *replay* time.
//!
//! * [`TraceBuilder`] is an [`ExecRecorder`] that encodes the streams
//!   compactly while [`Simulator::run_recorded`](crate::simulator::Simulator::run_recorded) executes once.
//! * [`ReferenceTrace`] is the finished, immutable capture.
//! * [`TraceReplayer`] re-runs the accounting of
//!   [`Simulator::run`](crate::simulator::Simulator::run) over a trace
//!   for any hardware-block set, reproducing [`RunStats`] — and the
//!   [`MemSink`] reference stream — **bit for bit** (the same `f64`
//!   operations in the same order).
//!
//! ## Bounded memory
//!
//! The pc stream is run-length encoded — execution is sequential
//! except at taken branches, so each maximal `pc, pc+1, …` stretch
//! becomes one `(start delta, length)` zigzag-LEB128 varint pair —
//! and the data stream holds one fixed-width 4-byte record per access
//! (decode speed beats the byte or two a varint would save). Both
//! streams live in fixed-size segments, so a long run costs a few
//! bytes per *branch* plus four bytes per data access and never
//! reallocates large buffers. A caller-supplied byte cap bounds
//! the total: when the encoded size would exceed it, the builder frees
//! everything and [`TraceBuilder::finish`] returns `None` — callers
//! fall back to direct simulation, trading time for memory, never
//! correctness.

use corepart_ir::cdfg::Application;
use corepart_ir::op::BlockId;
use corepart_tech::units::{Cycles, Energy};

use crate::codegen::{MachProgram, SLOT_BASE};
use crate::energy::EnergyTable;
use crate::isa::{InstClass, MachInst};
use crate::simulator::{ExecRecorder, MemSink, RunStats, SimConfig, SimError, TraceEntry};

/// Segment size of the chunked encoding. Small enough that a capture
/// never holds one huge allocation, large enough that the segment list
/// stays short (a 5M-cycle run is ~20 segments).
const SEGMENT_BYTES: usize = 256 * 1024;

/// A segmented varint byte stream. Varints never straddle a segment
/// boundary: a new segment is started whenever the current one has
/// reached [`SEGMENT_BYTES`], and each segment keeps 10 spare bytes of
/// capacity (the longest LEB128 encoding of a `u64`).
#[derive(Debug, Clone, Default)]
struct SegStream {
    segments: Vec<Vec<u8>>,
    bytes: usize,
}

impl SegStream {
    /// Owned heap footprint: segment capacities plus the spine.
    fn heap_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.capacity()).sum::<usize>()
            + self.segments.capacity() * std::mem::size_of::<Vec<u8>>()
    }

    fn put(&mut self, mut v: u64) {
        let segment = match self.segments.last_mut() {
            Some(s) if s.len() < SEGMENT_BYTES => s,
            _ => {
                self.segments.push(Vec::with_capacity(SEGMENT_BYTES + 10));
                self.segments.last_mut().expect("just pushed")
            }
        };
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                segment.push(byte);
                self.bytes += 1;
                return;
            }
            segment.push(byte | 0x80);
            self.bytes += 1;
        }
    }

    /// Appends a fixed-width little-endian `u32` record (used by the
    /// data-address stream, where decode speed beats the byte or two a
    /// varint would save).
    fn put_u32(&mut self, v: u32) {
        let segment = match self.segments.last_mut() {
            Some(s) if s.len() < SEGMENT_BYTES => s,
            _ => {
                self.segments.push(Vec::with_capacity(SEGMENT_BYTES + 10));
                self.segments.last_mut().expect("just pushed")
            }
        };
        segment.extend_from_slice(&v.to_le_bytes());
        self.bytes += 4;
    }

    fn reader(&self) -> SegReader<'_> {
        SegReader {
            segments: &self.segments,
            segment: 0,
            offset: 0,
        }
    }
}

/// Sequential decoder over a [`SegStream`].
#[derive(Debug, Clone)]
struct SegReader<'a> {
    segments: &'a [Vec<u8>],
    segment: usize,
    offset: usize,
}

impl SegReader<'_> {
    fn next(&mut self) -> Option<u64> {
        loop {
            let s = self.segments.get(self.segment)?;
            if self.offset < s.len() {
                break;
            }
            self.segment += 1;
            self.offset = 0;
        }
        let s = &self.segments[self.segment];
        let mut v: u64 = 0;
        let mut shift = 0;
        loop {
            let byte = *s.get(self.offset)?;
            self.offset += 1;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Some(v);
            }
            shift += 7;
        }
    }

    /// Decodes one fixed-width record written by [`SegStream::put_u32`]
    /// (records never straddle a segment boundary).
    #[inline]
    fn next_u32(&mut self) -> Option<u32> {
        loop {
            let s = self.segments.get(self.segment)?;
            if self.offset < s.len() {
                break;
            }
            self.segment += 1;
            self.offset = 0;
        }
        let s = &self.segments[self.segment];
        let bytes = s.get(self.offset..self.offset + 4)?;
        self.offset += 4;
        Some(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }
}

/// FNV-1a over the counts, the return value and both encoded byte
/// streams — the one definition shared by [`TraceBuilder::finish`]
/// (which stamps it into the capture) and
/// [`ReferenceTrace::validate`] (which recomputes and compares it).
fn fingerprint_of(
    events: u64,
    data_events: u64,
    return_bits: u64,
    pcs: &SegStream,
    addrs: &SegStream,
) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for v in [events, data_events, return_bits] {
        for byte in v.to_le_bytes() {
            eat(byte);
        }
    }
    for stream in [pcs, addrs] {
        for segment in &stream.segments {
            for &byte in segment {
                eat(byte);
            }
        }
    }
    h
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Decoder of the fixed-width data-address stream.
#[derive(Debug, Clone)]
struct AddrReader<'a> {
    inner: SegReader<'a>,
}

impl AddrReader<'_> {
    #[inline]
    fn next(&mut self) -> Option<u32> {
        self.inner.next_u32()
    }
}

/// Decoder of the run-length-encoded pc stream: yields one
/// `(start pc, length)` pair per maximal sequential stretch.
#[derive(Debug, Clone)]
struct RunReader<'a> {
    inner: SegReader<'a>,
    prev_start: i64,
}

impl RunReader<'_> {
    fn next(&mut self) -> Option<(u32, u64)> {
        let delta = unzigzag(self.inner.next()?);
        let start = self.prev_start + delta;
        self.prev_start = start;
        let len = self.inner.next()?;
        Some((u32::try_from(start).ok()?, len))
    }
}

/// The immutable capture of one reference execution: the executed pc
/// stream, the data-address stream (one entry per executed load/store,
/// in execution order), and the run's return value.
///
/// A trace is tied to the exact ([`MachProgram`], workload) pair it was
/// captured from; the [`fingerprint`](ReferenceTrace::fingerprint)
/// identifies that pair for memoization.
#[derive(Debug, Clone)]
pub struct ReferenceTrace {
    pcs: SegStream,
    addrs: SegStream,
    events: u64,
    data_events: u64,
    return_value: i64,
    fingerprint: u64,
}

impl ReferenceTrace {
    /// Executed instructions recorded (µP- and hardware-mapped alike).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Recorded data accesses (loads + stores).
    pub fn data_events(&self) -> u64 {
        self.data_events
    }

    /// Encoded size in bytes (excluding constant-size bookkeeping).
    pub fn bytes(&self) -> usize {
        self.pcs.bytes + self.addrs.bytes
    }

    /// Owned heap footprint in bytes (allocated segment capacities, not
    /// just encoded payload) — what an artifact store charges against
    /// its byte budget for keeping this trace warm.
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.pcs.heap_bytes() + self.addrs.heap_bytes()
    }

    /// The run's return value (register `r1` at `halt`).
    pub fn return_value(&self) -> i64 {
        self.return_value
    }

    /// FNV-1a hash over the encoded streams and event counts —
    /// identifies the (program, workload) execution for memo keys.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Recomputes the FNV-1a fingerprint from the encoded streams and
    /// compares it against the one stamped at capture time — the
    /// integrity gate for traces whose bytes may have been damaged
    /// after capture. [`crate::trace::TraceReplayer::replay`]'s own
    /// conservation checks catch truncation (fewer decoded events than
    /// recorded); this check additionally catches any byte-level
    /// corruption that leaves the counts plausible.
    ///
    /// # Errors
    ///
    /// [`SimError::TraceCorrupt`] when the streams no longer hash to
    /// the stored fingerprint.
    pub fn validate(&self) -> Result<(), SimError> {
        let h = fingerprint_of(
            self.events,
            self.data_events,
            self.return_value as u64,
            &self.pcs,
            &self.addrs,
        );
        if h != self.fingerprint {
            return Err(SimError::TraceCorrupt {
                detail: format!(
                    "fingerprint mismatch: captured {:#018x}, streams hash to {h:#018x}",
                    self.fingerprint
                ),
            });
        }
        Ok(())
    }

    fn pc_reader(&self) -> RunReader<'_> {
        RunReader {
            inner: self.pcs.reader(),
            prev_start: 0,
        }
    }

    fn addr_reader(&self) -> AddrReader<'_> {
        AddrReader {
            inner: self.addrs.reader(),
        }
    }
}

/// Deliberate-damage hooks for the conformance harness (`conform`
/// feature only): fault-injection tests use these to manufacture the
/// degraded traces the integrity checks must reject. Not part of the
/// supported API surface.
#[cfg(feature = "conform")]
impl ReferenceTrace {
    /// Flips every bit of one encoded byte (of the data-address stream
    /// when `addr_stream`, of the pc stream otherwise). Returns `false`
    /// when `index` is past the end of that stream.
    pub fn corrupt_byte(&mut self, addr_stream: bool, index: usize) -> bool {
        let stream = if addr_stream {
            &mut self.addrs
        } else {
            &mut self.pcs
        };
        let mut remaining = index;
        for segment in &mut stream.segments {
            if remaining < segment.len() {
                segment[remaining] ^= 0xff;
                return true;
            }
            remaining -= segment.len();
        }
        false
    }

    /// Drops up to `n` trailing bytes of the encoded pc stream,
    /// returning how many were actually removed — a truncated capture,
    /// as if segments were lost after the run.
    pub fn truncate_pcs(&mut self, n: usize) -> usize {
        let mut dropped = 0;
        while dropped < n {
            match self.pcs.segments.last_mut() {
                Some(last) if last.is_empty() => {
                    self.pcs.segments.pop();
                }
                Some(last) => {
                    last.pop();
                    self.pcs.bytes -= 1;
                    dropped += 1;
                }
                None => break,
            }
        }
        dropped
    }

    /// Re-stamps the fingerprint from the *current* streams so
    /// [`ReferenceTrace::validate`] passes again — used to build
    /// internally-consistent-looking truncated traces that only the
    /// replay-time conservation checks can reject.
    pub fn refingerprint(&mut self) {
        self.fingerprint = fingerprint_of(
            self.events,
            self.data_events,
            self.return_value as u64,
            &self.pcs,
            &self.addrs,
        );
    }
}

/// An [`ExecRecorder`] that builds a [`ReferenceTrace`] while the
/// simulator runs, under a byte cap.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    pcs: SegStream,
    addrs: SegStream,
    prev_run_start: i64,
    run_start: u32,
    run_len: u64,
    events: u64,
    data_events: u64,
    cap_bytes: usize,
    overflowed: bool,
}

impl TraceBuilder {
    /// A builder that keeps at most `cap_bytes` of encoded trace.
    /// `0` disables capture entirely (every event overflows), which is
    /// the transparent path to "always simulate directly".
    pub fn new(cap_bytes: usize) -> Self {
        TraceBuilder {
            pcs: SegStream::default(),
            addrs: SegStream::default(),
            prev_run_start: 0,
            run_start: 0,
            run_len: 0,
            events: 0,
            data_events: 0,
            cap_bytes,
            overflowed: cap_bytes == 0,
        }
    }

    /// Whether the cap was exceeded (the capture was discarded).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    fn flush_run(&mut self) {
        if self.run_len > 0 {
            self.pcs
                .put(zigzag(i64::from(self.run_start) - self.prev_run_start));
            self.pcs.put(self.run_len);
            self.prev_run_start = i64::from(self.run_start);
            self.run_len = 0;
            self.spill_if_over_cap();
        }
    }

    fn spill_if_over_cap(&mut self) {
        if self.pcs.bytes + self.addrs.bytes > self.cap_bytes {
            self.overflowed = true;
            // Free the memory eagerly: the rest of the run keeps
            // executing, and the half-trace is useless.
            self.pcs = SegStream::default();
            self.addrs = SegStream::default();
        }
    }

    /// Seals the capture. `return_value` is the finished run's return
    /// value ([`RunStats::return_value`]). Returns `None` when the cap
    /// was exceeded.
    pub fn finish(mut self, return_value: i64) -> Option<ReferenceTrace> {
        if self.overflowed {
            return None;
        }
        self.flush_run();
        if self.overflowed {
            return None;
        }
        let h = fingerprint_of(
            self.events,
            self.data_events,
            self.return_value_bits(return_value),
            &self.pcs,
            &self.addrs,
        );
        Some(ReferenceTrace {
            pcs: self.pcs,
            addrs: self.addrs,
            events: self.events,
            data_events: self.data_events,
            return_value,
            fingerprint: h,
        })
    }

    fn return_value_bits(&self, return_value: i64) -> u64 {
        return_value as u64
    }
}

impl ExecRecorder for TraceBuilder {
    fn inst(&mut self, pc: u32) {
        if self.overflowed {
            return;
        }
        // Run-length encoding: extend the current sequential stretch,
        // or emit it and start a new one at a taken branch.
        if self.run_len > 0 && pc == self.run_start + (self.run_len as u32) {
            self.run_len += 1;
        } else {
            self.flush_run();
            self.run_start = pc;
            self.run_len = 1;
        }
        self.events += 1;
    }

    fn data(&mut self, addr: u32) {
        if self.overflowed {
            return;
        }
        self.addrs.put_u32(addr);
        self.data_events += 1;
        self.spill_if_over_cap();
    }
}

/// Whether (and how) an instruction touches data memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessKind {
    None,
    Load,
    Store,
}

/// Everything the accounting loop needs about one pc, precomputed.
#[derive(Debug, Clone, Copy)]
struct PcInfo {
    inst: MachInst,
    class: InstClass,
    class_index: usize,
    latency: u64,
    block: BlockId,
    block_index: usize,
    is_block_start: bool,
    inst_addr: u32,
    /// `EnergyTable::base(class, latency)` — a pure function of the
    /// two, so precomputing preserves the exact bits.
    base_energy: Energy,
    access: AccessKind,
}

/// A [`ReferenceTrace`] decoded once into flat in-memory form, ready
/// to be walked any number of times without re-parsing the varint/RLE
/// encoding: one `(start, length)` pair per sequential stretch
/// (structure-of-arrays) plus the raw data-address records.
///
/// Decoding is the per-candidate cost that
/// [`TraceReplayer::replay_batch`] amortizes: K candidates share one
/// decoded walk instead of K decodes of the encoded streams.
#[derive(Debug, Clone)]
pub struct DecodedTrace {
    starts: Vec<u32>,
    lens: Vec<u64>,
    addrs: Vec<u32>,
    events: u64,
    data_events: u64,
    return_value: i64,
}

impl DecodedTrace {
    /// Decodes the pc and data-address streams to exhaustion. A
    /// truncated or damaged capture decodes fewer records than the
    /// trace header claims; that shortfall is *not* an error here —
    /// the replay-time conservation checks reject it exactly as the
    /// streaming [`TraceReplayer::replay`] path does.
    pub fn decode(trace: &ReferenceTrace) -> Self {
        let mut starts = Vec::new();
        let mut lens = Vec::new();
        let mut runs = trace.pc_reader();
        while let Some((start, len)) = runs.next() {
            starts.push(start);
            lens.push(len);
        }
        let mut addrs = Vec::with_capacity(trace.data_events as usize);
        let mut reader = trace.addr_reader();
        while let Some(addr) = reader.next() {
            addrs.push(addr);
        }
        DecodedTrace {
            starts,
            lens,
            addrs,
            events: trace.events,
            data_events: trace.data_events,
            return_value: trace.return_value,
        }
    }

    /// Executed instructions the source trace recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Decoded sequential stretches.
    pub fn stretches(&self) -> usize {
        self.starts.len()
    }

    /// Cuts the stretch list into contiguous shards of roughly
    /// `target_events` executed instructions each (stretch lengths are
    /// heavily skewed by loop nests, so shards are balanced by event
    /// count, not stretch count). The ranges partition
    /// `0..stretches()` in order; there is always at least one shard,
    /// and a `target_events` of `u64::MAX` yields exactly one.
    pub fn shard_by_events(&self, target_events: u64) -> Vec<std::ops::Range<usize>> {
        let n = self.starts.len();
        let target = target_events.max(1);
        let mut shards = Vec::new();
        let mut start = 0usize;
        let mut acc = 0u64;
        for (i, &len) in self.lens.iter().enumerate() {
            acc = acc.saturating_add(len);
            if acc >= target {
                shards.push(start..i + 1);
                start = i + 1;
                acc = 0;
            }
        }
        if start < n || shards.is_empty() {
            shards.push(start..n);
        }
        shards
    }

    /// Owned heap footprint of the decoded SoA form (stretch starts,
    /// lengths and the address column) — the byte-budget charge for
    /// keeping a decode warm next to its encoded trace.
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.starts.capacity() * std::mem::size_of::<u32>()
            + self.lens.capacity() * std::mem::size_of::<u64>()
            + self.addrs.capacity() * std::mem::size_of::<u32>()
    }
}

/// How one lane processes the current same-block run — decided once
/// per (run, lane) by the classification pass, then executed on the
/// matching path.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RunChoice {
    /// Lane already died (its candidate's error); skips everything.
    Dead,
    /// The run's block is hardware-mapped for this lane.
    Hw,
    /// Software run whose i-fetches the lane's sink accepted in bulk.
    Bulk,
    /// Software run that needs the exact per-instruction body
    /// (cycle-limit in range, tracing on, or a declined bulk fetch).
    Exact,
}

/// Structure-of-arrays accumulator state of a batched replay: every
/// per-lane counter of the sequential [`TraceReplayer::replay`] lives
/// in a lane-indexed vector (`field[l]` is lane `l`'s accumulator;
/// block- and class-keyed counters are row-major, `row * n + l`), so
/// a lane-independent delta is applied to all K lanes as one bulk add
/// over a contiguous slice — the form the vectorizer lowers to SIMD
/// groups of `LANE_GROUP` lanes.
///
/// Integer counters restructured this way are exact — only the `f64`
/// *add sequence* carries rounding, and every `f64` accumulator is
/// advanced elementwise per event, so lane `l` performs exactly its
/// own sequential add sequence.
///
/// The state is **resumable**: [`TraceReplayer::replay_stretches`]
/// walks any contiguous stretch range and leaves the lanes (and the
/// shared decode cursors it carries) ready for the next range, which
/// is what the stretch-sharded threaded driver hands from round to
/// round. [`TraceReplayer::finish_batch`] seals the walk.
pub struct BatchLanes {
    n: usize,
    /// Lanes that have not died; the walk early-exits at zero, like
    /// the sequential early return.
    live: usize,
    /// Shared decode cursors, carried across `replay_stretches` calls
    /// (the conservation checks consume them at finish).
    decoded_insts: u64,
    addr_index: usize,
    /// Previous-block memo of the block-entry accounting. It is
    /// lane-independent — every live lane walks every run — so one
    /// shared scalar replaces K copies.
    prev_block: Option<BlockId>,
    // Per-lane vectors, index = lane.
    cycles: Vec<u64>,
    energy: Vec<Energy>,
    class_switches: Vec<u64>,
    sw_ifetches: Vec<u64>,
    sw_reads: Vec<u64>,
    sw_writes: Vec<u64>,
    hw_loads: Vec<u64>,
    hw_stores: Vec<u64>,
    prev_class: Vec<Option<InstClass>>,
    prev_was_hw: Vec<bool>,
    dead: Vec<Option<SimError>>,
    traces: Vec<Vec<TraceEntry>>,
    // Row-major lane matrices, `[row * n + lane]`.
    /// Per-block hardware flag per lane (`n_blocks` rows).
    is_hw: Vec<bool>,
    /// Per-class instruction counts (8 rows, `InstClass::ALL` order).
    inst_counts: Vec<u64>,
    /// Per-class cycle counts (8 rows).
    class_cycles: Vec<u64>,
    block_counts: Vec<u64>,
    block_cycles: Vec<u64>,
    block_energy: Vec<Energy>,
    /// `n_blocks * 8` rows, `(block * 8 + class) * n + lane`.
    block_class_cycles: Vec<u64>,
    /// Per-block software-to-hardware entry counts; only non-zero
    /// entries are inserted into `RunStats::hw_block_entries`, which is
    /// exactly the key set the sequential `entry().or_insert(0)` grows.
    hw_entries: Vec<u64>,
    /// Per-run scratch: each lane's classification for the current run.
    choice: Vec<RunChoice>,
}

impl BatchLanes {
    /// Configured lanes.
    pub fn lanes(&self) -> usize {
        self.n
    }

    /// Lanes that have not died to a per-candidate error.
    pub fn live(&self) -> usize {
        self.live
    }
}

/// Replays a [`ReferenceTrace`] through the accounting of
/// [`Simulator::run`](crate::simulator::Simulator::run) for an
/// arbitrary hardware-block set.
///
/// Construction precomputes a per-pc table (class, latency, block,
/// base energy, …); [`TraceReplayer::replay`] then walks the decoded
/// pc/address streams executing *only* the accounting — no instruction
/// semantics, no register file, no data memory — in exactly the order
/// the direct run performs it, so every counter and every `f64` in the
/// resulting [`RunStats`] is bit-identical to a fresh
/// `Simulator::run` with the same [`SimConfig`].
#[derive(Debug, Clone)]
pub struct TraceReplayer {
    info: Vec<PcInfo>,
    /// `access_prefix[pc]` = data accesses issued by `info[..pc]`, so a
    /// stretch `lo..hi` consumes `access_prefix[hi] - access_prefix[lo]`
    /// address records — lets the batched walk advance the shared
    /// address cursor per stretch in O(1).
    access_prefix: Vec<u32>,
    /// `run_end[pc]` = exclusive end of the maximal contiguous pc range
    /// around `pc` whose instructions all belong to the same block —
    /// the granularity at which the batched walk hoists the per-block
    /// accounting out of the instruction loop.
    run_end: Vec<u32>,
    /// `lat_prefix[pc]` = summed latency of `info[..pc]`; a run's cycle
    /// total in O(1), for deciding up front that no lane can hit its
    /// cycle limit inside the run.
    lat_prefix: Vec<u64>,
    /// Per data-access ordinal (the `access_prefix` numbering): the pc,
    /// for error reporting on a short address stream.
    access_pc: Vec<u32>,
    /// Per data-access ordinal: `true` for a load, `false` for a store.
    access_is_load: Vec<bool>,
    /// `class_count_prefix[pc][c]` = instructions of class index `c` in
    /// `info[..pc]` — a software run's per-class instruction counts are
    /// the prefix difference, lane-independent, applied to the lane
    /// vectors as eight bulk adds instead of `run_len` scalar ones.
    class_count_prefix: Vec<[u64; 8]>,
    /// `class_cycle_prefix[pc][c]` = summed latency of class index `c`
    /// in `info[..pc]` — the per-class cycle counterpart.
    class_cycle_prefix: Vec<[u64; 8]>,
    /// `switch_prefix[pc]` = adjacent-pc class changes in `info[..pc]`
    /// (boundaries `j-1 → j` for `j < pc`). Inside a software run every
    /// instruction after the first switches iff its class differs from
    /// its predecessor's, identically in every lane — only the *first*
    /// instruction's switch depends on lane history.
    switch_prefix: Vec<u64>,
    /// `intra_energy[pc]` = the energy instruction `pc` costs when the
    /// previous µP instruction was `pc - 1` (the not-first-in-run case):
    /// `base_energy` plus the inter-instruction overhead iff the classes
    /// differ — precomputed with the same two operands and the same one
    /// `f64` add the sequential path performs, so the bits are
    /// identical. `intra_energy[0]` is the bare base energy (pc 0 is
    /// always first in its run).
    intra_energy: Vec<Energy>,
    n_blocks: usize,
    inter_inst_overhead: Energy,
}

/// Fixed SIMD group width of the lane-vectorized accumulator updates:
/// lane vectors are processed in chunks of this many lanes so the chunk
/// bodies lower to vector instructions (each element is one lane's
/// accumulator, the operand is broadcast). The adds are elementwise —
/// lane `l` performs exactly its own sequential add — so the group
/// width affects scheduling, never results.
const LANE_GROUP: usize = 4;

/// `dst[l] += v` for every lane, in fixed-width groups.
#[inline]
fn lanes_add_u64(dst: &mut [u64], v: u64) {
    let mut groups = dst.chunks_exact_mut(LANE_GROUP);
    for group in &mut groups {
        for d in group {
            *d += v;
        }
    }
    for d in groups.into_remainder() {
        *d += v;
    }
}

/// `energy[l] += e; block[l] += e` for every lane — the two `f64`
/// accumulators every µP instruction touches, advanced together so
/// both stay in vector registers across the instruction loop. Per lane
/// the adds land in the sequential order (run accumulator, then block
/// accumulator, per event).
#[inline]
fn lanes_add_energy(energy: &mut [Energy], block: &mut [Energy], e: Energy) {
    let mut ge = energy.chunks_exact_mut(LANE_GROUP);
    let mut gb = block.chunks_exact_mut(LANE_GROUP);
    for (ce, cb) in (&mut ge).zip(&mut gb) {
        for i in 0..LANE_GROUP {
            ce[i] += e;
            cb[i] += e;
        }
    }
    for (en, bl) in ge.into_remainder().iter_mut().zip(gb.into_remainder()) {
        *en += e;
        *bl += e;
    }
}

impl TraceReplayer {
    /// Owned heap footprint of the per-pc replay tables (info, prefix
    /// sums, class tables) — charged alongside the trace they replay.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<Self>()
            + self.info.capacity() * size_of::<PcInfo>()
            + self.access_prefix.capacity() * size_of::<u32>()
            + self.run_end.capacity() * size_of::<u32>()
            + self.lat_prefix.capacity() * size_of::<u64>()
            + self.access_pc.capacity() * size_of::<u32>()
            + self.access_is_load.capacity()
            + self.class_count_prefix.capacity() * size_of::<[u64; 8]>()
            + self.class_cycle_prefix.capacity() * size_of::<[u64; 8]>()
            + self.switch_prefix.capacity() * size_of::<u64>()
            + self.intra_energy.capacity() * size_of::<Energy>()
    }

    /// Builds the replay table for one compiled program.
    pub fn new(prog: &MachProgram, app: &Application, energy: &EnergyTable) -> Self {
        let info = prog
            .insts()
            .iter()
            .enumerate()
            .map(|(pc, &inst)| {
                let pc = pc as u32;
                let block = prog.block_of(pc);
                let class = InstClass::of(&inst);
                let latency = inst.latency();
                PcInfo {
                    inst,
                    class,
                    class_index: InstClass::ALL
                        .iter()
                        .position(|&c| c == class)
                        .expect("class in ALL"),
                    latency,
                    block,
                    block_index: block.0 as usize,
                    is_block_start: prog.block_start(block) == pc,
                    inst_addr: prog.inst_addr(pc),
                    base_energy: energy.base(class, latency),
                    access: match inst {
                        MachInst::Ldw { .. } => AccessKind::Load,
                        MachInst::Stw { .. } => AccessKind::Store,
                        _ => AccessKind::None,
                    },
                }
            })
            .collect::<Vec<PcInfo>>();
        let mut access_prefix = Vec::with_capacity(info.len() + 1);
        let mut lat_prefix = Vec::with_capacity(info.len() + 1);
        let mut access_pc = Vec::new();
        let mut access_is_load = Vec::new();
        let mut running = 0u32;
        let mut latency_sum = 0u64;
        access_prefix.push(running);
        lat_prefix.push(latency_sum);
        for (pc, entry) in info.iter().enumerate() {
            match entry.access {
                AccessKind::None => {}
                AccessKind::Load | AccessKind::Store => {
                    running += 1;
                    access_pc.push(pc as u32);
                    access_is_load.push(matches!(entry.access, AccessKind::Load));
                }
            }
            latency_sum += entry.latency;
            access_prefix.push(running);
            lat_prefix.push(latency_sum);
        }
        let mut run_end = vec![0u32; info.len()];
        let mut end = info.len();
        for pc in (0..info.len()).rev() {
            if pc + 1 < info.len() && info[pc + 1].block != info[pc].block {
                end = pc + 1;
            }
            run_end[pc] = end as u32;
        }
        let inter_inst_overhead = energy.inter_inst_overhead();
        let mut class_count_prefix = Vec::with_capacity(info.len() + 1);
        let mut class_cycle_prefix = Vec::with_capacity(info.len() + 1);
        let mut switch_prefix = Vec::with_capacity(info.len() + 1);
        let mut intra_energy = Vec::with_capacity(info.len());
        let mut counts = [0u64; 8];
        let mut class_latency = [0u64; 8];
        let mut switches = 0u64;
        class_count_prefix.push(counts);
        class_cycle_prefix.push(class_latency);
        switch_prefix.push(switches);
        for (pc, entry) in info.iter().enumerate() {
            counts[entry.class_index] += 1;
            class_latency[entry.class_index] += entry.latency;
            let mut e = entry.base_energy;
            if pc > 0 && info[pc - 1].class != entry.class {
                switches += 1;
                e += inter_inst_overhead;
            }
            intra_energy.push(e);
            class_count_prefix.push(counts);
            class_cycle_prefix.push(class_latency);
            switch_prefix.push(switches);
        }
        TraceReplayer {
            info,
            access_prefix,
            run_end,
            lat_prefix,
            access_pc,
            access_is_load,
            class_count_prefix,
            class_cycle_prefix,
            switch_prefix,
            intra_energy,
            n_blocks: app.blocks().len(),
            inter_inst_overhead,
        }
    }

    /// Replays `trace` under `config`, streaming the µP-side references
    /// into `sink` — the bit-exact equivalent of
    /// `Simulator::run(config, sink)` for the captured execution.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimit`] exactly when the direct run would hit
    /// it; [`SimError::BadPc`]/[`SimError::BadAccess`] only on a
    /// corrupt or mismatched trace; [`SimError::TraceCorrupt`] when
    /// the decoded streams do not add up to the recorded event counts
    /// (a truncated capture) — never partial statistics.
    pub fn replay<S: MemSink>(
        &self,
        trace: &ReferenceTrace,
        config: &SimConfig,
        sink: &mut S,
    ) -> Result<RunStats, SimError> {
        let mut stats = RunStats {
            cycles: Cycles::ZERO,
            energy: Energy::ZERO,
            inst_counts: InstClass::ALL.iter().map(|&c| (c, 0)).collect(),
            class_cycles: InstClass::ALL.iter().map(|&c| (c, 0)).collect(),
            block_class_cycles: vec![[0; 8]; self.n_blocks],
            class_switches: 0,
            block_counts: vec![0; self.n_blocks],
            block_cycles: vec![0; self.n_blocks],
            block_energy: vec![Energy::ZERO; self.n_blocks],
            hw_block_entries: std::collections::HashMap::new(),
            hw_loads: 0,
            hw_stores: 0,
            sw_reads: 0,
            sw_writes: 0,
            sw_ifetches: 0,
            return_value: 0,
            trace: Vec::new(),
        };

        // Per-block hardware flag, indexable in O(1) on the hot path.
        let mut is_hw_block = vec![false; self.n_blocks];
        for b in &config.hw_blocks {
            if let Some(flag) = is_hw_block.get_mut(b.0 as usize) {
                *flag = true;
            }
        }

        let mut cycles: u64 = 0;
        let mut prev_class: Option<InstClass> = None;
        let mut prev_block: Option<BlockId> = None;
        let mut prev_was_hw = false;
        let mut runs = trace.pc_reader();
        let mut addrs = trace.addr_reader();
        let mut decoded_insts: u64 = 0;
        let mut decoded_data: u64 = 0;

        // One decoded (start, length) pair per sequential stretch; the
        // per-instruction body below is byte-for-byte the accounting of
        // the direct run, just driven from the precomputed table.
        while let Some((start, len)) = runs.next() {
            let lo = start as usize;
            let hi = lo
                .checked_add(len as usize)
                .filter(|&hi| hi <= self.info.len())
                .ok_or(SimError::BadPc { pc: start })?;
            decoded_insts = decoded_insts.wrapping_add(len);
            for (off, info) in self.info[lo..hi].iter().enumerate() {
                let pc = start + off as u32;
                let is_hw = is_hw_block[info.block_index];

                // Block-entry accounting.
                if prev_block != Some(info.block) && info.is_block_start {
                    stats.block_counts[info.block_index] += 1;
                    if is_hw && !prev_was_hw {
                        *stats.hw_block_entries.entry(info.block).or_insert(0) += 1;
                    }
                }
                prev_block = Some(info.block);
                prev_was_hw = is_hw;

                if !is_hw {
                    cycles += info.latency;
                    if config.max_cycles > 0 && cycles > config.max_cycles {
                        return Err(SimError::CycleLimit {
                            limit: config.max_cycles,
                        });
                    }
                    let mut e = info.base_energy;
                    if let Some(p) = prev_class {
                        if p != info.class {
                            e += self.inter_inst_overhead;
                            stats.class_switches += 1;
                        }
                    }
                    prev_class = Some(info.class);
                    stats.energy += e;
                    stats.block_cycles[info.block_index] += info.latency;
                    stats.block_energy[info.block_index] += e;
                    *stats.inst_counts.get_mut(&info.class).expect("class") += 1;
                    *stats.class_cycles.get_mut(&info.class).expect("class") += info.latency;
                    stats.block_class_cycles[info.block_index][info.class_index] += info.latency;
                    stats.sw_ifetches += 1;
                    sink.ifetch(info.inst_addr);
                    if stats.trace.len() < config.trace_limit {
                        stats.trace.push(TraceEntry {
                            pc,
                            inst: info.inst,
                            cycles,
                        });
                    }
                } else {
                    // Leaving the µP's instruction stream resets the
                    // circuit-state history.
                    prev_class = None;
                }

                match info.access {
                    AccessKind::Load => {
                        let addr = addrs.next().ok_or(SimError::BadAccess { addr: 0, pc })?;
                        decoded_data += 1;
                        if is_hw {
                            if addr < SLOT_BASE {
                                stats.hw_loads += 1;
                            }
                        } else {
                            stats.sw_reads += 1;
                            sink.read(addr);
                        }
                    }
                    AccessKind::Store => {
                        let addr = addrs.next().ok_or(SimError::BadAccess { addr: 0, pc })?;
                        decoded_data += 1;
                        if is_hw {
                            if addr < SLOT_BASE {
                                stats.hw_stores += 1;
                            }
                        } else {
                            stats.sw_writes += 1;
                            sink.write(addr);
                        }
                    }
                    AccessKind::None => {}
                }
            }
        }

        // Conservation checks: a well-formed trace decodes exactly the
        // number of instructions and data accesses it recorded, and
        // leaves no trailing data-address records. A truncated or
        // damaged capture that survives decoding this far must not
        // yield partial statistics (byte-level corruption with intact
        // counts is the job of [`ReferenceTrace::validate`]).
        if decoded_insts != trace.events
            || decoded_data != trace.data_events
            || addrs.next().is_some()
        {
            return Err(SimError::TraceCorrupt {
                detail: format!(
                    "decoded {decoded_insts} of {} recorded instructions and {decoded_data} of {} recorded data accesses",
                    trace.events, trace.data_events
                ),
            });
        }

        stats.cycles = Cycles::new(cycles);
        stats.return_value = trace.return_value;
        Ok(stats)
    }

    fn fresh_stats(&self) -> RunStats {
        RunStats {
            cycles: Cycles::ZERO,
            energy: Energy::ZERO,
            inst_counts: InstClass::ALL.iter().map(|&c| (c, 0)).collect(),
            class_cycles: InstClass::ALL.iter().map(|&c| (c, 0)).collect(),
            block_class_cycles: vec![[0; 8]; self.n_blocks],
            class_switches: 0,
            block_counts: vec![0; self.n_blocks],
            block_cycles: vec![0; self.n_blocks],
            block_energy: vec![Energy::ZERO; self.n_blocks],
            hw_block_entries: std::collections::HashMap::new(),
            hw_loads: 0,
            hw_stores: 0,
            sw_reads: 0,
            sw_writes: 0,
            sw_ifetches: 0,
            return_value: 0,
            trace: Vec::new(),
        }
    }

    /// Replays a decoded trace for K candidate configurations in one
    /// walk of the event stream, streaming each lane's µP-side
    /// references into its own sink.
    ///
    /// Every lane performs **exactly** the operations the sequential
    /// [`TraceReplayer::replay`] performs for its configuration, in the
    /// same order — per-candidate accounting is independent state, so
    /// interleaving the lanes changes nothing about any lane's `f64`
    /// sequence and every returned [`RunStats`] is bit-identical to
    /// the sequential result. What the lanes *share* is the decode:
    /// the stretch walk, bounds checks and address records are paid
    /// once instead of K times.
    ///
    /// # Errors
    ///
    /// Trace-level failures — a malformed stretch
    /// ([`SimError::BadPc`]), a missing data-address record
    /// ([`SimError::BadAccess`]), or the conservation checks
    /// ([`SimError::TraceCorrupt`]) — poison every candidate alike and
    /// fail the whole batch with the top-level `Err`; no partial
    /// results escape. Per-candidate failures
    /// ([`SimError::CycleLimit`]) are returned in that candidate's
    /// inner slot while the other lanes continue.
    ///
    /// # Panics
    ///
    /// When `configs` and `sinks` have different lengths.
    pub fn replay_batch<S: MemSink>(
        &self,
        decoded: &DecodedTrace,
        configs: &[SimConfig],
        sinks: &mut [S],
    ) -> Result<Vec<Result<RunStats, SimError>>, SimError> {
        if configs.is_empty() {
            assert!(sinks.is_empty(), "one sink per batched configuration");
            return Ok(Vec::new());
        }
        let mut lanes = self.batch_lanes(configs);
        self.replay_stretches(decoded, 0..decoded.stretches(), configs, &mut lanes, sinks)?;
        self.finish_batch(decoded, lanes)
    }

    /// Fresh structure-of-arrays lane state for `configs` — the
    /// starting point of a [`TraceReplayer::replay_stretches`] walk.
    /// The per-block hardware flags are baked in here; every later
    /// `replay_stretches` call must pass the *same* `configs` slice
    /// content (the threaded driver carries both together).
    pub fn batch_lanes(&self, configs: &[SimConfig]) -> BatchLanes {
        let n = configs.len();
        let nb = self.n_blocks;
        let mut is_hw = vec![false; nb * n];
        for (l, config) in configs.iter().enumerate() {
            for b in &config.hw_blocks {
                let bi = b.0 as usize;
                if bi < nb {
                    is_hw[bi * n + l] = true;
                }
            }
        }
        BatchLanes {
            n,
            live: n,
            decoded_insts: 0,
            addr_index: 0,
            prev_block: None,
            cycles: vec![0; n],
            energy: vec![Energy::ZERO; n],
            class_switches: vec![0; n],
            sw_ifetches: vec![0; n],
            sw_reads: vec![0; n],
            sw_writes: vec![0; n],
            hw_loads: vec![0; n],
            hw_stores: vec![0; n],
            prev_class: vec![None; n],
            prev_was_hw: vec![false; n],
            dead: vec![None; n],
            traces: vec![Vec::new(); n],
            is_hw,
            inst_counts: vec![0; 8 * n],
            class_cycles: vec![0; 8 * n],
            block_counts: vec![0; nb * n],
            block_cycles: vec![0; nb * n],
            block_energy: vec![Energy::ZERO; nb * n],
            block_class_cycles: vec![0; nb * 8 * n],
            hw_entries: vec![0; nb * n],
            choice: vec![RunChoice::Dead; n],
        }
    }

    /// Walks the contiguous stretch range `stretches` of `decoded`,
    /// advancing `lanes` exactly as the corresponding slice of the full
    /// walk would — the resumable core of [`TraceReplayer::replay_batch`].
    /// Calling it over consecutive ranges `0..a`, `a..b`, …, `z..end`
    /// and then [`TraceReplayer::finish_batch`] is equivalent to one
    /// full-range call: all walk state (per-lane accumulators, shared
    /// decode cursors, previous-block/class memos) lives in `lanes`,
    /// which is what the stretch-sharded threaded driver carries across
    /// shard rounds (`sinks` state travels alongside as hierarchy
    /// snapshots).
    ///
    /// Each maximal same-block run inside a stretch is classified per
    /// lane (hardware / bulk-fetched software / exact software); when
    /// *every* lane is live, software and bulk-qualified — the dominant
    /// case — the per-instruction accounting collapses to lane-vector
    /// updates: per-class counts and cycles become eight bulk adds from
    /// the prefix tables, and the two `f64` accumulators advance
    /// elementwise per instruction in fixed-width SIMD groups, each
    /// lane in its own sequential add order. Mixed runs fall back to
    /// the per-lane scalar body.
    ///
    /// # Errors
    ///
    /// Trace-level failures ([`SimError::BadPc`],
    /// [`SimError::BadAccess`]) poison the whole batch, exactly as in
    /// [`TraceReplayer::replay_batch`]. Per-candidate cycle-limit
    /// deaths are recorded in the lane state.
    ///
    /// # Panics
    ///
    /// When `configs`/`sinks` lengths do not match the lane state.
    pub fn replay_stretches<S: MemSink>(
        &self,
        decoded: &DecodedTrace,
        stretches: std::ops::Range<usize>,
        configs: &[SimConfig],
        lanes: &mut BatchLanes,
        sinks: &mut [S],
    ) -> Result<(), SimError> {
        assert_eq!(configs.len(), lanes.n, "lane state built for these configs");
        assert_eq!(sinks.len(), lanes.n, "one sink per batched configuration");
        let n = lanes.n;
        if n == 0 || lanes.live == 0 {
            // Every candidate died in an earlier range; like the
            // sequential early return, nothing further is decoded.
            return Ok(());
        }
        let lo_s = stretches.start.min(decoded.starts.len());
        let hi_s = stretches.end.min(decoded.starts.len());

        for (&start, &len) in decoded.starts[lo_s..hi_s]
            .iter()
            .zip(&decoded.lens[lo_s..hi_s])
        {
            let lo = start as usize;
            let hi = lo
                .checked_add(len as usize)
                .filter(|&hi| hi <= self.info.len())
                .ok_or(SimError::BadPc { pc: start })?;
            lanes.decoded_insts = lanes.decoded_insts.wrapping_add(len);
            let stretch_a_lo = self.access_prefix[lo] as usize;

            // The stretch, segmented into maximal same-block runs: the
            // block flag, block indices and entry accounting are
            // per-run, not per-instruction. Only the *first* pc of a
            // run can trigger block-entry accounting — every later pc
            // sees `prev_block == block` — so hoisting the check is
            // exact.
            let mut pos = lo;
            while pos < hi {
                let rend = (self.run_end[pos] as usize).min(hi);
                let first = &self.info[pos];
                let bi = first.block_index;
                // Address records of this run in the decoded stream:
                // position-determined, identical for every lane.
                let run_a_lo = self.access_prefix[pos] as usize;
                let run_base = lanes.addr_index + (run_a_lo - stretch_a_lo);
                let run_latency = self.lat_prefix[rend] - self.lat_prefix[pos];
                let run_len = (rend - pos) as u32;

                // Classification pass, in lane order: block-entry
                // accounting (whose condition is lane-independent, the
                // shared `prev_block` memo) plus each lane's path
                // choice. `ifetch_run_hits` both asks and — on accept —
                // applies the bulk fetch, so it is called exactly where
                // the per-lane walk would call it.
                let entering = lanes.prev_block != Some(first.block) && first.is_block_start;
                let mut all_bulk = true;
                for l in 0..n {
                    if lanes.dead[l].is_some() {
                        lanes.choice[l] = RunChoice::Dead;
                        all_bulk = false;
                        continue;
                    }
                    let is_hw = lanes.is_hw[bi * n + l];
                    if entering {
                        lanes.block_counts[bi * n + l] += 1;
                        if is_hw && !lanes.prev_was_hw[l] {
                            lanes.hw_entries[bi * n + l] += 1;
                        }
                    }
                    lanes.prev_was_hw[l] = is_hw;
                    if is_hw {
                        lanes.choice[l] = RunChoice::Hw;
                        all_bulk = false;
                        continue;
                    }
                    let config = &configs[l];
                    let bulk = (config.max_cycles == 0
                        || lanes.cycles[l] + run_latency <= config.max_cycles)
                        && config.trace_limit == 0
                        && sinks[l].ifetch_run_hits(first.inst_addr, run_len);
                    lanes.choice[l] = if bulk {
                        RunChoice::Bulk
                    } else {
                        all_bulk = false;
                        RunChoice::Exact
                    };
                }
                lanes.prev_block = Some(first.block);

                if all_bulk {
                    self.run_vectorized(decoded, lanes, sinks, pos, rend, run_base)?;
                } else {
                    self.run_scalar(decoded, configs, lanes, sinks, pos, rend, run_base)?;
                }
                pos = rend;
            }

            // All lanes consume the same address records per stretch —
            // the count is position-determined, not candidate-dependent
            // — so the shared cursor advances by the prefix difference.
            lanes.addr_index += (self.access_prefix[hi] - self.access_prefix[lo]) as usize;

            if lanes.live == 0 {
                break;
            }
        }
        Ok(())
    }

    /// The all-lanes-bulk vector path of one software run: every lane
    /// is live, software-mapped and had its i-fetches accepted in bulk,
    /// so every lane-independent delta is applied to the whole lane
    /// vector at once. Only the *first* instruction's energy and class
    /// switch depend on lane history; instructions `pos+1..rend` add
    /// the precomputed `intra_energy` elementwise — per lane, the same
    /// `f64` operands in the same order as the sequential replay.
    #[allow(clippy::too_many_arguments)]
    fn run_vectorized<S: MemSink>(
        &self,
        decoded: &DecodedTrace,
        lanes: &mut BatchLanes,
        sinks: &mut [S],
        pos: usize,
        rend: usize,
        run_base: usize,
    ) -> Result<(), SimError> {
        let n = lanes.n;
        let first = &self.info[pos];
        let bi = first.block_index;
        let run_latency = self.lat_prefix[rend] - self.lat_prefix[pos];
        let run_len = (rend - pos) as u64;

        lanes_add_u64(&mut lanes.cycles, run_latency);
        lanes_add_u64(&mut lanes.sw_ifetches, run_len);
        lanes_add_u64(&mut lanes.block_cycles[bi * n..bi * n + n], run_latency);

        // Per-class counts and cycles of the run, from the prefix
        // tables: lane-independent, eight bulk adds instead of
        // `run_len` scalar updates per lane.
        let cnt_lo = &self.class_count_prefix[pos];
        let cnt_hi = &self.class_count_prefix[rend];
        let cyc_lo = &self.class_cycle_prefix[pos];
        let cyc_hi = &self.class_cycle_prefix[rend];
        for c in 0..8 {
            let count = cnt_hi[c] - cnt_lo[c];
            if count == 0 {
                continue;
            }
            let cyc = cyc_hi[c] - cyc_lo[c];
            lanes_add_u64(&mut lanes.inst_counts[c * n..c * n + n], count);
            lanes_add_u64(&mut lanes.class_cycles[c * n..c * n + n], cyc);
            lanes_add_u64(&mut lanes.block_class_cycles[(bi * 8 + c) * n..][..n], cyc);
        }
        let intra_switches = self.switch_prefix[rend] - self.switch_prefix[pos + 1];
        if intra_switches > 0 {
            lanes_add_u64(&mut lanes.class_switches, intra_switches);
        }

        // First instruction: the only lane-dependent energy/switch.
        for l in 0..n {
            let mut e = first.base_energy;
            if let Some(p) = lanes.prev_class[l] {
                if p != first.class {
                    e += self.inter_inst_overhead;
                    lanes.class_switches[l] += 1;
                }
            }
            lanes.energy[l] += e;
            lanes.block_energy[bi * n + l] += e;
        }
        // Instructions 1..: lane-independent energies, elementwise per
        // event across the lane vector.
        {
            let energy = lanes.energy.as_mut_slice();
            let block_row = &mut lanes.block_energy[bi * n..bi * n + n];
            for p in pos + 1..rend {
                lanes_add_energy(energy, block_row, self.intra_energy[p]);
            }
        }
        lanes.prev_class.fill(Some(self.info[rend - 1].class));

        // Data accesses: each lane sees the run's records in order, so
        // the per-lane sink sequence (bulk i-fetches, then reads and
        // writes in record order) matches the sequential replay's.
        let mut loads = 0u64;
        let run_a_lo = self.access_prefix[pos] as usize;
        let run_a_hi = self.access_prefix[rend] as usize;
        for (ai, ordinal) in (run_base..).zip(run_a_lo..run_a_hi) {
            let Some(&addr) = decoded.addrs.get(ai) else {
                // A missing address record is trace damage: it poisons
                // the whole batch, exactly as in the sequential replay.
                return Err(SimError::BadAccess {
                    addr: 0,
                    pc: self.access_pc[ordinal],
                });
            };
            if self.access_is_load[ordinal] {
                loads += 1;
                for sink in sinks.iter_mut() {
                    sink.read(addr);
                }
            } else {
                for sink in sinks.iter_mut() {
                    sink.write(addr);
                }
            }
        }
        if run_a_hi > run_a_lo {
            lanes_add_u64(&mut lanes.sw_reads, loads);
            lanes_add_u64(&mut lanes.sw_writes, (run_a_hi - run_a_lo) as u64 - loads);
        }
        Ok(())
    }

    /// The mixed-run fallback: each lane executes its classified path
    /// (hardware / bulk / exact) scalar, in lane order — byte for byte
    /// the per-lane bodies of the pre-SoA batched walk.
    #[allow(clippy::too_many_arguments)]
    fn run_scalar<S: MemSink>(
        &self,
        decoded: &DecodedTrace,
        configs: &[SimConfig],
        lanes: &mut BatchLanes,
        sinks: &mut [S],
        pos: usize,
        rend: usize,
        run_base: usize,
    ) -> Result<(), SimError> {
        let n = lanes.n;
        let bi = self.info[pos].block_index;
        let run_a_lo = self.access_prefix[pos] as usize;
        let run_a_hi = self.access_prefix[rend] as usize;
        let run_latency = self.lat_prefix[rend] - self.lat_prefix[pos];
        let run_len = (rend - pos) as u64;

        for l in 0..n {
            match lanes.choice[l] {
                RunChoice::Dead => {}
                RunChoice::Hw => {
                    // Hardware run: no µP cycles, energy or sink
                    // traffic — only the circuit-state reset and the
                    // shared-memory access counters, walked by access
                    // ordinal instead of by instruction.
                    lanes.prev_class[l] = None;
                    for (ai, ordinal) in (run_base..).zip(run_a_lo..run_a_hi) {
                        let Some(&addr) = decoded.addrs.get(ai) else {
                            return Err(SimError::BadAccess {
                                addr: 0,
                                pc: self.access_pc[ordinal],
                            });
                        };
                        if addr < SLOT_BASE {
                            if self.access_is_load[ordinal] {
                                lanes.hw_loads[l] += 1;
                            } else {
                                lanes.hw_stores[l] += 1;
                            }
                        }
                    }
                }
                RunChoice::Bulk => {
                    // The accepted probe already delivered the
                    // i-fetches; the accounting runs scalar for this
                    // lane only.
                    lanes.sw_ifetches[l] += run_len;
                    let mut cycles = lanes.cycles[l];
                    let mut energy = lanes.energy[l];
                    let mut prev_class = lanes.prev_class[l];
                    let mut block_energy = lanes.block_energy[bi * n + l];
                    for info in &self.info[pos..rend] {
                        cycles += info.latency;
                        let mut e = info.base_energy;
                        if let Some(p) = prev_class {
                            if p != info.class {
                                e += self.inter_inst_overhead;
                                lanes.class_switches[l] += 1;
                            }
                        }
                        prev_class = Some(info.class);
                        energy += e;
                        block_energy += e;
                        lanes.inst_counts[info.class_index * n + l] += 1;
                        lanes.class_cycles[info.class_index * n + l] += info.latency;
                        lanes.block_class_cycles[(bi * 8 + info.class_index) * n + l] +=
                            info.latency;
                    }
                    lanes.cycles[l] = cycles;
                    lanes.energy[l] = energy;
                    lanes.prev_class[l] = prev_class;
                    lanes.block_energy[bi * n + l] = block_energy;
                    lanes.block_cycles[bi * n + l] += run_latency;
                    for (ai, ordinal) in (run_base..).zip(run_a_lo..run_a_hi) {
                        let Some(&addr) = decoded.addrs.get(ai) else {
                            return Err(SimError::BadAccess {
                                addr: 0,
                                pc: self.access_pc[ordinal],
                            });
                        };
                        if self.access_is_load[ordinal] {
                            lanes.sw_reads[l] += 1;
                            sinks[l].read(addr);
                        } else {
                            lanes.sw_writes[l] += 1;
                            sinks[l].write(addr);
                        }
                    }
                }
                RunChoice::Exact => {
                    // Exact per-instruction body: cycle-limit death at
                    // the precise pc, interleaved sink calls, optional
                    // trace capture. A lane that dies keeps its partial
                    // row updates — they are discarded with the lane's
                    // error at finish, as in the sequential early
                    // return.
                    let config = &configs[l];
                    let mut ai = run_base;
                    let mut cycles = lanes.cycles[l];
                    let mut prev_class = lanes.prev_class[l];
                    let mut died = false;
                    for (off, info) in self.info[pos..rend].iter().enumerate() {
                        cycles += info.latency;
                        if config.max_cycles > 0 && cycles > config.max_cycles {
                            lanes.dead[l] = Some(SimError::CycleLimit {
                                limit: config.max_cycles,
                            });
                            lanes.live -= 1;
                            died = true;
                            break;
                        }
                        let mut e = info.base_energy;
                        if let Some(p) = prev_class {
                            if p != info.class {
                                e += self.inter_inst_overhead;
                                lanes.class_switches[l] += 1;
                            }
                        }
                        prev_class = Some(info.class);
                        lanes.energy[l] += e;
                        lanes.block_cycles[bi * n + l] += info.latency;
                        lanes.block_energy[bi * n + l] += e;
                        lanes.inst_counts[info.class_index * n + l] += 1;
                        lanes.class_cycles[info.class_index * n + l] += info.latency;
                        lanes.block_class_cycles[(bi * 8 + info.class_index) * n + l] +=
                            info.latency;
                        lanes.sw_ifetches[l] += 1;
                        sinks[l].ifetch(info.inst_addr);
                        if lanes.traces[l].len() < config.trace_limit {
                            lanes.traces[l].push(TraceEntry {
                                pc: (pos + off) as u32,
                                inst: info.inst,
                                cycles,
                            });
                        }
                        match info.access {
                            AccessKind::None => {}
                            AccessKind::Load => {
                                let Some(&addr) = decoded.addrs.get(ai) else {
                                    return Err(SimError::BadAccess {
                                        addr: 0,
                                        pc: (pos + off) as u32,
                                    });
                                };
                                ai += 1;
                                lanes.sw_reads[l] += 1;
                                sinks[l].read(addr);
                            }
                            AccessKind::Store => {
                                let Some(&addr) = decoded.addrs.get(ai) else {
                                    return Err(SimError::BadAccess {
                                        addr: 0,
                                        pc: (pos + off) as u32,
                                    });
                                };
                                ai += 1;
                                lanes.sw_writes[l] += 1;
                                sinks[l].write(addr);
                            }
                        }
                    }
                    if !died {
                        lanes.cycles[l] = cycles;
                        lanes.prev_class[l] = prev_class;
                    }
                }
            }
        }
        Ok(())
    }

    /// Seals a [`TraceReplayer::replay_stretches`] walk that covered
    /// the whole stretch list: runs the conservation checks and folds
    /// the structure-of-arrays lane state into per-candidate
    /// [`RunStats`].
    ///
    /// # Errors
    ///
    /// [`SimError::TraceCorrupt`] when the walk decoded fewer events
    /// than the trace recorded and at least one lane survived —
    /// identical to the sequential replay's checks (skipped only when
    /// every lane already died, as the sequential path returns before
    /// reaching them in that case too).
    pub fn finish_batch(
        &self,
        decoded: &DecodedTrace,
        mut lanes: BatchLanes,
    ) -> Result<Vec<Result<RunStats, SimError>>, SimError> {
        let n = lanes.n;
        if lanes.live > 0
            && (lanes.decoded_insts != decoded.events
                || lanes.addr_index as u64 != decoded.data_events
                || lanes.addr_index != decoded.addrs.len())
        {
            return Err(SimError::TraceCorrupt {
                detail: format!(
                    "decoded {} of {} recorded instructions and {} of {} recorded data accesses",
                    lanes.decoded_insts, decoded.events, lanes.addr_index, decoded.data_events
                ),
            });
        }

        let mut out = Vec::with_capacity(n);
        for l in 0..n {
            if let Some(err) = lanes.dead[l].take() {
                out.push(Err(err));
                continue;
            }
            let mut stats = self.fresh_stats();
            stats.cycles = Cycles::new(lanes.cycles[l]);
            stats.energy = lanes.energy[l];
            stats.class_switches = lanes.class_switches[l];
            stats.sw_ifetches = lanes.sw_ifetches[l];
            stats.sw_reads = lanes.sw_reads[l];
            stats.sw_writes = lanes.sw_writes[l];
            stats.hw_loads = lanes.hw_loads[l];
            stats.hw_stores = lanes.hw_stores[l];
            for (index, &class) in InstClass::ALL.iter().enumerate() {
                *stats.inst_counts.get_mut(&class).expect("class") =
                    lanes.inst_counts[index * n + l];
                *stats.class_cycles.get_mut(&class).expect("class") =
                    lanes.class_cycles[index * n + l];
            }
            for b in 0..self.n_blocks {
                stats.block_counts[b] = lanes.block_counts[b * n + l];
                stats.block_cycles[b] = lanes.block_cycles[b * n + l];
                stats.block_energy[b] = lanes.block_energy[b * n + l];
                for c in 0..8 {
                    stats.block_class_cycles[b][c] = lanes.block_class_cycles[(b * 8 + c) * n + l];
                }
                let entries = lanes.hw_entries[b * n + l];
                if entries > 0 {
                    stats.hw_block_entries.insert(BlockId(b as u32), entries);
                }
            }
            stats.trace = std::mem::take(&mut lanes.traces[l]);
            stats.return_value = decoded.return_value;
            out.push(Ok(stats));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile;
    use crate::simulator::{NullSink, Simulator};
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;
    use std::collections::HashSet;

    fn setup(src: &str) -> (Application, MachProgram) {
        let app = lower(&parse(src).unwrap()).unwrap();
        let prog = compile(&app);
        (app, prog)
    }

    const TWO_LOOPS: &str = r#"app t; var a[32]; var acc = 0;
        func main() {
            for (var i = 0; i < 32; i = i + 1) { a[i] = a[i] * 3 + 1; }
            for (var j = 0; j < 32; j = j + 1) { acc = acc + a[j]; }
            return acc;
        }"#;

    fn capture(
        app: &Application,
        prog: &MachProgram,
        input: Option<(&str, &[i64])>,
    ) -> (RunStats, ReferenceTrace) {
        let mut sim = Simulator::new(prog, app);
        if let Some((name, data)) = input {
            sim.set_array(name, data).unwrap();
        }
        let mut builder = TraceBuilder::new(usize::MAX);
        let stats = sim
            .run_recorded(&SimConfig::initial(10_000_000), &mut NullSink, &mut builder)
            .unwrap();
        let trace = builder.finish(stats.return_value).expect("under cap");
        (stats, trace)
    }

    #[test]
    fn varint_zigzag_roundtrip() {
        let mut s = SegStream::default();
        let values = [
            0i64,
            1,
            -1,
            2,
            -2,
            127,
            -128,
            300_000,
            -300_000,
            i64::from(u32::MAX),
        ];
        for &v in &values {
            s.put(zigzag(v));
        }
        let mut r = s.reader();
        for &v in &values {
            assert_eq!(unzigzag(r.next().unwrap()), v);
        }
        assert!(r.next().is_none());
    }

    #[test]
    fn segments_stay_bounded() {
        let mut s = SegStream::default();
        for i in 0..2_000_000u64 {
            s.put(i % 7);
        }
        for segment in &s.segments {
            assert!(segment.len() <= SEGMENT_BYTES + 10);
            assert!(segment.capacity() <= SEGMENT_BYTES + 10);
        }
        assert!(s.segments.len() > 1);
    }

    #[test]
    fn replay_matches_direct_initial_run() {
        let input: Vec<i64> = (0..32).map(|i| i % 5).collect();
        let (app, prog) = setup(TWO_LOOPS);
        let (direct, trace) = capture(&app, &prog, Some(("a", &input)));

        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let replayed = replayer
            .replay(&trace, &SimConfig::initial(10_000_000), &mut NullSink)
            .unwrap();
        assert_eq!(direct, replayed);
    }

    #[test]
    fn replay_matches_direct_partitioned_run() {
        let input: Vec<i64> = (0..32).map(|i| (i * 13) % 9 - 4).collect();
        let (app, prog) = setup(TWO_LOOPS);
        let (_, trace) = capture(&app, &prog, Some(("a", &input)));
        let first_loop = app.structure().iter().find(|n| n.is_loop()).expect("loop");
        let hw: HashSet<BlockId> = first_loop.blocks().iter().copied().collect();

        let mut sim = Simulator::new(&prog, &app);
        sim.set_array("a", &input).unwrap();
        let direct = sim
            .run(
                &SimConfig::partitioned(10_000_000, hw.clone()),
                &mut NullSink,
            )
            .unwrap();

        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let replayed = replayer
            .replay(
                &trace,
                &SimConfig::partitioned(10_000_000, hw),
                &mut NullSink,
            )
            .unwrap();
        assert_eq!(direct, replayed);
        assert!(replayed.hw_loads > 0);
    }

    #[test]
    fn replay_reproduces_the_sink_stream() {
        #[derive(Default, PartialEq, Debug)]
        struct Log(Vec<(u8, u32)>);
        impl MemSink for Log {
            fn ifetch(&mut self, a: u32) {
                self.0.push((0, a));
            }
            fn read(&mut self, a: u32) {
                self.0.push((1, a));
            }
            fn write(&mut self, a: u32) {
                self.0.push((2, a));
            }
        }
        let (app, prog) = setup(TWO_LOOPS);
        let mut sim = Simulator::new(&prog, &app);
        let mut builder = TraceBuilder::new(usize::MAX);
        let mut direct_log = Log::default();
        let stats = sim
            .run_recorded(
                &SimConfig::initial(10_000_000),
                &mut direct_log,
                &mut builder,
            )
            .unwrap();
        let trace = builder.finish(stats.return_value).unwrap();

        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let mut replay_log = Log::default();
        replayer
            .replay(&trace, &SimConfig::initial(10_000_000), &mut replay_log)
            .unwrap();
        assert_eq!(direct_log, replay_log);
    }

    #[test]
    fn replay_supports_debug_tracing() {
        let (app, prog) = setup(TWO_LOOPS);
        let (_, trace) = capture(&app, &prog, None);
        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let stats = replayer
            .replay(
                &trace,
                &SimConfig::initial(10_000_000).with_trace(16),
                &mut NullSink,
            )
            .unwrap();
        assert_eq!(stats.trace.len(), 16);
    }

    #[test]
    fn replay_enforces_the_cycle_limit() {
        let (app, prog) = setup(TWO_LOOPS);
        let (direct, trace) = capture(&app, &prog, None);
        assert!(direct.cycles.count() > 100);
        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let err = replayer
            .replay(&trace, &SimConfig::initial(100), &mut NullSink)
            .unwrap_err();
        assert!(matches!(err, SimError::CycleLimit { limit: 100 }));
    }

    #[test]
    fn batched_replay_matches_sequential_lanes() {
        let input: Vec<i64> = (0..32).map(|i| (i * 7) % 11 - 3).collect();
        let (app, prog) = setup(TWO_LOOPS);
        let (_, trace) = capture(&app, &prog, Some(("a", &input)));
        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let decoded = DecodedTrace::decode(&trace);
        assert_eq!(decoded.events(), trace.events());
        assert!(decoded.stretches() > 1);

        // Lanes: all-software, each structural loop alone, everything.
        let loops: Vec<HashSet<BlockId>> = app
            .structure()
            .iter()
            .filter(|n| n.is_loop())
            .map(|n| n.blocks().iter().copied().collect())
            .collect();
        assert!(loops.len() >= 2, "TWO_LOOPS has two loops");
        let mut sets = vec![HashSet::new()];
        sets.extend(loops.iter().cloned());
        sets.push(loops.iter().flatten().copied().collect());

        let configs: Vec<SimConfig> = sets
            .iter()
            .map(|hw| SimConfig::partitioned(10_000_000, hw.clone()))
            .collect();
        let mut sinks: Vec<NullSink> = configs.iter().map(|_| NullSink).collect();
        let batch = replayer
            .replay_batch(&decoded, &configs, &mut sinks)
            .unwrap();
        assert_eq!(batch.len(), configs.len());
        for (config, lane) in configs.iter().zip(&batch) {
            let sequential = replayer.replay(&trace, config, &mut NullSink).unwrap();
            assert_eq!(lane.as_ref().unwrap(), &sequential);
        }
    }

    #[test]
    fn batched_replay_reproduces_per_lane_sink_streams() {
        #[derive(Default, PartialEq, Debug, Clone)]
        struct Log(Vec<(u8, u32)>);
        impl MemSink for Log {
            fn ifetch(&mut self, a: u32) {
                self.0.push((0, a));
            }
            fn read(&mut self, a: u32) {
                self.0.push((1, a));
            }
            fn write(&mut self, a: u32) {
                self.0.push((2, a));
            }
        }
        let (app, prog) = setup(TWO_LOOPS);
        let (_, trace) = capture(&app, &prog, None);
        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let decoded = DecodedTrace::decode(&trace);
        let first_loop = app.structure().iter().find(|n| n.is_loop()).expect("loop");
        let hw: HashSet<BlockId> = first_loop.blocks().iter().copied().collect();
        let configs = [
            SimConfig::initial(10_000_000),
            SimConfig::partitioned(10_000_000, hw),
        ];
        let mut batch_logs = vec![Log::default(); configs.len()];
        replayer
            .replay_batch(&decoded, &configs, &mut batch_logs)
            .unwrap();
        for (config, log) in configs.iter().zip(&batch_logs) {
            let mut sequential = Log::default();
            replayer.replay(&trace, config, &mut sequential).unwrap();
            assert_eq!(log, &sequential);
        }
    }

    #[test]
    fn batched_replay_isolates_a_cycle_limited_lane() {
        let (app, prog) = setup(TWO_LOOPS);
        let (direct, trace) = capture(&app, &prog, None);
        assert!(direct.cycles.count() > 100);
        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let decoded = DecodedTrace::decode(&trace);
        let configs = [SimConfig::initial(100), SimConfig::initial(10_000_000)];
        let mut sinks = [NullSink, NullSink];
        let batch = replayer
            .replay_batch(&decoded, &configs, &mut sinks)
            .unwrap();
        assert!(matches!(batch[0], Err(SimError::CycleLimit { limit: 100 })));
        let surviving = replayer.replay(&trace, &configs[1], &mut NullSink).unwrap();
        assert_eq!(batch[1].as_ref().unwrap(), &surviving);

        // All lanes limited: like the sequential early return, the
        // batch reports the per-lane errors, not a trace-level one.
        let all_limited = [SimConfig::initial(100), SimConfig::initial(101)];
        let mut sinks = [NullSink, NullSink];
        let batch = replayer
            .replay_batch(&decoded, &all_limited, &mut sinks)
            .unwrap();
        assert!(batch
            .iter()
            .all(|lane| matches!(lane, Err(SimError::CycleLimit { .. }))));
    }

    #[test]
    fn lane_vector_helpers_match_scalar_reference() {
        // The SIMD-group helpers must be bit-identical to the scalar
        // per-lane adds for every lane count around the group width —
        // the codegen smoke for the chunked form `run_vectorized`
        // leans on.
        for n in [1, 2, 3, 4, 5, 7, 8, 9, 16, 17] {
            let mut counts = vec![0u64; n];
            lanes_add_u64(&mut counts, 7);
            lanes_add_u64(&mut counts, 3);
            assert!(counts.iter().all(|&c| c == 10), "n = {n}");

            let es: Vec<f64> = (0..50).map(|i| 1.0 / (i as f64 + 3.0)).collect();
            let mut energy = vec![Energy::ZERO; n];
            let mut block = vec![Energy::ZERO; n];
            for &e in &es {
                lanes_add_energy(&mut energy, &mut block, Energy::from_joules(e));
            }
            let mut reference = Energy::ZERO;
            for &e in &es {
                reference += Energy::from_joules(e);
            }
            for l in 0..n {
                assert_eq!(energy[l], reference, "n = {n}, lane {l}");
                assert_eq!(block[l], reference, "n = {n}, lane {l}");
            }
        }
    }

    #[test]
    fn resumable_stretch_walk_matches_full_walk() {
        // Splitting the walk over arbitrary stretch ranges — the shard
        // mechanism of the threaded driver — must leave the lane state
        // exactly where one full-range walk leaves it.
        let input: Vec<i64> = (0..32).map(|i| (i * 11) % 13 - 6).collect();
        let (app, prog) = setup(TWO_LOOPS);
        let (_, trace) = capture(&app, &prog, Some(("a", &input)));
        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let decoded = DecodedTrace::decode(&trace);
        let total = decoded.stretches();
        assert!(total > 4);

        let first_loop = app.structure().iter().find(|n| n.is_loop()).expect("loop");
        let hw: HashSet<BlockId> = first_loop.blocks().iter().copied().collect();
        let configs = [
            SimConfig::initial(10_000_000),
            SimConfig::partitioned(10_000_000, hw),
        ];

        let mut full_sinks = [NullSink, NullSink];
        let full = replayer
            .replay_batch(&decoded, &configs, &mut full_sinks)
            .unwrap();

        for cuts in [vec![1, total], vec![total / 2, total], vec![3, 7, total]] {
            let mut lanes = replayer.batch_lanes(&configs);
            let mut sinks = [NullSink, NullSink];
            let mut from = 0;
            for cut in cuts {
                replayer
                    .replay_stretches(&decoded, from..cut, &configs, &mut lanes, &mut sinks)
                    .unwrap();
                from = cut;
            }
            let split = replayer.finish_batch(&decoded, lanes).unwrap();
            for (a, b) in full.iter().zip(&split) {
                assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
            }
        }
    }

    #[test]
    fn shard_by_events_partitions_stretches() {
        let (app, prog) = setup(TWO_LOOPS);
        let (_, trace) = capture(&app, &prog, None);
        let decoded = DecodedTrace::decode(&trace);
        for target in [1, 5, decoded.events() / 3, u64::MAX] {
            let shards = decoded.shard_by_events(target);
            assert!(!shards.is_empty(), "target = {target}");
            let mut expect = 0;
            for shard in &shards {
                assert_eq!(shard.start, expect, "target = {target}");
                assert!(shard.end >= shard.start);
                expect = shard.end;
            }
            assert_eq!(expect, decoded.stretches(), "target = {target}");
        }
        assert_eq!(decoded.shard_by_events(u64::MAX).len(), 1);
        // Event-balanced: a mid-size target yields several shards.
        assert!(decoded.shard_by_events(decoded.events() / 4).len() >= 3);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (app, prog) = setup(TWO_LOOPS);
        let (_, trace) = capture(&app, &prog, None);
        let replayer = TraceReplayer::new(&prog, &app, &EnergyTable::default());
        let decoded = DecodedTrace::decode(&trace);
        let mut sinks: Vec<NullSink> = Vec::new();
        assert!(replayer
            .replay_batch(&decoded, &[], &mut sinks)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn cap_overflow_discards_the_capture() {
        let (app, prog) = setup(TWO_LOOPS);
        let mut sim = Simulator::new(&prog, &app);
        let mut builder = TraceBuilder::new(64);
        let stats = sim
            .run_recorded(&SimConfig::initial(10_000_000), &mut NullSink, &mut builder)
            .unwrap();
        assert!(builder.overflowed());
        assert!(builder.finish(stats.return_value).is_none());
        // The run itself is unaffected by the overflow.
        let fresh = Simulator::new(&prog, &app)
            .run(&SimConfig::initial(10_000_000), &mut NullSink)
            .unwrap();
        assert_eq!(stats, fresh);
    }

    #[test]
    fn zero_cap_disables_capture() {
        let builder = TraceBuilder::new(0);
        assert!(builder.overflowed());
        assert!(builder.finish(0).is_none());
    }

    #[test]
    fn fingerprint_distinguishes_workloads() {
        let (app, prog) = setup(TWO_LOOPS);
        let a: Vec<i64> = (0..32).collect();
        let b: Vec<i64> = (0..32).map(|i| i * 2).collect();
        let (_, ta) = capture(&app, &prog, Some(("a", &a)));
        let (_, tb) = capture(&app, &prog, Some(("a", &b)));
        let (_, ta2) = capture(&app, &prog, Some(("a", &a)));
        // Same execution -> same fingerprint; different data -> the
        // address/pc streams diverge and so does the hash.
        assert_eq!(ta.fingerprint(), ta2.fingerprint());
        assert_ne!(ta.fingerprint(), tb.fingerprint());
        assert!(ta.bytes() > 0);
        assert!(ta.events() > 0);
        assert!(ta.data_events() > 0);
    }

    #[test]
    fn trace_is_compact() {
        let (app, prog) = setup(TWO_LOOPS);
        let (direct, trace) = capture(&app, &prog, None);
        // Mostly ±1 pc deltas and word-stride addresses: ~1 byte per
        // event plus ~1-2 bytes per data access.
        let events = direct.block_counts.iter().sum::<u64>() + direct.sw_ifetches;
        assert!(
            (trace.bytes() as u64) < 4 * events,
            "{} bytes for ~{} events",
            trace.bytes(),
            events
        );
    }
}
