//! Property tests over the generator itself: every generated
//! application — and every one-step shrink of it — must be
//! well-formed (parses, lowers) and structurally sane. A generator
//! that emits broken BDL would poison every downstream oracle, so
//! these properties gate the whole harness.
//!
//! Case count follows `PROPTEST_CASES` (the vendored shim reads it
//! like the real proptest does).

use corepart_conform::gen::{self, generate};
use corepart_conform::oracle::lower_app;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every seed yields an app that parses and lowers.
    #[test]
    fn generated_apps_lower(seed in 0u64..1_000_000) {
        let app = generate(seed);
        prop_assert!(
            lower_app(&app).is_ok(),
            "seed {} does not lower:\n{}",
            seed,
            app.source()
        );
    }

    /// Generation is a pure function of the seed.
    #[test]
    fn generation_is_pure(seed in 0u64..1_000_000) {
        prop_assert_eq!(generate(seed), generate(seed));
    }

    /// Every one-step shrink candidate is still well-formed and never
    /// structurally larger — the shrinker can only walk downhill
    /// through valid programs.
    #[test]
    fn shrink_candidates_stay_well_formed(seed in 0u64..10_000) {
        let app = generate(seed);
        let base = gen::size(&app);
        for candidate in gen::shrink_candidates(&app) {
            prop_assert!(gen::size(&candidate) <= base);
            prop_assert!(
                lower_app(&candidate).is_ok(),
                "seed {}: shrink candidate does not lower:\n{}",
                seed,
                candidate.source()
            );
        }
    }
}

#[test]
fn proptest_cases_env_var_is_honoured() {
    // The shim's Config::default reads PROPTEST_CASES at run time.
    std::env::set_var("PROPTEST_CASES", "7");
    let config = proptest::test_runner::Config::default();
    std::env::remove_var("PROPTEST_CASES");
    assert_eq!(config.cases, 7);
    // Garbage values fall back to the built-in default.
    std::env::set_var("PROPTEST_CASES", "not-a-number");
    let fallback = proptest::test_runner::Config::default();
    std::env::remove_var("PROPTEST_CASES");
    assert_eq!(fallback.cases, 256);
}
