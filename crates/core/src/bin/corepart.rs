//! `corepart` — command-line front end to the partitioning flow.
//!
//! ```text
//! corepart partition <file.bdl> [--json] [--n-max N] [--factor-f F]
//!                    [--factor-g G] [--array name=v1,v2,...]...
//! corepart explore   <file.bdl> [--json] [--nodes a,b,...]
//!                    [--vdd-steps N] [--array ...]...
//! corepart clusters  <file.bdl> [--array ...]...
//! corepart disasm    <file.bdl>
//! corepart schedule  <file.bdl> [--set-index I] [--array ...]...
//! corepart corpus    <dir> [--out P] [--journal P] [--chunk N]
//!                    [--limit N] [--resume] [--json] [--array ...]...
//!                    [--connect host:port] [--connections N]
//! corepart serve     [--port P] [--shards S] [--store-budget-mb M]
//!                    [--max-connections N] [--timeout-ms T]
//! ```
//!
//! Every command also accepts the global `--threads N` flag (0 =
//! automatic) and the operating-point flags `--node N` (technology
//! node in nm) and `--vdd V` (supply in volts) — results are then
//! re-weighed to that point (simulation still runs at the base
//! process; an unknown node or out-of-range supply is a configuration
//! error).
//!
//! * `partition` — run the full Fig.-5 design flow; print the Table-1
//!   rows (or JSON with `--json`).
//! * `explore` — sweep the objective hardware weight (§3.5 design-
//!   space exploration) and render the Pareto frontier (or the full
//!   point set as JSON with `--json`). With `--nodes a,b,...` the
//!   sweep additionally re-weighs every design point to each listed
//!   technology node at `--vdd-steps` supplies (default 4) descending
//!   from nominal, and renders the 3D energy/time/area frontier — one
//!   simulation pass, the node×vdd axes are pure arithmetic.
//! * `clusters` — show the cluster chain with gen/use summaries and
//!   profiled invocation counts.
//! * `disasm` — compile for the µP core and disassemble.
//! * `schedule` — list-schedule the hottest cluster on one designer
//!   resource set and render the Gantt chart.
//! * `corpus` — run the full partition sweep over every `.bdl` file in
//!   a directory (sorted by name) through the resumable sharded corpus
//!   runner (see [`corepart::corpus`]): a columnar results file, an
//!   aggregate Pareto frontier, per-feature saving statistics, and an
//!   on-disk journal that lets an interrupted run continue from the
//!   last completed chunk with `--resume`. With `--connect host:port`
//!   the chunks are shipped to a running `corepart serve` daemon as
//!   pipelined requests over `--connections N` persistent connections
//!   — TSV, journal, and frontier byte-identical to the local run.
//! * `serve` — run the long-lived JSON-lines-over-TCP daemon backed by
//!   the sharded, byte-budgeted warm artifact store (see
//!   [`corepart::serve`]), with pipelined connections, cross-request
//!   verify coalescing, an optional connection cap
//!   (`--max-connections`) and per-request timeout (`--timeout-ms`).

use std::path::PathBuf;
use std::process::ExitCode;

use corepart::corpus::{
    fingerprint64, run_corpus_with, source_features, CorpusEntry, CorpusOptions, RemoteOptions,
};
use corepart::engine::Engine;
use corepart::error::CorepartError;
use corepart::explore::{explore, explore_nodes, hardware_weight_sweep};
use corepart::flow::DesignFlow;
use corepart::json::corpus_to_json;
use corepart::json::{exploration_to_json, node_exploration_to_json, outcome_to_json_at};
use corepart::partition::Partitioner;
use corepart::prepare::Workload;
use corepart::report::{Table1, Table1Entry};
use corepart::serve::{ServeOptions, Server, EXPLORE_WEIGHTS};
use corepart::system::SystemConfig;
use corepart_ir::lower::lower;
use corepart_ir::parser::parse;
use corepart_tech::scaling::OperatingPoint;

struct Args {
    command: String,
    file: String,
    json: bool,
    set_index: usize,
    arrays: Vec<(String, Vec<i64>)>,
    n_max: Option<usize>,
    factor_f: Option<f64>,
    factor_g: Option<f64>,
    threads: Option<usize>,
    node: Option<u32>,
    vdd: Option<f64>,
    nodes: Option<Vec<u32>>,
    vdd_steps: usize,
    serve: ServeOptions,
    out: Option<String>,
    journal: Option<String>,
    chunk: Option<usize>,
    limit: Option<u64>,
    resume: bool,
    connect: Option<String>,
    connections: usize,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: corepart <partition|explore|clusters|disasm|schedule> <file.bdl> \
         [--json] [--threads N] [--set-index I] [--n-max N] [--factor-f F] \
         [--factor-g G] [--node N] [--vdd V] [--nodes a,b,...] [--vdd-steps N] \
         [--array name=v1,v2,...]...\n       \
         corepart corpus <dir> [--out P] [--journal P] [--chunk N] [--limit N] \
         [--resume] [--json] [--threads N] [--connect host:port] [--connections N]\n       \
         corepart serve [--port P] [--shards S] [--store-budget-mb M] [--threads N] \
         [--max-connections N] [--timeout-ms T]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1);
    let command = it.next().ok_or("missing command")?;
    // `serve` is a daemon over request-supplied sources — it takes no
    // input file.
    let file = if command == "serve" {
        String::new()
    } else {
        it.next().ok_or("missing input file")?
    };
    let mut args = Args {
        command,
        file,
        json: false,
        set_index: 2,
        arrays: Vec::new(),
        n_max: None,
        factor_f: None,
        factor_g: None,
        threads: None,
        node: None,
        vdd: None,
        nodes: None,
        vdd_steps: 4,
        serve: ServeOptions::default(),
        out: None,
        journal: None,
        chunk: None,
        limit: None,
        resume: false,
        connect: None,
        connections: 1,
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => args.json = true,
            "--port" => {
                let v = it.next().ok_or("--port needs a value")?;
                args.serve.port = v.parse().map_err(|_| format!("bad port `{v}`"))?;
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                args.serve.shards = v.parse().map_err(|_| format!("bad shard count `{v}`"))?;
            }
            "--store-budget-mb" => {
                let v = it.next().ok_or("--store-budget-mb needs a value")?;
                let mb: u64 = v.parse().map_err(|_| format!("bad budget `{v}`"))?;
                args.serve.budget_bytes = mb << 20;
            }
            "--max-connections" => {
                let v = it.next().ok_or("--max-connections needs a value")?;
                args.serve.max_connections =
                    v.parse().map_err(|_| format!("bad connection cap `{v}`"))?;
            }
            "--timeout-ms" => {
                let v = it.next().ok_or("--timeout-ms needs a value")?;
                args.serve.request_timeout_ms =
                    v.parse().map_err(|_| format!("bad timeout `{v}`"))?;
            }
            "--connect" => {
                args.connect = Some(it.next().ok_or("--connect needs host:port")?);
            }
            "--connections" => {
                let v = it.next().ok_or("--connections needs a value")?;
                args.connections = v
                    .parse()
                    .map_err(|_| format!("bad connection count `{v}`"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = Some(v.parse().map_err(|_| format!("bad thread count `{v}`"))?);
            }
            "--set-index" => {
                let v = it.next().ok_or("--set-index needs a value")?;
                args.set_index = v.parse().map_err(|_| format!("bad set index `{v}`"))?;
            }
            "--n-max" => {
                let v = it.next().ok_or("--n-max needs a value")?;
                args.n_max = Some(v.parse().map_err(|_| format!("bad n-max `{v}`"))?);
            }
            "--factor-f" => {
                let v = it.next().ok_or("--factor-f needs a value")?;
                args.factor_f = Some(v.parse().map_err(|_| format!("bad factor `{v}`"))?);
            }
            "--factor-g" => {
                let v = it.next().ok_or("--factor-g needs a value")?;
                args.factor_g = Some(v.parse().map_err(|_| format!("bad factor `{v}`"))?);
            }
            "--node" => {
                let v = it.next().ok_or("--node needs a value")?;
                args.node = Some(v.parse().map_err(|_| format!("bad node `{v}`"))?);
            }
            "--vdd" => {
                let v = it.next().ok_or("--vdd needs a value")?;
                args.vdd = Some(v.parse().map_err(|_| format!("bad voltage `{v}`"))?);
            }
            "--nodes" => {
                let spec = it.next().ok_or("--nodes needs a,b,...")?;
                let nodes: Result<Vec<u32>, _> =
                    spec.split(',').map(|v| v.trim().parse::<u32>()).collect();
                args.nodes = Some(nodes.map_err(|_| format!("bad node list `{spec}`"))?);
            }
            "--vdd-steps" => {
                let v = it.next().ok_or("--vdd-steps needs a value")?;
                args.vdd_steps = v.parse().map_err(|_| format!("bad step count `{v}`"))?;
            }
            "--out" => {
                args.out = Some(it.next().ok_or("--out needs a path")?);
            }
            "--journal" => {
                args.journal = Some(it.next().ok_or("--journal needs a path")?);
            }
            "--chunk" => {
                let v = it.next().ok_or("--chunk needs a value")?;
                args.chunk = Some(v.parse().map_err(|_| format!("bad chunk size `{v}`"))?);
            }
            "--limit" => {
                let v = it.next().ok_or("--limit needs a value")?;
                args.limit = Some(v.parse().map_err(|_| format!("bad limit `{v}`"))?);
            }
            "--resume" => args.resume = true,
            "--array" => {
                let spec = it.next().ok_or("--array needs name=v1,v2,...")?;
                let (name, vals) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("bad --array spec `{spec}`"))?;
                let data: Result<Vec<i64>, _> =
                    vals.split(',').map(|v| v.trim().parse::<i64>()).collect();
                args.arrays.push((
                    name.to_owned(),
                    data.map_err(|_| format!("bad numbers in `{spec}`"))?,
                ));
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn config_from(args: &Args) -> SystemConfig {
    let mut config = SystemConfig::new();
    if let Some(n) = args.n_max {
        config.n_max = n;
    }
    if let Some(f) = args.factor_f {
        config.factor_f = f;
    }
    if let Some(g) = args.factor_g {
        config.factor_g = g;
    }
    if let Some(t) = args.threads {
        config.threads = t;
    }
    if args.node.is_some() || args.vdd.is_some() {
        let native = OperatingPoint::native_of(&config.process);
        let node_nm = args.node.unwrap_or(native.node_nm);
        let vdd = args.vdd.unwrap_or_else(|| {
            config
                .scaling
                .row(node_nm)
                .map(|r| r.nominal_vdd(&config.process))
                .unwrap_or(native.vdd)
        });
        config.operating_point = Some(OperatingPoint { node_nm, vdd });
    }
    config
}

fn serve(args: &Args) -> Result<(), String> {
    let mut opts = args.serve.clone();
    if let Some(t) = args.threads {
        opts.threads = t;
    }
    let server = Server::spawn(config_from(args), &opts).map_err(|e| e.to_string())?;
    println!("listening on {}", server.addr());
    server.join();
    println!("shutdown complete");
    Ok(())
}

/// Runs the corpus verb over a directory of `.bdl` files: every file,
/// sorted by name, becomes one corpus entry.
fn corpus_over_dir(args: &Args) -> Result<(), String> {
    let dir = PathBuf::from(&args.file);
    let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "bdl"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .bdl files in {}", dir.display()));
    }

    let mut options = CorpusOptions::new(config_from(args));
    if let Some(c) = args.chunk {
        options.chunk = c;
    }
    if let Some(t) = args.threads {
        options.threads = t;
    }
    options.limit = args.limit;
    // The journal must refuse to resume over a *different* file set:
    // fold the sorted file names into the provider tag.
    let names: Vec<&str> = files
        .iter()
        .filter_map(|p| p.file_name().and_then(|n| n.to_str()))
        .collect();
    options.provider_tag = format!("dir-{:016x}", fingerprint64(names.join("\n").as_bytes()));

    let workload = Workload::from_arrays(args.arrays.clone());
    let provider = |index: u64| -> Result<CorpusEntry, CorepartError> {
        let path = &files[index as usize];
        let source = std::fs::read_to_string(path).map_err(|e| CorepartError::Config {
            message: format!("{}: {e}", path.display()),
        })?;
        let program = parse(&source)?;
        let features = source_features(&program);
        let app = lower(&program)?;
        Ok(CorpusEntry {
            index,
            seed: 0,
            name: path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("entry")
                .to_owned(),
            source,
            app,
            workload: workload.clone(),
            features,
        })
    };

    let out = PathBuf::from(args.out.as_deref().unwrap_or("corpus.tsv"));
    let journal = args
        .journal
        .clone()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("{}.journal", out.display())));
    let remote = args.connect.as_deref().map(|addr| {
        let mut r = RemoteOptions::new(addr);
        r.connections = args.connections;
        r
    });
    let outcome = run_corpus_with(
        files.len() as u64,
        provider,
        &options,
        &journal,
        &out,
        args.resume,
        remote.as_ref(),
    )
    .map_err(|e| e.to_string())?;
    if args.json {
        println!("{}", corpus_to_json(&outcome));
    } else if outcome.finished {
        println!(
            "corpus complete: {} app(s) ({} evaluated, {} replayed) -> {}",
            outcome.count,
            outcome.evaluated,
            outcome.replayed,
            out.display()
        );
        println!(
            "frontier: {} point(s); feature buckets: {}",
            outcome.frontier.len(),
            outcome.features.len()
        );
    } else {
        println!(
            "corpus interrupted after {}/{} chunk(s); rerun with --resume to continue",
            outcome.chunks_done, outcome.chunks
        );
    }
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    if args.command == "serve" {
        return serve(args);
    }
    if args.command == "corpus" {
        return corpus_over_dir(args);
    }
    let source = std::fs::read_to_string(&args.file).map_err(|e| format!("{}: {e}", args.file))?;
    let config = config_from(args);
    let workload = Workload::from_arrays(args.arrays.clone());

    match args.command.as_str() {
        "partition" => {
            let point = config.resolved_point().map_err(|e| e.to_string())?;
            let flow = DesignFlow::with_config(config);
            let result = flow
                .run_source(&source, workload)
                .map_err(|e| e.to_string())?;
            if args.json {
                println!(
                    "{}",
                    outcome_to_json_at(&result.app_name, &result.outcome, point.as_ref())
                );
            } else {
                let mut table = Table1::new();
                table.push(Table1Entry::from_outcome(&result.app_name, &result.outcome));
                println!("{table}");
                match &result.outcome.best {
                    Some((partition, detail)) => println!(
                        "chosen: {} cluster(s) on `{}` — {} hardware, U_R {:.3} vs U_uP {:.3}",
                        partition.clusters.len(),
                        partition.set.name(),
                        detail.metrics.geq,
                        detail.u_r,
                        detail.u_up,
                    ),
                    None => println!("no partition beat the initial design"),
                }
                if let Some(rp) = &point {
                    let w = rp.weigh(&result.outcome.initial);
                    print!(
                        "at {}: initial {:.3e} J / {:.3e} s",
                        rp.point,
                        w.energy.joules(),
                        w.time.secs()
                    );
                    if let Some((_, detail)) = &result.outcome.best {
                        let b = rp.weigh(&detail.metrics);
                        print!(
                            " — best {:.3e} J / {:.3e} s / {:.0} cells",
                            b.energy.joules(),
                            b.time.secs(),
                            b.area_cells
                        );
                    }
                    println!();
                }
            }
            Ok(())
        }
        "explore" => {
            let app =
                lower(&parse(&source).map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
            let configs = hardware_weight_sweep(&EXPLORE_WEIGHTS, &config);
            if let Some(nodes) = &args.nodes {
                let nx = explore_nodes(&app, &workload, &configs, nodes, args.vdd_steps)
                    .map_err(|e| e.to_string())?;
                if args.json {
                    println!("{}", node_exploration_to_json(&nx));
                } else {
                    print!("{}", nx.render_frontier());
                }
                return Ok(());
            }
            let ex = explore(&app, &workload, &configs).map_err(|e| e.to_string())?;
            if args.json {
                println!("{}", exploration_to_json(&ex));
            } else {
                print!("{}", ex.render_frontier());
            }
            Ok(())
        }
        "clusters" => {
            let app =
                lower(&parse(&source).map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
            let engine = Engine::new(config).map_err(|e| e.to_string())?;
            let session = engine.session(&app, &workload);
            let prepared = session.prepared().map_err(|e| e.to_string())?;
            println!("cluster chain of `{}`:", prepared.app.name());
            for c in prepared.chain.iter() {
                let inv =
                    corepart_ir::cluster::cluster_invocations(&prepared.app, &prepared.profile, c);
                println!("  {c} | {inv} invocation(s)");
                println!(
                    "      gen: {}",
                    c.gen_use
                        .gen
                        .iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join(" ")
                );
                println!(
                    "      use: {}",
                    c.gen_use
                        .use_
                        .iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join(" ")
                );
            }
            Ok(())
        }
        "disasm" => {
            let app =
                lower(&parse(&source).map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
            let prog = corepart_isa::codegen::compile(&app);
            print!("{}", prog.disassemble());
            Ok(())
        }
        "schedule" => {
            let app =
                lower(&parse(&source).map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
            let engine = Engine::new(config).map_err(|e| e.to_string())?;
            let session = engine.session(&app, &workload);
            let config = session.config();
            let prepared = session.prepared().map_err(|e| e.to_string())?;
            let partitioner = Partitioner::new(&session).map_err(|e| e.to_string())?;
            let cand = partitioner
                .candidates()
                .into_iter()
                .next()
                .ok_or("no candidate clusters")?;
            let set = config
                .resource_set(args.set_index)
                .map_err(|e| e.to_string())?;
            let blocks = prepared.chain.cluster(cand.cluster).blocks.clone();
            let sched = corepart_sched::binding::schedule_cluster(
                &prepared.app,
                &blocks,
                set,
                &config.library,
            )
            .map_err(|e| e.to_string())?;
            let binding = corepart_sched::binding::bind(&sched, &config.library);
            print!(
                "{}",
                corepart_sched::gantt::render_cluster(&sched, &binding, &config.library)
            );
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
