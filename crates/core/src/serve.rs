//! `corepart serve` — a long-lived partitioning daemon speaking
//! JSON lines over TCP (`std::net` only, no dependencies).
//!
//! # Protocol
//!
//! One request per line, one response line per request, in order:
//!
//! ```text
//! {"id":1,"cmd":"partition","source":"app d; ...","arrays":{"x":[1,2]}}
//! {"id":2,"cmd":"explore","source":"...","weights":[0.0,1.0]}
//! {"id":3,"cmd":"verify","source":"...","clusters":[0],"set_index":2}
//! {"id":4,"cmd":"stats"}
//! {"id":5,"cmd":"shutdown"}
//! ```
//!
//! Compute requests may override the searchable knobs (`n_max`,
//! `factor_f`, `factor_g`) per request, and may name an optional
//! `operating_point` (`{"node_nm":180,"vdd":1.8}`) resolved against the
//! base configuration's node-scaling table — the answer then carries an
//! extra `operating_point` member with the designs re-weighed to that
//! point (simulation still runs once, at the base process); everything
//! else comes from the daemon's base configuration. Responses are
//!
//! ```text
//! {"id":1,"ok":true,"cmd":"partition","result":{...},"stats":{...}}
//! {"id":9,"ok":false,"error":{"kind":"ir","message":"..."}}
//! ```
//!
//! where `result` is *deterministic* — byte-identical to what a fresh
//! in-process [`Engine`] produces for the same request (see
//! [`respond_fresh`]; the conformance oracle compares the two) — and
//! `stats` is advisory (shard, store hit, latency, session counters).
//! Determinism lets the store memoize the rendered `result` per exact
//! request: a repeat is answered from the memo without re-running the
//! search, and its `stats` then carries no `session` counters (no
//! fresh session produced any).
//! Error kinds mirror [`CorepartError`]: `ir`, `sim`, `sched`,
//! `config`, plus `request` for lines the protocol itself rejects. A
//! failing request never poisons the store: parse errors are answered
//! before the store is touched, and deeper failures are memoized
//! error values that later identical requests replay.
//!
//! # Threading
//!
//! [`Server::spawn`] starts one worker thread per store shard plus an
//! accept loop; each connection gets a reader thread that routes
//! compute requests to their shard's worker (by [`request_fingerprint`])
//! and answers `stats`/`shutdown` inline. One worker per shard means
//! the hot artifact-lookup path never contends on a global lock — see
//! [`ArtifactStore`].

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};

use corepart_ir::cdfg::Application;
use corepart_ir::cluster::ClusterId;
use corepart_ir::lower::lower;
use corepart_ir::parser::parse;

use crate::engine::{session_identity, Engine, SessionStats};
use crate::error::CorepartError;
use crate::evaluate::Partition;
use crate::explore::{explore_in, hardware_weight_sweep};
use corepart_tech::scaling::OperatingPoint;

use crate::json::{
    exploration_to_json_at, json_escape, outcome_result_json_at, parse_json, verify_result_json_at,
    JsonValue,
};
use crate::partition::Partitioner;
use crate::prepare::Workload;
use crate::store::{ArtifactStore, RequestStats, StoreOptions, StoreStats};
use crate::system::SystemConfig;

/// The default listen port (0 binds an ephemeral port).
pub const DEFAULT_PORT: u16 = 4860;

/// The default `explore` sweep over objective hardware weights
/// (factor G), from "hardware is free" to "hardware is precious" —
/// used when an explore request names no `weights`.
pub const EXPLORE_WEIGHTS: [f64; 7] = [0.0, 0.1, 0.2, 0.5, 1.0, 2.0, 4.0];

/// Construction knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCP port on 127.0.0.1 (0 = ephemeral; see [`Server::addr`]).
    pub port: u16,
    /// Store shards (= warm engines = worker threads).
    pub shards: usize,
    /// Store-wide artifact byte budget.
    pub budget_bytes: u64,
    /// Verification threads per served session (0 = automatic) — the
    /// sharded batched-replay kernel's worker count.
    pub threads: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let store = StoreOptions::default();
        ServeOptions {
            port: DEFAULT_PORT,
            shards: store.shards,
            budget_bytes: store.budget_bytes,
            threads: 0,
        }
    }
}

/// The three compute commands of the serve protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeKind {
    /// Run the full design flow (`outcome_result_json` payload).
    Partition,
    /// Sweep the hardware weight (`exploration_to_json` payload).
    Explore,
    /// Evaluate one explicit partition (`verify_result_json` payload).
    Verify,
}

impl ComputeKind {
    /// The protocol's `cmd` string.
    pub fn name(self) -> &'static str {
        match self {
            ComputeKind::Partition => "partition",
            ComputeKind::Explore => "explore",
            ComputeKind::Verify => "verify",
        }
    }
}

/// One parsed compute request.
#[derive(Debug, Clone)]
pub struct ComputeRequest {
    /// Client-chosen request id, echoed in the response.
    pub id: Option<u64>,
    /// Which command to run.
    pub kind: ComputeKind,
    /// BDL source text of the application.
    pub source: String,
    /// Workload arrays, `(name, contents)`.
    pub arrays: Vec<(String, Vec<i64>)>,
    /// Override of the configured cluster-count bound.
    pub n_max: Option<usize>,
    /// Override of objective factor F.
    pub factor_f: Option<f64>,
    /// Override of objective factor G.
    pub factor_g: Option<f64>,
    /// Explore sweep weights (defaults to [`EXPLORE_WEIGHTS`]).
    pub weights: Option<Vec<f64>>,
    /// Clusters of the partition to verify.
    pub clusters: Vec<u32>,
    /// Designer resource set of the partition to verify.
    pub set_index: usize,
    /// Optional operating point the answer is re-weighed to (the
    /// simulation itself always runs at the base process).
    pub operating_point: Option<OperatingPoint>,
}

impl ComputeRequest {
    /// A request with every optional knob unset (the CLI's defaults).
    pub fn new(kind: ComputeKind, source: &str) -> Self {
        ComputeRequest {
            id: None,
            kind,
            source: source.to_owned(),
            arrays: Vec::new(),
            n_max: None,
            factor_f: None,
            factor_g: None,
            weights: None,
            clusters: Vec::new(),
            set_index: 2,
            operating_point: None,
        }
    }

    /// Renders the request as one protocol line (no trailing newline) —
    /// the client half of the wire format `parse_request` reads.
    pub fn to_json(&self) -> String {
        let mut fields = Vec::new();
        if let Some(id) = self.id {
            fields.push(format!("\"id\":{id}"));
        }
        fields.push(format!("\"cmd\":\"{}\"", self.kind.name()));
        fields.push(format!("\"source\":\"{}\"", json_escape(&self.source)));
        if !self.arrays.is_empty() {
            let arrays: Vec<String> = self
                .arrays
                .iter()
                .map(|(name, data)| {
                    let items: Vec<String> = data.iter().map(|v| v.to_string()).collect();
                    format!("\"{}\":[{}]", json_escape(name), items.join(","))
                })
                .collect();
            fields.push(format!("\"arrays\":{{{}}}", arrays.join(",")));
        }
        if let Some(n) = self.n_max {
            fields.push(format!("\"n_max\":{n}"));
        }
        if let Some(f) = self.factor_f {
            fields.push(format!("\"factor_f\":{f}"));
        }
        if let Some(g) = self.factor_g {
            fields.push(format!("\"factor_g\":{g}"));
        }
        if let Some(w) = &self.weights {
            let items: Vec<String> = w.iter().map(|v| v.to_string()).collect();
            fields.push(format!("\"weights\":[{}]", items.join(",")));
        }
        if self.kind == ComputeKind::Verify {
            let items: Vec<String> = self.clusters.iter().map(|v| v.to_string()).collect();
            fields.push(format!("\"clusters\":[{}]", items.join(",")));
            fields.push(format!("\"set_index\":{}", self.set_index));
        }
        if let Some(p) = &self.operating_point {
            fields.push(format!(
                "\"operating_point\":{{\"node_nm\":{},\"vdd\":{}}}",
                p.node_nm, p.vdd
            ));
        }
        format!("{{{}}}", fields.join(","))
    }
}

/// Any parsed request line.
enum Request {
    Compute(Box<ComputeRequest>),
    Stats { id: Option<u64> },
    Shutdown { id: Option<u64> },
}

fn opt_u64(v: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn opt_f64(v: &JsonValue, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a number")),
    }
}

/// Parses one request line.
fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line)?;
    if !matches!(v, JsonValue::Obj(_)) {
        return Err("request must be a JSON object".into());
    }
    let id = opt_u64(&v, "id")?;
    let cmd = v
        .get("cmd")
        .and_then(JsonValue::as_str)
        .ok_or("request needs a string `cmd`")?;
    let kind = match cmd {
        "stats" => return Ok(Request::Stats { id }),
        "shutdown" => return Ok(Request::Shutdown { id }),
        "partition" => ComputeKind::Partition,
        "explore" => ComputeKind::Explore,
        "verify" => ComputeKind::Verify,
        other => return Err(format!("unknown cmd `{other}`")),
    };
    let source = v
        .get("source")
        .and_then(JsonValue::as_str)
        .ok_or("compute requests need a string `source`")?;
    let mut req = ComputeRequest::new(kind, source);
    req.id = id;
    if let Some(arrays) = v.get("arrays") {
        let JsonValue::Obj(entries) = arrays else {
            return Err("`arrays` must be an object of integer arrays".into());
        };
        for (name, value) in entries {
            let items = value
                .as_array()
                .ok_or_else(|| format!("array `{name}` must be a JSON array"))?;
            let mut data = Vec::with_capacity(items.len());
            for item in items {
                let x = item
                    .as_f64()
                    .filter(|x| x.fract() == 0.0 && x.abs() < i64::MAX as f64)
                    .ok_or_else(|| format!("array `{name}` must hold integers"))?;
                data.push(x as i64);
            }
            req.arrays.push((name.clone(), data));
        }
    }
    req.n_max = opt_u64(&v, "n_max")?.map(|n| n as usize);
    req.factor_f = opt_f64(&v, "factor_f")?;
    req.factor_g = opt_f64(&v, "factor_g")?;
    if let Some(weights) = v.get("weights") {
        let items = weights
            .as_array()
            .ok_or("`weights` must be an array of numbers")?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            out.push(
                item.as_f64()
                    .ok_or("`weights` must be an array of numbers")?,
            );
        }
        req.weights = Some(out);
    }
    if let Some(clusters) = v.get("clusters") {
        let items = clusters
            .as_array()
            .ok_or("`clusters` must be an array of cluster ids")?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let id = item
                .as_u64()
                .filter(|&x| x <= u64::from(u32::MAX))
                .ok_or("`clusters` must be an array of cluster ids")?;
            out.push(id as u32);
        }
        req.clusters = out;
    }
    if let Some(set) = opt_u64(&v, "set_index")? {
        req.set_index = set as usize;
    }
    match v.get("operating_point") {
        None | Some(JsonValue::Null) => {}
        Some(point) => {
            let bad = "`operating_point` must be {\"node_nm\":<int>,\"vdd\":<number>}";
            if !matches!(point, JsonValue::Obj(_)) {
                return Err(bad.into());
            }
            let node_nm = point
                .get("node_nm")
                .and_then(JsonValue::as_u64)
                .filter(|&n| n <= u64::from(u32::MAX))
                .ok_or(bad)?;
            let vdd = point.get("vdd").and_then(JsonValue::as_f64).ok_or(bad)?;
            req.operating_point = Some(OperatingPoint {
                node_nm: node_nm as u32,
                vdd,
            });
        }
    }
    Ok(req.into())
}

impl From<ComputeRequest> for Request {
    fn from(req: ComputeRequest) -> Self {
        Request::Compute(Box::new(req))
    }
}

/// The shard-routing fingerprint of a compute request: the raw source
/// and array text, so routing needs no parse. Two requests with
/// identical text always share a shard (and therefore its warm
/// artifacts); texts that merely normalize to the same application may
/// land apart — they would also fingerprint apart in the CLI flow.
pub fn request_fingerprint(req: &ComputeRequest) -> u64 {
    let mut text = req.source.clone();
    for (name, data) in &req.arrays {
        text.push('\0');
        text.push_str(name);
        text.push('=');
        for v in data {
            text.push_str(&v.to_string());
            text.push(',');
        }
    }
    crate::engine::fnv64(&text)
}

fn parse_app(source: &str) -> Result<Application, CorepartError> {
    Ok(lower(&parse(source)?)?)
}

/// The per-request configuration: the daemon base with the request's
/// searchable-knob overrides applied.
fn effective_config(base: &SystemConfig, req: &ComputeRequest) -> SystemConfig {
    let mut config = base.clone();
    if let Some(n) = req.n_max {
        config.n_max = n;
    }
    if let Some(f) = req.factor_f {
        config.factor_f = f;
    }
    if let Some(g) = req.factor_g {
        config.factor_g = g;
    }
    if let Some(p) = req.operating_point {
        config.operating_point = Some(p);
    }
    config
}

type ComputeOutput = (String, Option<SessionStats>);

/// Runs one compute request against `engine` and renders the
/// deterministic `result` payload. Shared verbatim by the warm
/// ([`respond_compute`]) and fresh ([`respond_fresh`]) paths — the
/// byte-identity guarantee lives here.
fn compute_result(
    engine: &Engine,
    req: &ComputeRequest,
    app: &Application,
    workload: &Workload,
    config: SystemConfig,
) -> Result<ComputeOutput, CorepartError> {
    // Resolve the operating point first: an unknown node or an
    // out-of-range vdd is a `config` error before any simulation runs.
    let point = config.resolved_point()?;
    match req.kind {
        ComputeKind::Partition => {
            let session = engine.session_with_config(app, workload, config)?;
            let outcome = Partitioner::new(&session)?.run()?;
            Ok((
                outcome_result_json_at(app.name(), &outcome, point.as_ref()),
                Some(session.stats()),
            ))
        }
        ComputeKind::Verify => {
            if req.clusters.is_empty() {
                return Err(CorepartError::Config {
                    message: "verify needs at least one cluster".into(),
                });
            }
            let set = config.resource_set(req.set_index)?.clone();
            let session = engine.session_with_config(app, workload, config)?;
            let chain_len = session.prepared()?.chain.len();
            for &cid in &req.clusters {
                if cid as usize >= chain_len {
                    return Err(CorepartError::Config {
                        message: format!(
                            "cluster {cid} out of range (the chain has {chain_len} clusters)"
                        ),
                    });
                }
            }
            let partition = Partition {
                clusters: req.clusters.iter().map(|&c| ClusterId(c)).collect(),
                set,
            };
            let detail = Partitioner::new(&session)?.evaluate(&partition)?;
            Ok((
                verify_result_json_at(app.name(), &partition, &detail, point.as_ref()),
                Some(session.stats()),
            ))
        }
        ComputeKind::Explore => {
            let weights = req
                .weights
                .clone()
                .unwrap_or_else(|| EXPLORE_WEIGHTS.to_vec());
            let configs = hardware_weight_sweep(&weights, &config);
            let ex = explore_in(engine, app, workload, &configs)?;
            Ok((exploration_to_json_at(&ex, point.as_ref()), None))
        }
    }
}

fn id_json(id: Option<u64>) -> String {
    id.map_or_else(|| "null".to_owned(), |i| i.to_string())
}

fn session_stats_json(s: &SessionStats) -> String {
    format!(
        concat!(
            "{{\"prepare_shared\":{},\"baseline_shared\":{},",
            "\"schedule_cache_hits\":{},\"schedule_cache_misses\":{},",
            "\"replays\":{},\"replay_hits\":{},",
            "\"batched_replays\":{},\"batch_shards\":{}}}"
        ),
        s.prepare_shared,
        s.baseline_shared,
        s.schedule_cache_hits,
        s.schedule_cache_misses,
        s.replays,
        s.replay_hits,
        s.batched_replays,
        s.batch_shards,
    )
}

fn success_response(
    req: &ComputeRequest,
    result: &str,
    request: Option<&RequestStats>,
    session: Option<SessionStats>,
) -> String {
    let mut stats = Vec::new();
    match request {
        Some(r) => {
            stats.push(format!("\"shard\":{}", r.shard));
            stats.push(format!("\"store_hit\":{}", r.store_hit));
            stats.push(format!("\"elapsed_nanos\":{}", r.elapsed_nanos));
        }
        None => {
            stats.push("\"shard\":null".to_owned());
            stats.push("\"store_hit\":false".to_owned());
        }
    }
    if let Some(s) = session {
        stats.push(format!("\"session\":{}", session_stats_json(&s)));
    }
    format!(
        "{{\"id\":{},\"ok\":true,\"cmd\":\"{}\",\"result\":{},\"stats\":{{{}}}}}",
        id_json(req.id),
        req.kind.name(),
        result,
        stats.join(","),
    )
}

fn error_kind(e: &CorepartError) -> &'static str {
    match e {
        CorepartError::Ir(_) => "ir",
        CorepartError::Sim(_) => "sim",
        CorepartError::Sched(_) => "sched",
        CorepartError::Config { .. } => "config",
    }
}

fn error_response_kind(id: Option<u64>, kind: &str, message: &str) -> String {
    format!(
        "{{\"id\":{},\"ok\":false,\"error\":{{\"kind\":\"{}\",\"message\":\"{}\"}}}}",
        id_json(id),
        kind,
        json_escape(message),
    )
}

fn error_response(id: Option<u64>, e: &CorepartError) -> String {
    error_response_kind(id, error_kind(e), &e.to_string())
}

fn latency_json(l: &crate::store::LatencyStats) -> String {
    format!(
        "{{\"count\":{},\"p50_nanos\":{},\"p95_nanos\":{},\"p99_nanos\":{}}}",
        l.count, l.p50_nanos, l.p95_nanos, l.p99_nanos,
    )
}

/// Renders a [`StoreStats`] snapshot as the `stats` command's response.
pub fn stats_response(store: &ArtifactStore, id: Option<u64>) -> String {
    let s: StoreStats = store.stats();
    let shards: Vec<String> = s
        .shards
        .iter()
        .map(|sh| {
            format!(
                concat!(
                    "{{\"requests\":{},\"hits\":{},\"evictions\":{},",
                    "\"declined\":{},\"entries\":{},\"bytes\":{}}}"
                ),
                sh.requests, sh.hits, sh.evictions, sh.declined, sh.entries, sh.bytes,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"id\":{},\"ok\":true,\"cmd\":\"stats\",\"result\":",
            "{{\"budget_bytes\":{},\"bytes\":{},\"requests\":{},\"hits\":{},",
            "\"hit_rate\":{},\"evictions\":{},\"declined\":{},",
            "\"latency\":{},\"shards\":[{}]}}}}"
        ),
        id_json(id),
        s.budget_bytes,
        s.bytes,
        s.requests,
        s.hits,
        s.hit_rate(),
        s.evictions,
        s.declined,
        latency_json(&s.latency),
        shards.join(","),
    )
}

/// The store's result-memo key: the session identity plus every knob
/// the deterministic `result` payload depends on. Requests with equal
/// keys are guaranteed byte-identical answers, so the store may serve
/// the second from its memo without touching the engine.
fn request_result_key(identity: &str, req: &ComputeRequest) -> String {
    format!(
        "{identity}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{}|{:?}",
        req.kind.name(),
        req.n_max,
        req.factor_f,
        req.factor_g,
        req.weights,
        req.clusters,
        req.set_index,
        req.operating_point,
    )
}

/// Answers one compute request from the warm store.
pub fn respond_compute(store: &ArtifactStore, req: &ComputeRequest) -> String {
    let app = match parse_app(&req.source) {
        Ok(app) => app,
        Err(e) => return error_response(req.id, &e),
    };
    let workload = Workload::from_arrays(req.arrays.clone());
    let identity = session_identity(&app, &workload);
    let config = effective_config(store.base_config(), req);
    let (outcome, rstats) = store.with_result(
        request_fingerprint(req),
        &identity,
        &request_result_key(&identity, req),
        |engine| compute_result(engine, req, &app, &workload, config),
    );
    match outcome {
        Ok((result, session)) => success_response(req, &result, Some(&rstats), session.flatten()),
        Err(e) => error_response(req.id, &e),
    }
}

/// Answers one compute request from a fresh, throwaway [`Engine`] —
/// the oracle the served (warm) path must byte-match on the `result`
/// field (the `stats` field legitimately differs).
pub fn respond_fresh(base: &SystemConfig, req: &ComputeRequest) -> String {
    let app = match parse_app(&req.source) {
        Ok(app) => app,
        Err(e) => return error_response(req.id, &e),
    };
    let workload = Workload::from_arrays(req.arrays.clone());
    let config = effective_config(base, req);
    let engine = match Engine::new(base.clone()) {
        Ok(engine) => engine,
        Err(e) => return error_response(req.id, &e),
    };
    match compute_result(&engine, req, &app, &workload, config) {
        Ok((result, session)) => success_response(req, &result, None, session),
        Err(e) => error_response(req.id, &e),
    }
}

/// Answers one request line against `store`. Returns the response line
/// (no trailing newline) and whether the line was a shutdown request.
/// This is the whole protocol — the TCP layer only moves lines; tests
/// and in-process clients may call it directly.
pub fn handle_line(store: &ArtifactStore, line: &str) -> (String, bool) {
    match parse_request(line) {
        Err(message) => (error_response_kind(None, "request", &message), false),
        Ok(Request::Stats { id }) => (stats_response(store, id), false),
        Ok(Request::Shutdown { id }) => (
            format!(
                "{{\"id\":{},\"ok\":true,\"cmd\":\"shutdown\",\"result\":null}}",
                id_json(id)
            ),
            true,
        ),
        Ok(Request::Compute(req)) => (respond_compute(store, &req), false),
    }
}

/// One routed compute job: the raw request line and its reply slot.
struct Job {
    line: String,
    reply: mpsc::Sender<String>,
}

/// A running serve daemon: the listener, one worker thread per store
/// shard, and the shared [`ArtifactStore`].
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    store: Arc<ArtifactStore>,
    shutdown: Arc<AtomicBool>,
    listener: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:{opts.port}` and starts the worker and accept
    /// threads. `opts.threads` overrides the base configuration's
    /// verification thread count, so served sessions drive the sharded
    /// batched-replay kernel.
    ///
    /// # Errors
    ///
    /// [`CorepartError::Config`] when the bind fails, the options are
    /// invalid, or a thread cannot be spawned.
    pub fn spawn(base: SystemConfig, opts: &ServeOptions) -> Result<Server, CorepartError> {
        let spawn_err = |e: std::io::Error| CorepartError::Config {
            message: format!("cannot spawn a serve thread: {e}"),
        };
        let mut config = base;
        if opts.threads != 0 {
            config.threads = opts.threads;
        }
        let store = Arc::new(ArtifactStore::new(
            config,
            &StoreOptions {
                shards: opts.shards,
                budget_bytes: opts.budget_bytes,
                ..StoreOptions::default()
            },
        )?);
        let listener =
            TcpListener::bind(("127.0.0.1", opts.port)).map_err(|e| CorepartError::Config {
                message: format!("cannot bind 127.0.0.1:{}: {e}", opts.port),
            })?;
        let addr = listener.local_addr().map_err(|e| CorepartError::Config {
            message: format!("cannot resolve the listen address: {e}"),
        })?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let mut senders = Vec::with_capacity(store.shards());
        for shard in 0..store.shards() {
            let (tx, rx) = mpsc::channel::<Job>();
            senders.push(tx);
            let worker_store = Arc::clone(&store);
            thread::Builder::new()
                .name(format!("corepart-shard-{shard}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let (response, _) = handle_line(&worker_store, &job.line);
                        let _ = job.reply.send(response);
                    }
                })
                .map_err(spawn_err)?;
        }
        let senders = Arc::new(senders);

        let accept_store = Arc::clone(&store);
        let accept_shutdown = Arc::clone(&shutdown);
        let listener_handle = thread::Builder::new()
            .name("corepart-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn_store = Arc::clone(&accept_store);
                    let conn_senders = Arc::clone(&senders);
                    let conn_shutdown = Arc::clone(&accept_shutdown);
                    let _ = thread::Builder::new()
                        .name("corepart-conn".into())
                        .spawn(move || {
                            serve_connection(
                                stream,
                                &conn_store,
                                &conn_senders,
                                &conn_shutdown,
                                addr,
                            );
                        });
                }
            })
            .map_err(spawn_err)?;

        Ok(Server {
            addr,
            store,
            shutdown,
            listener: Some(listener_handle),
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's artifact store (for in-process stats).
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// Requests shutdown from outside the protocol and wakes the
    /// accept loop (a client's `shutdown` request does both itself).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }

    /// Blocks until the accept loop exits — i.e. until some client
    /// sent `shutdown` (or [`Server::shutdown`] was called). Shard
    /// workers drain and exit once every live connection closes.
    pub fn join(mut self) {
        if let Some(handle) = self.listener.take() {
            let _ = handle.join();
        }
    }
}

/// Reads request lines from one client until it disconnects (or sends
/// `shutdown`), routing compute work to the owning shard's worker.
fn serve_connection(
    stream: TcpStream,
    store: &ArtifactStore,
    senders: &[mpsc::Sender<Job>],
    shutdown: &AtomicBool,
    addr: SocketAddr,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (response, stop) = match parse_request(&line) {
            Ok(Request::Compute(req)) => {
                // The worker re-parses the line; requests are tiny next
                // to the compute they trigger, and one code path
                // (`handle_line`) answers everything.
                let shard = store.shard_of(request_fingerprint(&req));
                let (tx, rx) = mpsc::channel();
                let sent = senders[shard]
                    .send(Job {
                        line: line.clone(),
                        reply: tx,
                    })
                    .is_ok();
                match sent.then(|| rx.recv().ok()).flatten() {
                    Some(response) => (response, false),
                    None => break,
                }
            }
            _ => handle_line(store, &line),
        };
        if writer.write_all(response.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            break;
        }
        if stop {
            shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(addr);
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::result_field;

    const SRC: &str = r#"app srv; var x[24]; var acc = 0;
        func main() {
            for (var i = 0; i < 24; i = i + 1) { acc = acc + x[i] * 5; }
            return acc;
        }"#;

    fn request(kind: ComputeKind) -> ComputeRequest {
        let mut req = ComputeRequest::new(kind, SRC);
        req.id = Some(7);
        req.arrays = vec![("x".into(), (0..24).collect())];
        req
    }

    fn store() -> ArtifactStore {
        ArtifactStore::new(SystemConfig::new(), &StoreOptions::default()).unwrap()
    }

    #[test]
    fn request_wire_format_round_trips() {
        let mut req = request(ComputeKind::Verify);
        req.clusters = vec![0, 2];
        req.set_index = 1;
        req.n_max = Some(3);
        req.factor_g = Some(0.5);
        let Ok(Request::Compute(parsed)) = parse_request(&req.to_json()) else {
            panic!("round trip failed");
        };
        assert_eq!(parsed.id, Some(7));
        assert_eq!(parsed.kind, ComputeKind::Verify);
        assert_eq!(parsed.source, SRC);
        assert_eq!(parsed.arrays, req.arrays);
        assert_eq!(parsed.n_max, Some(3));
        assert_eq!(parsed.factor_g, Some(0.5));
        assert_eq!(parsed.clusters, vec![0, 2]);
        assert_eq!(parsed.set_index, 1);
        assert_eq!(request_fingerprint(&parsed), request_fingerprint(&req));
    }

    #[test]
    fn malformed_lines_get_request_errors() {
        let store = store();
        for line in [
            "not json",
            "[1,2]",
            "{\"cmd\":\"fly\"}",
            "{\"cmd\":\"partition\"}",
            "{\"cmd\":\"partition\",\"source\":\"app x;\",\"arrays\":{\"x\":[0.5]}}",
        ] {
            let (response, stop) = handle_line(&store, line);
            assert!(!stop);
            assert!(response.contains("\"ok\":false"), "{line} -> {response}");
            assert!(response.contains("\"kind\":\"request\""), "{response}");
        }
    }

    #[test]
    fn serve_answers_warm_and_matches_fresh() {
        let store = store();
        let line = request(ComputeKind::Partition).to_json();
        let (cold, _) = handle_line(&store, &line);
        let (warm, _) = handle_line(&store, &line);
        assert!(cold.contains("\"ok\":true"), "{cold}");
        assert!(warm.contains("\"store_hit\":true"), "{warm}");
        // The repeat is served from the result memo: no fresh session
        // ran, so its stats carry no session counters.
        assert!(cold.contains("\"session\""), "{cold}");
        assert!(!warm.contains("\"session\""), "{warm}");
        let fresh = respond_fresh(store.base_config(), &request(ComputeKind::Partition));
        assert_eq!(result_field(&cold), result_field(&fresh));
        assert_eq!(result_field(&warm), result_field(&fresh));

        let (stats, _) = handle_line(&store, "{\"cmd\":\"stats\"}");
        assert!(stats.contains("\"requests\":2"), "{stats}");
        assert!(stats.contains("\"hits\":1"), "{stats}");
        assert!(stats.contains("\"p99_nanos\":"), "{stats}");
    }

    #[test]
    fn operating_point_round_trips_and_keys_the_memo() {
        let mut req = request(ComputeKind::Partition);
        req.operating_point = Some(OperatingPoint {
            node_nm: 180,
            vdd: 1.8,
        });
        let Ok(Request::Compute(parsed)) = parse_request(&req.to_json()) else {
            panic!("round trip failed");
        };
        assert_eq!(
            parsed.operating_point,
            Some(OperatingPoint {
                node_nm: 180,
                vdd: 1.8
            })
        );
        // Same app, different point -> different result-memo key.
        let base = request(ComputeKind::Partition);
        assert_ne!(
            request_result_key("id", &req),
            request_result_key("id", &base)
        );
        // Same text fingerprint -> same shard, shared baseline artifacts.
        assert_eq!(request_fingerprint(&req), request_fingerprint(&base));
    }

    #[test]
    fn served_point_answers_match_fresh_and_extend_the_base() {
        let store = store();
        let mut req = request(ComputeKind::Partition);
        req.operating_point = Some(OperatingPoint {
            node_nm: 180,
            vdd: 1.8,
        });
        let line = req.to_json();
        let (warm, _) = handle_line(&store, &line);
        assert!(warm.contains("\"ok\":true"), "{warm}");
        assert!(
            warm.contains("\"operating_point\":{\"node_nm\":180,\"vdd\":1.8,"),
            "{warm}"
        );
        let fresh = respond_fresh(store.base_config(), &req);
        assert_eq!(result_field(&warm), result_field(&fresh));
        // The base (no-point) answer is a strict byte prefix of the
        // pointed answer modulo the closing brace: the weighting pass
        // only appends.
        let (plain, _) = handle_line(&store, &request(ComputeKind::Partition).to_json());
        let plain_result = result_field(&plain).unwrap();
        let point_result = result_field(&warm).unwrap();
        assert!(
            point_result.starts_with(&plain_result[..plain_result.len() - 1]),
            "{point_result}"
        );
    }

    #[test]
    fn out_of_range_vdd_is_a_config_error() {
        let store = store();
        let mut req = request(ComputeKind::Partition);
        req.operating_point = Some(OperatingPoint {
            node_nm: 180,
            vdd: 0.2,
        });
        let (response, _) = handle_line(&store, &req.to_json());
        assert!(response.contains("\"ok\":false"), "{response}");
        assert!(response.contains("\"kind\":\"config\""), "{response}");
        assert!(response.contains("outside"), "{response}");
        // Unknown node too.
        let mut req = request(ComputeKind::Partition);
        req.operating_point = Some(OperatingPoint {
            node_nm: 123,
            vdd: 1.0,
        });
        let (response, _) = handle_line(&store, &req.to_json());
        assert!(response.contains("\"kind\":\"config\""), "{response}");
        assert!(response.contains("unknown technology node"), "{response}");
    }

    #[test]
    fn verify_rejects_out_of_range_clusters() {
        let store = store();
        let mut req = request(ComputeKind::Verify);
        req.clusters = vec![99];
        let (response, _) = handle_line(&store, &req.to_json());
        assert!(response.contains("\"kind\":\"config\""), "{response}");
        assert!(response.contains("out of range"), "{response}");
    }

    #[test]
    fn tcp_round_trip_and_shutdown() {
        let server = Server::spawn(
            SystemConfig::new(),
            &ServeOptions {
                port: 0,
                shards: 2,
                threads: 1,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut send = |line: &str| {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
            let mut response = String::new();
            std::io::BufRead::read_line(&mut reader, &mut response).unwrap();
            response
        };
        let answer = send(&request(ComputeKind::Explore).to_json());
        assert!(answer.contains("\"ok\":true"), "{answer}");
        assert!(answer.contains("\"points\""), "{answer}");
        let stats = send("{\"id\":8,\"cmd\":\"stats\"}");
        assert!(stats.contains("\"requests\":1"), "{stats}");
        let bye = send("{\"id\":9,\"cmd\":\"shutdown\"}");
        assert!(bye.contains("\"cmd\":\"shutdown\""), "{bye}");
        server.join();
    }
}
