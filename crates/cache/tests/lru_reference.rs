//! Property tests of the cache simulator against an executable
//! reference model (a naive fully-explicit LRU list per set).

use proptest::prelude::*;

use corepart_cache::cache::Cache;
use corepart_cache::config::{CacheConfig, Replacement, WritePolicy};

/// Naive reference: per set, a vector of (tag, dirty) in MRU→LRU order.
struct RefLru {
    sets: Vec<Vec<(u64, bool)>>,
    ways: usize,
    line: u64,
    nsets: u64,
    write_back: bool,
    hits: u64,
    fills: u64,
    writebacks: u64,
}

impl RefLru {
    fn new(size: usize, line: usize, ways: usize, write_back: bool) -> Self {
        let nsets = size / (line * ways);
        RefLru {
            sets: vec![Vec::new(); nsets],
            ways,
            line: line as u64,
            nsets: nsets as u64,
            write_back,
            hits: 0,
            fills: 0,
            writebacks: 0,
        }
    }

    fn access(&mut self, addr: u32, write: bool) {
        let lineno = addr as u64 / self.line;
        let set = (lineno % self.nsets) as usize;
        let tag = lineno / self.nsets;
        let lanes = &mut self.sets[set];
        if let Some(pos) = lanes.iter().position(|&(t, _)| t == tag) {
            let (t, mut d) = lanes.remove(pos);
            if write && self.write_back {
                d = true;
            }
            lanes.insert(0, (t, d));
            self.hits += 1;
            return;
        }
        // Miss. Write-through + no-allocate skips the fill on writes.
        if write && !self.write_back {
            return;
        }
        if lanes.len() == self.ways {
            let (_, dirty) = lanes.pop().expect("full set");
            if dirty {
                self.writebacks += 1;
            }
        }
        lanes.insert(0, (tag, write && self.write_back));
        self.fills += 1;
    }
}

fn geometry() -> impl Strategy<Value = (usize, usize, usize)> {
    // (size, line, ways) — small geometries stress conflicts.
    prop_oneof![
        Just((256usize, 16usize, 1usize)),
        Just((256, 16, 2)),
        Just((512, 32, 4)),
        Just((1024, 16, 4)),
        Just((128, 16, 1)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_back_lru_matches_reference(
        (size, line, ways) in geometry(),
        trace in prop::collection::vec((0u32..4096, any::<bool>()), 1..400),
    ) {
        let config = CacheConfig::new(
            size, line, ways, Replacement::Lru, WritePolicy::WriteBack, 8,
        ).expect("valid geometry");
        let mut dut = Cache::new(config);
        let mut reference = RefLru::new(size, line, ways, true);
        for &(addr, write) in &trace {
            let addr = addr & !3; // word aligned
            if write {
                dut.write(addr);
            } else {
                dut.read(addr);
            }
            reference.access(addr, write);
        }
        let s = dut.stats();
        prop_assert_eq!(s.read_hits + s.write_hits, reference.hits);
        prop_assert_eq!(s.fills, reference.fills);
        prop_assert_eq!(s.writebacks, reference.writebacks);
    }

    #[test]
    fn write_through_lru_matches_reference(
        (size, line, ways) in geometry(),
        trace in prop::collection::vec((0u32..4096, any::<bool>()), 1..400),
    ) {
        let config = CacheConfig::new(
            size, line, ways, Replacement::Lru, WritePolicy::WriteThrough, 8,
        ).expect("valid geometry");
        let mut dut = Cache::new(config);
        let mut reference = RefLru::new(size, line, ways, false);
        for &(addr, write) in &trace {
            let addr = addr & !3;
            if write {
                dut.write(addr);
            } else {
                dut.read(addr);
            }
            reference.access(addr, write);
        }
        let s = dut.stats();
        prop_assert_eq!(s.read_hits + s.write_hits, reference.hits);
        prop_assert_eq!(s.fills, reference.fills);
        prop_assert_eq!(s.writebacks, 0u64);
    }

    /// LRU inclusion: under the same trace, a 2x-associative cache of
    /// the same size never takes more misses than direct-mapped... is
    /// false in general (Belady), but LRU *stack property* holds for
    /// fully-associative caches of growing size: bigger is never worse.
    #[test]
    fn lru_stack_property_fully_associative(
        trace in prop::collection::vec(0u32..2048, 1..300),
    ) {
        let run = |lines: usize| {
            let size = lines * 16;
            let config = CacheConfig::new(
                size, 16, lines, Replacement::Lru, WritePolicy::WriteBack, 8,
            ).expect("fully associative");
            let mut c = Cache::new(config);
            for &a in &trace {
                c.read(a & !3);
            }
            c.stats().misses()
        };
        prop_assert!(run(8) >= run(16));
        prop_assert!(run(4) >= run(8));
    }

    /// Determinism: any policy, same trace, same stats.
    #[test]
    fn caches_deterministic(
        trace in prop::collection::vec((0u32..4096, any::<bool>()), 1..200),
        policy in prop_oneof![
            Just(Replacement::Lru),
            Just(Replacement::Fifo),
            Just(Replacement::Random)
        ],
    ) {
        let run = || {
            let config = CacheConfig::new(
                512, 16, 2, policy, WritePolicy::WriteBack, 8,
            ).expect("valid geometry");
            let mut c = Cache::new(config);
            for &(a, w) in &trace {
                if w { c.write(a & !3); } else { c.read(a & !3); }
            }
            c.stats()
        };
        prop_assert_eq!(run(), run());
    }

    /// Conservation: accesses = hits + fills + (write-through misses).
    #[test]
    fn access_accounting_conserves(
        trace in prop::collection::vec((0u32..4096, any::<bool>()), 1..300),
    ) {
        let config = CacheConfig::new(
            256, 16, 1, Replacement::Lru, WritePolicy::WriteThrough, 8,
        ).expect("valid geometry");
        let mut c = Cache::new(config);
        for &(a, w) in &trace {
            if w { c.write(a & !3); } else { c.read(a & !3); }
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses(), trace.len() as u64);
        // Every miss is either a fill (read) or a write-through write.
        let wt_miss_writes = s.misses() - s.fills;
        prop_assert!(wt_miss_writes <= s.write_throughs);
    }
}
