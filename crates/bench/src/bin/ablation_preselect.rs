//! Ablation **A2** — pre-selection budget `N_max^c` sensitivity.
//!
//! Fig. 1 line 5 keeps at most `N_max` clusters so that the expensive
//! schedule/bind/utilization loop (lines 6–13) stays cheap. This sweep
//! shows how the achieved saving and the number of estimated candidate
//! pairs vary with `N_max ∈ {1, 2, 4, 8}` — the point being that a
//! small budget already reaches the full-quality partition because the
//! bus-traffic criterion ranks the right clusters first.
//!
//! ```text
//! cargo run --release -p corepart-bench --bin ablation_preselect
//! ```

use corepart::system::SystemConfig;
use corepart_bench::run_workload;
use corepart_workloads::all;

fn main() {
    println!("A2: pre-selection budget sweep\n");
    println!(
        "{:<8} {:>6} {:>10} {:>12} {:>12}",
        "app", "N_max", "saving%", "estimated", "candidates"
    );
    for w in all() {
        for n_max in [1usize, 2, 4, 8] {
            let config = SystemConfig::new().with_n_max(n_max);
            let result = run_workload(&w, &config);
            let saving = result
                .outcome
                .energy_saving_percent()
                .map(|s| format!("{s:.1}"))
                .unwrap_or_else(|| "--".into());
            println!(
                "{:<8} {:>6} {:>10} {:>12} {:>12}",
                w.name,
                n_max,
                saving,
                result.outcome.search.estimated,
                result.outcome.search.candidates
            );
        }
        println!();
    }
}
