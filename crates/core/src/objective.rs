//! The objective function `OF` of Fig. 1 line 13.
//!
//! `OF = F · (E_R + E_µP + E_rest)/E_0 + G · GEQ/GEQ_0` — a
//! superposition of the normalized total system energy and the
//! normalized additional hardware effort. `F` "is a factor given by the
//! designer to balance the objective function between energy
//! consumption and possible other design constraints" (§3.2); the
//! hardware term (the "…" of line 13) is what makes the algorithm
//! "reject clusters that would result in an unacceptably high hardware
//! effort" (§4, the `trick` discussion).
//!
//! Lower is better; the initial design scores `OF = F` (energy ratio 1,
//! no extra hardware).

use corepart_tech::units::{Energy, GateEq};

use crate::system::SystemConfig;

/// An objective function bound to a normalization baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objective {
    factor_f: f64,
    factor_g: f64,
    e_norm: Energy,
    geq_norm: GateEq,
}

impl Objective {
    /// Builds the objective from the designer's config and the initial
    /// design's total energy (`E_0`).
    ///
    /// # Panics
    ///
    /// Panics if `e_norm` is non-positive — normalize against a real
    /// initial design.
    pub fn new(config: &SystemConfig, e_norm: Energy) -> Self {
        assert!(
            e_norm.joules() > 0.0,
            "objective normalization energy must be positive"
        );
        Objective {
            factor_f: config.factor_f,
            factor_g: config.factor_g,
            e_norm,
            geq_norm: config.geq_norm,
        }
    }

    /// Evaluates `OF` for a design with the given total energy and
    /// additional hardware.
    pub fn value(&self, total_energy: Energy, geq: GateEq) -> f64 {
        let e_term = self.factor_f * (total_energy / self.e_norm);
        let hw_term = self.factor_g * geq.ratio(self.geq_norm).unwrap_or(0.0);
        e_term + hw_term
    }

    /// The initial design's score (`F`, by construction).
    pub fn initial_value(&self) -> f64 {
        self.factor_f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(f: f64, g: f64) -> Objective {
        let config = SystemConfig::new().with_factors(f, g);
        Objective::new(&config, Energy::from_millijoules(10.0))
    }

    #[test]
    fn initial_scores_f() {
        let o = obj(1.0, 0.2);
        assert_eq!(o.initial_value(), 1.0);
        assert!((o.value(Energy::from_millijoules(10.0), GateEq::ZERO) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_halving_halves_term() {
        let o = obj(1.0, 0.0);
        let v = o.value(Energy::from_millijoules(5.0), GateEq::new(8_000));
        assert!((v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hardware_term_penalizes() {
        let o = obj(1.0, 0.2);
        let cheap = o.value(Energy::from_millijoules(5.0), GateEq::new(4_000));
        let pricey = o.value(Energy::from_millijoules(5.0), GateEq::new(32_000));
        assert!(pricey > cheap);
        // 32k cells at GEQ_0 = 16k and G = 0.2 adds 0.4.
        assert!((pricey - (0.5 + 0.4)).abs() < 1e-12);
    }

    #[test]
    fn large_f_drowns_hardware_term() {
        let big_f = obj(10.0, 0.2);
        let a = big_f.value(Energy::from_millijoules(5.0), GateEq::ZERO);
        let b = big_f.value(Energy::from_millijoules(5.0), GateEq::new(16_000));
        assert!((b - a - 0.2).abs() < 1e-12);
        assert!(a >= 5.0 - 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_normalization_panics() {
        let config = SystemConfig::new();
        let _ = Objective::new(&config, Energy::ZERO);
    }
}
