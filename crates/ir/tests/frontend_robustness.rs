//! Robustness properties of the DSL front end: arbitrary byte soup must
//! never panic the lexer/parser — errors, yes; crashes, no.

use proptest::prelude::*;

use corepart_ir::lexer::lex;
use corepart_ir::lower::lower;
use corepart_ir::parser::parse;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer totalizes: any string either tokenizes or returns a
    /// located error.
    #[test]
    fn lexer_never_panics(src in ".{0,200}") {
        let _ = lex(&src);
    }

    /// Same for printable-ASCII-heavy inputs that look more like code.
    #[test]
    fn lexer_never_panics_on_codey_input(
        src in "[a-z0-9 +\\-*/%<>=!&|^~(){}\\[\\];,\n]{0,300}"
    ) {
        let _ = lex(&src);
    }

    /// The parser totalizes over token streams.
    #[test]
    fn parser_never_panics(
        src in "[a-z0-9 +\\-*/%<>=!&|^~(){}\\[\\];,\n]{0,300}"
    ) {
        let _ = parse(&src);
    }

    /// Parser + lowering never panic on syntactically plausible
    /// fragments wrapped in a valid skeleton.
    #[test]
    fn lowering_never_panics_on_arbitrary_bodies(
        body in "[a-z0-9 +\\-*/%<>=;()]{0,120}"
    ) {
        let src = format!("app fuzz; var g = 0; func main() {{ {body} }}");
        if let Ok(prog) = parse(&src) {
            let _ = lower(&prog);
        }
    }

    /// Every successfully lowered program passes structural
    /// verification and interprets without panicking (errors allowed).
    #[test]
    fn lowered_programs_are_wellformed(
        a in -50i64..50,
        b in -50i64..50,
        op in 0usize..5,
    ) {
        let ops = ["+", "-", "*", "/", "%"];
        let src = format!(
            "app f; var g = {a}; func main() {{ var x = g {} {b}; while (x > 0) {{ x = x - 7; }} return x; }}",
            ops[op]
        );
        let prog = parse(&src).expect("skeleton parses");
        let app = lower(&prog).expect("skeleton lowers");
        prop_assert!(corepart_ir::domtree::verify_structure(&app).is_empty());
        let _ = corepart_ir::interp::Interpreter::new(&app).run(100_000);
    }
}

#[test]
fn error_messages_carry_locations() {
    // A spot check that diagnostics stay useful.
    for bad in [
        "app x",                                // missing ;
        "app x; func main() { var = 3; }",      // missing name
        "app x; func main() { a[; }",           // broken index
        "app x; const K = f(); func main() {}", // non-const
    ] {
        let err = parse(bad).expect_err("must fail");
        let msg = err.to_string();
        assert!(msg.contains(':'), "diagnostic without location: {msg}");
    }
}
