//! `gen[·]` / `use[·]` dataflow analysis over block regions.
//!
//! The paper's bus-transfer estimation (§3.3, Fig. 3) counts
//! `|gen[C_pred] ∩ use[c_i]|` and `|gen[c_i] ∩ use[C_succ]|`, with
//! `gen`/`use` "as defined in [Aho/Sethi/Ullman]" (footnote 8). This
//! module computes those sets for an arbitrary region (set of basic
//! blocks) of an [`Application`]:
//!
//! * `use[R]` — data items that may be read in `R` before any definition
//!   inside `R` (upward-exposed across the region's internal control
//!   flow, computed to a fixed point).
//! * `gen[R]` — data items defined in `R` that may reach the region's
//!   exits.
//!
//! Scalars are tracked through the region's control flow; arrays are
//! treated as monolithic items (a load exposes the array, a store
//! generates it) because element-wise disambiguation is neither needed
//! by the paper's estimate nor decidable statically.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

use crate::cdfg::Application;
use crate::op::{ArrayId, BlockId, VarId};

/// A unit of data exchanged between clusters: a scalar variable or a
/// whole array.
///
/// Arrays already live in the shared memory (Fig. 2 a), so moving a
/// cluster to the ASIC core transfers a *reference* (one word), while a
/// scalar transfers its value (one word). Either way one item costs one
/// bus transfer, matching the paper's set-cardinality counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataItem {
    /// A scalar variable.
    Scalar(VarId),
    /// A whole array (transferred by reference).
    Array(ArrayId),
}

impl DataItem {
    /// Number of bus words one transfer of this item costs.
    pub fn words(self) -> u64 {
        1
    }
}

impl fmt::Display for DataItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataItem::Scalar(v) => write!(f, "{v}"),
            DataItem::Array(a) => write!(f, "&{a}"),
        }
    }
}

/// The `gen`/`use` summary of a region.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GenUse {
    /// Items defined in the region that may reach its exits.
    pub gen: BTreeSet<DataItem>,
    /// Items that may be read before being defined in the region.
    pub use_: BTreeSet<DataItem>,
}

impl GenUse {
    /// `|self.gen ∩ other.use_|` — the transfer count between a
    /// producing and a consuming region (Fig. 3 steps 1/3).
    pub fn transfers_to(&self, consumer: &GenUse) -> u64 {
        self.gen
            .intersection(&consumer.use_)
            .map(|i| i.words())
            .sum()
    }

    /// Set union of two summaries (used to combine `C_pred`/`C_succ`).
    pub fn union(&self, other: &GenUse) -> GenUse {
        GenUse {
            gen: self.gen.union(&other.gen).copied().collect(),
            use_: self.use_.union(&other.use_).copied().collect(),
        }
    }
}

/// Per-block local sets: upward-exposed uses and definitions.
#[derive(Debug, Clone, Default)]
struct BlockLocal {
    /// Scalars read before written within the block (plus arrays
    /// loaded).
    upward_uses: BTreeSet<DataItem>,
    /// Scalars written (plus arrays stored).
    defs: BTreeSet<DataItem>,
}

fn block_local(app: &Application, b: BlockId) -> BlockLocal {
    let mut loc = BlockLocal::default();
    let mut written: HashSet<VarId> = HashSet::new();
    let block = app.block(b);
    for inst in &block.insts {
        for u in inst.uses() {
            if !written.contains(&u) {
                loc.upward_uses.insert(DataItem::Scalar(u));
            }
        }
        if let Some(a) = inst.array_use() {
            loc.upward_uses.insert(DataItem::Array(a));
        }
        if let Some(d) = inst.def() {
            written.insert(d);
            loc.defs.insert(DataItem::Scalar(d));
        }
        if let Some(a) = inst.array_def() {
            loc.defs.insert(DataItem::Array(a));
        }
    }
    if let Some(u) = block.term.use_var() {
        if !written.contains(&u) {
            loc.upward_uses.insert(DataItem::Scalar(u));
        }
    }
    loc
}

/// Computes the `gen`/`use` summary of the region formed by `blocks`.
///
/// The region is analysed with its own internal control flow; entries
/// are the region blocks with a predecessor outside the region (or the
/// application entry), exits are region blocks with a successor outside
/// (or a `ret` terminator).
///
/// Duplicate block ids are ignored. An empty region yields empty sets.
pub fn region_gen_use(app: &Application, blocks: &[BlockId]) -> GenUse {
    let region: HashSet<BlockId> = blocks.iter().copied().collect();
    if region.is_empty() {
        return GenUse::default();
    }
    let preds_all = app.predecessors();
    let locals: HashMap<BlockId, BlockLocal> =
        region.iter().map(|&b| (b, block_local(app, b))).collect();

    // --- use[R]: forward "may be unwritten since region entry" ---
    // exposed_in[b] = true for scalars that may still carry a value from
    // outside the region when b starts. We track the complement:
    // `killed_in[b]` = scalars definitely written on *every* path from a
    // region entry to b. A use of v contributes to use[R] when v is not
    // definitely killed. Arrays: loads always contribute (stores never
    // kill, element granularity unknown).
    let is_entry = |b: BlockId| {
        b == app.entry()
            || preds_all[b.0 as usize].iter().any(|p| !region.contains(p))
            || preds_all[b.0 as usize].is_empty()
    };

    // Iterate to a fixed point on killed-sets (must-analysis =>
    // intersection over predecessors; initialize to "everything killed"
    // except at entries).
    let all_scalars: BTreeSet<VarId> = locals
        .values()
        .flat_map(|l| {
            l.upward_uses
                .iter()
                .chain(l.defs.iter())
                .filter_map(|d| match d {
                    DataItem::Scalar(v) => Some(*v),
                    DataItem::Array(_) => None,
                })
        })
        .collect();

    let mut killed_out: HashMap<BlockId, BTreeSet<VarId>> =
        region.iter().map(|&b| (b, all_scalars.clone())).collect();
    let order: Vec<BlockId> = app
        .reverse_postorder()
        .into_iter()
        .filter(|b| region.contains(b))
        .collect();
    // Include region blocks unreachable from the app entry (defensive).
    let mut order_full = order.clone();
    for &b in &region {
        if !order_full.contains(&b) {
            order_full.push(b);
        }
    }

    let block_defs = |b: BlockId| -> BTreeSet<VarId> {
        locals[&b]
            .defs
            .iter()
            .filter_map(|d| match d {
                DataItem::Scalar(v) => Some(*v),
                DataItem::Array(_) => None,
            })
            .collect()
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order_full {
            let killed_in: BTreeSet<VarId> = if is_entry(b) {
                BTreeSet::new()
            } else {
                let mut it = preds_all[b.0 as usize]
                    .iter()
                    .filter(|p| region.contains(p));
                match it.next() {
                    None => BTreeSet::new(),
                    Some(first) => {
                        let mut acc = killed_out[first].clone();
                        for p in it {
                            acc = acc.intersection(&killed_out[p]).copied().collect();
                        }
                        acc
                    }
                }
            };
            let mut out = killed_in.clone();
            out.extend(block_defs(b));
            if out != killed_out[&b] {
                killed_out.insert(b, out);
                changed = true;
            }
        }
    }

    let mut use_set: BTreeSet<DataItem> = BTreeSet::new();
    for &b in &order_full {
        let killed_in: BTreeSet<VarId> = if is_entry(b) {
            BTreeSet::new()
        } else {
            let mut it = preds_all[b.0 as usize]
                .iter()
                .filter(|p| region.contains(p));
            match it.next() {
                None => BTreeSet::new(),
                Some(first) => {
                    let mut acc = killed_out[first].clone();
                    for p in it {
                        acc = acc.intersection(&killed_out[p]).copied().collect();
                    }
                    acc
                }
            }
        };
        for item in &locals[&b].upward_uses {
            match item {
                DataItem::Scalar(v) => {
                    if !killed_in.contains(v) {
                        use_set.insert(*item);
                    }
                }
                DataItem::Array(_) => {
                    use_set.insert(*item);
                }
            }
        }
    }

    // --- gen[R]: definitions that may reach a region exit ---
    // A scalar def reaches the exit unless every path from the def to
    // every exit redefines it; we over-approximate cheaply and soundly
    // for the transfer estimate: every defined item is generated. (A
    // value recomputed later inside the region still existed at some
    // point; the paper's estimate is itself a static over-approximation.)
    let mut gen_set: BTreeSet<DataItem> = BTreeSet::new();
    for l in locals.values() {
        gen_set.extend(l.defs.iter().copied());
    }

    GenUse {
        gen: gen_set,
        use_: use_set,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse;

    fn app(src: &str) -> Application {
        lower(&parse(src).unwrap()).unwrap()
    }

    fn all_blocks(a: &Application) -> Vec<BlockId> {
        (0..a.blocks().len() as u32).map(BlockId).collect()
    }

    fn named_var(a: &Application, name: &str) -> VarId {
        VarId(
            a.vars()
                .iter()
                .position(|v| v.name.as_deref() == Some(name))
                .unwrap_or_else(|| panic!("no var `{name}`")) as u32,
        )
    }

    #[test]
    fn straight_line_use_before_def() {
        let a = app("app t; var g = 1; var h = 2; func main() { h = g + 1; g = 5; }");
        let gu = region_gen_use(&a, &all_blocks(&a));
        let g = named_var(&a, "g");
        let h = named_var(&a, "h");
        assert!(gu.use_.contains(&DataItem::Scalar(g)));
        // h is written before any read in main.
        assert!(!gu.use_.contains(&DataItem::Scalar(h)));
        assert!(gu.gen.contains(&DataItem::Scalar(g)));
        assert!(gu.gen.contains(&DataItem::Scalar(h)));
    }

    #[test]
    fn def_kills_following_use_in_block() {
        let a = app("app t; var g = 1; func main() { g = 2; var x = g + 1; }");
        let gu = region_gen_use(&a, &all_blocks(&a));
        let g = named_var(&a, "g");
        // g is defined first, so the later read is not upward-exposed.
        assert!(!gu.use_.contains(&DataItem::Scalar(g)));
    }

    #[test]
    fn loop_counter_is_region_internal() {
        let a = app(
            "app t; var acc = 0; func main() { for (var i = 0; i < 4; i = i + 1) { acc = acc + i; } }",
        );
        // Region = just the loop blocks (the loop structure node).
        let loop_node = a.structure().iter().find(|n| n.is_loop()).unwrap();
        let gu = region_gen_use(&a, loop_node.blocks());
        let i = named_var(&a, "i");
        let acc = named_var(&a, "acc");
        // `i` is initialized before the loop -> used by the region.
        assert!(gu.use_.contains(&DataItem::Scalar(i)));
        // `acc` read-modify-write -> both used and generated.
        assert!(gu.use_.contains(&DataItem::Scalar(acc)));
        assert!(gu.gen.contains(&DataItem::Scalar(acc)));
    }

    #[test]
    fn branch_partial_kill_still_exposed() {
        // g is only written on one branch before the read after the
        // join -> the read is still (may-)upward-exposed.
        let a = app(
            "app t; var g = 1; var c = 0; var o = 0; func main() { if (c > 0) { g = 2; } o = g; }",
        );
        let gu = region_gen_use(&a, &all_blocks(&a));
        let g = named_var(&a, "g");
        assert!(gu.use_.contains(&DataItem::Scalar(g)));
    }

    #[test]
    fn branch_full_kill_not_exposed() {
        let a = app(
            "app t; var g = 1; var c = 0; var o = 0; func main() { if (c > 0) { g = 2; } else { g = 3; } o = g; }",
        );
        // Restrict the region to blocks *after* initialization: use the
        // whole app here — g's read after the join is killed on both
        // paths, but the branch condition reads c first. The whole-app
        // region's entry is bb0 where c,g are defined... so compute on
        // all blocks: g must NOT be in use (both arms define it before
        // the join read, and bb0 has no reads).
        let gu = region_gen_use(&a, &all_blocks(&a));
        let g = named_var(&a, "g");
        assert!(!gu.use_.contains(&DataItem::Scalar(g)));
    }

    #[test]
    fn arrays_load_use_store_gen() {
        let a = app("app t; var x[4]; var y[4]; func main() { y[0] = x[0]; }");
        let gu = region_gen_use(&a, &all_blocks(&a));
        assert!(gu.use_.contains(&DataItem::Array(ArrayId(0))));
        assert!(gu.gen.contains(&DataItem::Array(ArrayId(1))));
        assert!(!gu.use_.contains(&DataItem::Array(ArrayId(1))));
        assert!(!gu.gen.contains(&DataItem::Array(ArrayId(0))));
    }

    #[test]
    fn transfers_to_counts_intersection() {
        let mut producer = GenUse::default();
        producer.gen.insert(DataItem::Scalar(VarId(0)));
        producer.gen.insert(DataItem::Scalar(VarId(1)));
        producer.gen.insert(DataItem::Array(ArrayId(0)));
        let mut consumer = GenUse::default();
        consumer.use_.insert(DataItem::Scalar(VarId(1)));
        consumer.use_.insert(DataItem::Array(ArrayId(0)));
        consumer.use_.insert(DataItem::Scalar(VarId(9)));
        assert_eq!(producer.transfers_to(&consumer), 2);
    }

    #[test]
    fn union_combines() {
        let mut a = GenUse::default();
        a.gen.insert(DataItem::Scalar(VarId(0)));
        let mut b = GenUse::default();
        b.use_.insert(DataItem::Scalar(VarId(1)));
        let u = a.union(&b);
        assert_eq!(u.gen.len(), 1);
        assert_eq!(u.use_.len(), 1);
    }

    #[test]
    fn empty_region_is_empty() {
        let a = app("app t; func main() { }");
        let gu = region_gen_use(&a, &[]);
        assert!(gu.gen.is_empty() && gu.use_.is_empty());
    }

    #[test]
    fn terminator_condition_counts_as_use() {
        let a = app("app t; var g = 1; func main() { while (g > 0) { g = g - 1; } }");
        let loop_node = a.structure().iter().find(|n| n.is_loop()).unwrap();
        let gu = region_gen_use(&a, loop_node.blocks());
        let g = named_var(&a, "g");
        assert!(gu.use_.contains(&DataItem::Scalar(g)));
    }
}
