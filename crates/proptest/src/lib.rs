//! Offline subset of the `proptest` 1.x API.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the slice of proptest its property tests use: the
//! [`proptest!`] macro, `prop_assert*`, [`prop_oneof!`], [`Just`](strategy::Just),
//! numeric-range and regex-literal strategies, tuples,
//! `prop::collection::vec`, `prop_map`, `prop_recursive`, and
//! [`any`](arbitrary::any).
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) but is not minimized.
//! * **Deterministic inputs.** Each test function derives its RNG seed
//!   from its own path, so runs are reproducible and independent of
//!   execution order; there is no persistence file.
//! * **Regex strategies** support the subset the tests use: `.`,
//!   character classes with ranges and escapes, and `{lo,hi}`
//!   repetition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner types: configuration, errors, and the case RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (the `proptest_config` attribute).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        /// 256 cases, overridable at run time through the
        /// `PROPTEST_CASES` environment variable (same knob as the
        /// real proptest) — CI smoke jobs dial suites down, soak runs
        /// dial them up, without recompiling.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(256);
            Config { cases }
        }
    }

    /// A failed property check.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// The outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The deterministic case generator handed to strategies.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// An RNG seeded from the test's path, so each test is
        /// reproducible independently of execution order.
        pub fn for_test(test_path: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }
}

/// Strategy combinators: how random values are described.
pub mod strategy {
    use std::sync::Arc;

    use rand::Rng as _;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Recursive structures: up to `depth` levels where each level
        /// picks the leaf or one recursion step (the `_desired_size` /
        /// `_expected_branch` tuning knobs of the real crate are
        /// accepted and ignored).
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(cur).boxed();
                cur = Union::new(vec![leaf.clone(), branch]).boxed();
            }
            cur
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always generates a clone of the given value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice among strategies (the [`crate::prop_oneof!`]
    /// macro).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A uniform union of the given options.
        ///
        /// # Panics
        ///
        /// When `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.0.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),+) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.0.gen_range(self.clone())
                }
            }
        )+};
    }
    int_range_strategy!(i32, u32, i64, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let u: f64 = rng.0.gen();
            self.start + u * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    // --- Regex-literal string strategies (the proptest `&str` form) ---

    enum Atom {
        /// Any printable ASCII character, newline or tab (`.`).
        Any,
        /// An explicit character set (`[...]`).
        Class(Vec<char>),
        /// A literal character.
        Lit(char),
    }

    struct Piece {
        atom: Atom,
        lo: usize,
        hi: usize,
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>, pattern: &str) -> Vec<char> {
        let mut set = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = chars
                .next()
                .unwrap_or_else(|| panic!("unterminated [..] in regex strategy: {pattern}"));
            match c {
                ']' => break,
                '\\' => {
                    let e = chars.next().expect("dangling escape");
                    let lit = match e {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    };
                    set.push(lit);
                    prev = Some(lit);
                }
                '-' => {
                    // A range when flanked; a literal '-' otherwise.
                    match (prev, chars.peek().copied()) {
                        (Some(lo), Some(hi)) if hi != ']' => {
                            chars.next();
                            assert!(lo <= hi, "bad class range {lo}-{hi} in: {pattern}");
                            // `lo` is already in `set`.
                            let mut c = lo as u32 + 1;
                            while c <= hi as u32 {
                                set.push(char::from_u32(c).expect("valid char"));
                                c += 1;
                            }
                            prev = None;
                        }
                        _ => {
                            set.push('-');
                            prev = Some('-');
                        }
                    }
                }
                other => {
                    set.push(other);
                    prev = Some(other);
                }
            }
        }
        assert!(!set.is_empty(), "empty [..] in regex strategy: {pattern}");
        set
    }

    fn parse_repeat(
        chars: &mut std::iter::Peekable<std::str::Chars>,
        pattern: &str,
    ) -> (usize, usize) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut spec = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                let (lo, hi) = spec
                    .split_once(',')
                    .unwrap_or_else(|| panic!("only {{lo,hi}} repetition supported: {pattern}"));
                let lo: usize = lo.trim().parse().expect("repetition lower bound");
                let hi: usize = hi.trim().parse().expect("repetition upper bound");
                assert!(lo <= hi, "bad repetition {{{spec}}} in: {pattern}");
                return (lo, hi);
            }
            spec.push(c);
        }
        panic!("unterminated {{..}} in regex strategy: {pattern}");
    }

    fn parse_pattern(pattern: &str) -> Vec<Piece> {
        let mut pieces = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Any,
                '[' => Atom::Class(parse_class(&mut chars, pattern)),
                '\\' => {
                    let e = chars.next().expect("dangling escape");
                    Atom::Lit(match e {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    })
                }
                other => Atom::Lit(other),
            };
            let (lo, hi) = parse_repeat(&mut chars, pattern);
            pieces.push(Piece { atom, lo, hi });
        }
        pieces
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in parse_pattern(self) {
                let n = rng.0.gen_range(piece.lo..=piece.hi);
                for _ in 0..n {
                    match &piece.atom {
                        Atom::Lit(c) => out.push(*c),
                        Atom::Class(set) => out.push(set[rng.0.gen_range(0..set.len())]),
                        Atom::Any => {
                            // Printable ASCII plus newline/tab: enough
                            // to fuzz a text front end.
                            let i = rng.0.gen_range(0..97u32);
                            out.push(match i {
                                95 => '\n',
                                96 => '\t',
                                p => char::from_u32(0x20 + p).expect("printable"),
                            });
                        }
                    }
                }
            }
            out
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// A size specification for generated collections.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.0.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `any::<T>()` entry point.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The strategy type `any` returns.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// `any::<bool>()`.
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.0.gen::<u32>() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }
}

/// Declares property tests: each `fn name(binding in strategy, ..)`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pname:pat in $pstrat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $pname = $crate::strategy::Strategy::generate(&($pstrat), &mut __rng);)+
                let __result: $crate::test_runner::TestCaseResult =
                    (|| -> $crate::test_runner::TestCaseResult { $body; Ok(()) })();
                if let Err(__e) = __result {
                    panic!(
                        "proptest {} case {}/{} failed: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// Asserts inside a property (fails the case instead of panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?} == {:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?} == {:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Module-style access (`prop::collection::vec`), as in the real
    /// prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_generate_in_domain() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..500 {
            let v = (1i64..12).generate(&mut rng);
            assert!((1..12).contains(&v));
            let f = (1e-3f64..1e3).generate(&mut rng);
            assert!((1e-3..1e3).contains(&f));
            let (a, b) = ((0u32..4), (0usize..3)).generate(&mut rng);
            assert!(a < 4 && b < 3);
            let s = (0i64..5).prop_map(|x| x * 2).generate(&mut rng);
            assert!(s % 2 == 0 && s < 10);
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::for_test("regex");
        for _ in 0..200 {
            let s = "[a-c0-1 \\-;]{2,5}".generate(&mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(
                s.chars().all(|c| "abc01 -;".contains(c)),
                "unexpected char in {s:?}"
            );
            let t = ".{0,20}".generate(&mut rng);
            assert!(t.chars().count() <= 20);
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        let mut rng = TestRng::for_test("recursive");
        let leaf = prop_oneof![Just("x".to_owned()), Just("y".to_owned())];
        let expr = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| format!("({l}+{r})"))
        });
        for _ in 0..100 {
            let s = expr.generate(&mut rng);
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn collection_vec_respects_size() {
        let mut rng = TestRng::for_test("vecs");
        for _ in 0..100 {
            let v = crate::collection::vec((0u32..10, any::<bool>()), 1..7).generate(&mut rng);
            assert!((1..=6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_runs(x in 0u64..100, s in "[ab]{1,3}") {
            prop_assert!(x < 100);
            prop_assert_eq!(s.len(), s.chars().count());
            if s.is_empty() {
                return Ok(());
            }
        }
    }
}
