//! Served-vs-fresh oracle: a `corepart serve` daemon on a loopback
//! socket must answer generated applications byte-identically to a
//! fresh in-process engine, and a corrupt request must produce a typed
//! error while leaving the store exactly as it was.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use corepart::json::{parse_json, result_field};
use corepart::serve::{respond_fresh, ComputeKind, ComputeRequest, ServeOptions, Server};
use corepart::system::SystemConfig;
use corepart_conform::generate;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn ask(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        assert!(response.ends_with('\n'), "truncated response: {response}");
        response.trim_end().to_owned()
    }

    fn store_shape(&mut self) -> (u64, u64) {
        let stats = parse_json(&self.ask("{\"cmd\":\"stats\"}")).unwrap();
        let result = stats.get("result").unwrap();
        (
            result.get("bytes").and_then(|v| v.as_u64()).unwrap(),
            result
                .get("shards")
                .and_then(|v| v.as_array())
                .unwrap()
                .iter()
                .map(|s| s.get("entries").and_then(|v| v.as_u64()).unwrap())
                .sum(),
        )
    }
}

fn spawn_server() -> Server {
    Server::spawn(
        SystemConfig::new(),
        &ServeOptions {
            port: 0,
            shards: 2,
            threads: 1,
            ..ServeOptions::default()
        },
    )
    .unwrap()
}

#[test]
fn served_generated_apps_match_fresh_engines() {
    let server = spawn_server();
    let base = SystemConfig::new();
    let mut client = Client::connect(&server);
    for seed in 0..6u64 {
        let app = generate(seed);
        let mut req = ComputeRequest::new(ComputeKind::Partition, &app.source());
        req.id = Some(seed);
        req.arrays = app.workload_arrays();
        let fresh = respond_fresh(&base, &req);
        // Twice per app: the second answer comes from the warm store.
        for pass in 0..2 {
            let served = client.ask(&req.to_json());
            if fresh.contains("\"ok\":false") {
                // Error responses carry no advisory stats — the whole
                // line must match, warm or cold.
                assert_eq!(served, fresh, "seed {seed} pass {pass}");
            } else {
                assert_eq!(
                    result_field(&served),
                    result_field(&fresh),
                    "seed {seed} pass {pass}: served result drifted from fresh"
                );
            }
        }
    }
    client.ask("{\"cmd\":\"shutdown\"}");
    server.join();
}

#[test]
fn corrupt_source_is_a_typed_error_and_leaves_the_store_clean() {
    let server = spawn_server();
    let mut client = Client::connect(&server);

    // Warm the store with one healthy app, then snapshot its shape.
    let app = generate(1);
    let mut good = ComputeRequest::new(ComputeKind::Partition, &app.source());
    good.arrays = app.workload_arrays();
    assert!(client.ask(&good.to_json()).contains("\"ok\":true"));
    let before = client.store_shape();

    // A corrupt BDL must be rejected with the `ir` error kind…
    let mut broken = good.clone();
    broken.source = "app broken; func main( { return 0; }".to_owned();
    let response = client.ask(&broken.to_json());
    assert!(response.contains("\"ok\":false"), "{response}");
    assert!(response.contains("\"kind\":\"ir\""), "{response}");

    // …and must not have admitted (or evicted) anything: no poisoned
    // entry reaches the pools, because the parse fails before the
    // store is touched.
    assert_eq!(client.store_shape(), before, "the store changed shape");

    // The daemon still answers healthy requests afterwards.
    let again = client.ask(&good.to_json());
    assert!(again.contains("\"ok\":true"), "{again}");
    assert!(again.contains("\"store_hit\":true"), "{again}");

    client.ask("{\"cmd\":\"shutdown\"}");
    server.join();
}
