//! ASIC-core energy estimation.
//!
//! Two estimators, mirroring the paper's flow:
//!
//! 1. [`estimate_energy`] — the quick utilization-based estimate of
//!    Fig. 1 line 11, `E_R = U_R · Σ_rs (P_av^rs · N_cyc^rs · T_cyc^rs)`,
//!    used inside the partitioning loop where thousands of candidates
//!    are compared.
//! 2. [`gate_level_energy`] — the verification estimate of Fig. 1 line
//!    15 ("Estimate energy (gate-level)"). The paper runs a gate-level
//!    simulation with switching-energy calculation; we reconstruct it as
//!    a switching-activity model over the bound datapath driven by the
//!    profiled per-operation toggle statistics — active units pay
//!    data-dependent switching energy, idle-but-clocked units pay the
//!    reduced idle activity of §3.1.

use corepart_ir::cdfg::Application;
use corepart_ir::interp::ExecProfile;
use corepart_tech::process::CmosProcess;
use corepart_tech::resource::ResourceLibrary;
use corepart_tech::units::{Cycles, Energy, Seconds};

use crate::binding::{Binding, ClusterSchedule, Utilization};

/// The quick estimate of Fig. 1 line 11.
///
/// `N_cyc^rs` is read as "cycles the resource exists in the running
/// schedule" (instances × N_cyc^c), so the product is the always-on
/// energy of the datapath and the `U_R` factor scales it down to the
/// actively-used share.
pub fn estimate_energy(util: &Utilization, binding: &Binding, lib: &ResourceLibrary) -> Energy {
    let always_on: Energy = binding
        .instances
        .iter()
        .map(|(&kind, &n)| {
            let spec = lib.expect_spec(kind);
            spec.p_av() * (spec.t_cyc() * (util.n_cyc * u64::from(n)))
        })
        .sum();
    always_on * util.u_r
}

/// Result of the gate-level (switching-activity) estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsicEnergy {
    /// Energy of actively computing units, scaled by profiled toggle
    /// activity.
    pub active: Energy,
    /// Energy of idle-but-clocked units.
    pub idle: Energy,
    /// Total ASIC execution cycles (`N_cyc^c`).
    pub cycles: Cycles,
    /// The ASIC clock period (the slowest instantiated unit).
    pub clock_period: Seconds,
}

impl AsicEnergy {
    /// Total core energy.
    pub fn total(&self) -> Energy {
        self.active + self.idle
    }
}

/// Gate-level-style energy estimation of a bound cluster schedule.
///
/// Per executed operation: `P_av · T_cyc · latency`, scaled by a
/// data-dependent activity factor derived from the profiled Hamming
/// toggles of that operation's operands (an op whose inputs barely
/// change switches less logic). Idle instances are charged the
/// process's idle-activity fraction for every cycle they sit in the
/// running schedule.
pub fn gate_level_energy(
    app: &Application,
    sched: &ClusterSchedule,
    binding: &Binding,
    util: &Utilization,
    profile: &ExecProfile,
    lib: &ResourceLibrary,
    process: &CmosProcess,
) -> AsicEnergy {
    let _ = app;
    let idle_frac = process.idle_activity() / process.active_activity();

    let mut active = Energy::ZERO;
    for (bi, block_sched) in sched.schedules.iter().enumerate() {
        let block = sched.blocks[bi];
        let ex_times = profile.block_counts[block.0 as usize];
        if ex_times == 0 {
            continue;
        }
        for (ii, slot) in block_sched.slots.iter().enumerate() {
            let spec = lib.expect_spec(slot.kind);
            let act = &profile.activity[block.0 as usize][ii];
            // Normalize toggles to a [0.25, 1.25] activity scale around
            // the library's average-case calibration: ~16 of 64 input
            // bits toggling is "average".
            let toggles = act.avg_input_toggles() + act.avg_output_toggles();
            let alpha = (0.25 + toggles / 32.0).min(1.25);
            let e_op = spec.p_av() * (spec.t_cyc() * slot.latency) * alpha;
            active += e_op * ex_times;
        }
    }

    // Idle energy: every instantiated instance is clocked for all
    // N_cyc^c cycles; subtract its busy cycles.
    let mut idle = Energy::ZERO;
    for (&(kind, instance), &busy) in &util.busy {
        let spec = lib.expect_spec(kind);
        let idle_cycles = util.n_cyc.saturating_sub(busy);
        idle += spec.p_av() * (spec.t_cyc() * idle_cycles) * idle_frac;
        let _ = instance;
    }

    let clock_period = binding
        .instances
        .keys()
        .map(|&k| lib.expect_spec(k).t_cyc())
        .fold(Seconds::ZERO, |a, b| if b > a { b } else { a });

    AsicEnergy {
        active,
        idle,
        cycles: Cycles::new(util.n_cyc),
        clock_period,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{bind, schedule_cluster, utilization};
    use corepart_ir::interp::Interpreter;
    use corepart_ir::lower::lower;
    use corepart_ir::op::BlockId;
    use corepart_ir::parser::parse;
    use corepart_tech::resource::ResourceSet;

    struct Ctx {
        app: Application,
        profile: ExecProfile,
        sched: ClusterSchedule,
        binding: Binding,
        util: Utilization,
        lib: ResourceLibrary,
    }

    fn ctx(src: &str, set_idx: usize, inputs: Option<(&str, Vec<i64>)>) -> Ctx {
        let app = lower(&parse(src).unwrap()).unwrap();
        let mut interp = Interpreter::new(&app);
        if let Some((name, data)) = &inputs {
            interp.set_array(name, data).unwrap();
        }
        let profile = interp.run(50_000_000).unwrap();
        let lib = ResourceLibrary::cmos6();
        let set = &ResourceSet::default_family()[set_idx];
        let blocks: Vec<BlockId> = app
            .structure()
            .iter()
            .find(|n| n.is_loop())
            .expect("loop")
            .blocks()
            .to_vec();
        let sched = schedule_cluster(&app, &blocks, set, &lib).unwrap();
        let binding = bind(&sched, &lib);
        let util = utilization(&sched, &binding, &profile, &lib);
        Ctx {
            app,
            profile,
            sched,
            binding,
            util,
            lib,
        }
    }

    const KERNEL: &str = r#"app t; var x[64]; var y[64];
        func main() {
            for (var i = 1; i < 63; i = i + 1) {
                y[i] = (x[i - 1] * 3 + x[i] * 4 + x[i + 1]) >> 3;
            }
        }"#;

    #[test]
    fn quick_estimate_positive_and_scales_with_u() {
        let c = ctx(KERNEL, 2, None);
        let e = estimate_energy(&c.util, &c.binding, &c.lib);
        assert!(e.joules() > 0.0);
        // Doubling U_R doubles the estimate.
        let mut u2 = c.util.clone();
        u2.u_r *= 0.5;
        let e2 = estimate_energy(&u2, &c.binding, &c.lib);
        assert!((e.joules() / e2.joules() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gate_level_has_active_and_idle_parts() {
        let c = ctx(KERNEL, 2, None);
        let g = gate_level_energy(
            &c.app,
            &c.sched,
            &c.binding,
            &c.util,
            &c.profile,
            &c.lib,
            &CmosProcess::cmos6(),
        );
        assert!(g.active.joules() > 0.0);
        assert!(g.idle.joules() > 0.0);
        assert!((g.total().joules() - (g.active + g.idle).joules()).abs() < 1e-18);
        assert!(g.cycles.count() > 0);
        assert!(g.clock_period.nanos() > 0.0);
    }

    #[test]
    fn estimate_and_gate_level_within_factor_four() {
        // The quick estimate must be a usable proxy for the verification
        // number, otherwise the partition loop would optimize the wrong
        // thing.
        let c = ctx(KERNEL, 2, None);
        let quick = estimate_energy(&c.util, &c.binding, &c.lib);
        let fine = gate_level_energy(
            &c.app,
            &c.sched,
            &c.binding,
            &c.util,
            &c.profile,
            &c.lib,
            &CmosProcess::cmos6(),
        )
        .total();
        let ratio = quick / fine;
        assert!(
            (0.25..4.0).contains(&ratio),
            "quick {quick} vs gate-level {fine} (ratio {ratio})"
        );
    }

    #[test]
    fn toggle_heavy_data_costs_more() {
        let src = r#"app t; var x[64]; var y[64];
            func main() {
                for (var i = 0; i < 64; i = i + 1) {
                    y[i] = x[i] * 5 + (x[i] >> 2);
                }
            }"#;
        let hot: Vec<i64> = (0..64)
            .map(|i| {
                if i % 2 == 0 {
                    0x5555_5555
                } else {
                    -0x5555_5556
                }
            })
            .collect();
        let cold = vec![7i64; 64];
        let ch = ctx(src, 2, Some(("x", hot)));
        let cc = ctx(src, 2, Some(("x", cold)));
        let p = CmosProcess::cmos6();
        let eh = gate_level_energy(
            &ch.app,
            &ch.sched,
            &ch.binding,
            &ch.util,
            &ch.profile,
            &ch.lib,
            &p,
        );
        let ec = gate_level_energy(
            &cc.app,
            &cc.sched,
            &cc.binding,
            &cc.util,
            &cc.profile,
            &cc.lib,
            &p,
        );
        assert!(
            eh.active > ec.active,
            "alternating data must switch more: {} vs {}",
            eh.active,
            ec.active
        );
    }

    #[test]
    fn higher_utilization_means_less_idle_share() {
        // m-dsp (tighter) vs xl-dsp (wider) on the same kernel: the
        // wider datapath has more idle-clocked hardware.
        let cm = ctx(KERNEL, 2, None);
        let cx = ctx(KERNEL, 4, None);
        let p = CmosProcess::cmos6();
        let gm = gate_level_energy(
            &cm.app,
            &cm.sched,
            &cm.binding,
            &cm.util,
            &cm.profile,
            &cm.lib,
            &p,
        );
        let gx = gate_level_energy(
            &cx.app,
            &cx.sched,
            &cx.binding,
            &cx.util,
            &cx.profile,
            &cx.lib,
            &p,
        );
        let idle_share_m = gm.idle.joules() / gm.total().joules();
        let idle_share_x = gx.idle.joules() / gx.total().joules();
        assert!(
            idle_share_m <= idle_share_x + 1e-9,
            "m-dsp idle share {idle_share_m} vs xl {idle_share_x}"
        );
    }
}
