//! Application preparation: profiling, compilation and cluster
//! decomposition — the entry blocks of the Fig. 5 design flow
//! ("Application" → graph → clusters → profiling).

use corepart_ir::cdfg::Application;
use corepart_ir::cluster::{decompose, ClusterChain};
use corepart_ir::interp::{ExecProfile, Interpreter};
use corepart_isa::codegen::{compile_with_profile, MachProgram};

use crate::error::CorepartError;
use crate::system::SystemConfig;

/// Input data of one run: named arrays and their contents.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Workload {
    /// `(array name, contents)` pairs applied before every simulation.
    pub arrays: Vec<(String, Vec<i64>)>,
}

impl Workload {
    /// An empty workload (all arrays zero).
    pub fn empty() -> Self {
        Workload::default()
    }

    /// Builds a workload from an iterator of `(name, data)` pairs.
    pub fn from_arrays<I, S>(arrays: I) -> Self
    where
        I: IntoIterator<Item = (S, Vec<i64>)>,
        S: Into<String>,
    {
        Workload {
            arrays: arrays.into_iter().map(|(n, d)| (n.into(), d)).collect(),
        }
    }
}

/// An application made ready for partitioning: profiled, compiled and
/// decomposed into its cluster chain.
#[derive(Debug, Clone)]
pub struct PreparedApp {
    /// The lowered application.
    pub app: Application,
    /// The compiled µP program (profile-guided register allocation).
    pub prog: MachProgram,
    /// The profiling run (`#ex_times` and toggle statistics, §3.4).
    pub profile: ExecProfile,
    /// The cluster chain (Fig. 2 b).
    pub chain: ClusterChain,
    /// The workload used for profiling and every evaluation.
    pub workload: Workload,
}

impl PreparedApp {
    /// Approximate owned heap footprint, in bytes — the store's
    /// byte-budget charge for keeping a prepared application warm.
    ///
    /// The length of the full `Debug` rendering is used as a
    /// deterministic, structure-proportional proxy (the same idiom the
    /// engine's fingerprints use for identity): the artifact spans five
    /// heterogeneous substrate types, and an allocator-exact walk over
    /// all of them buys no better eviction decisions. Prepared apps
    /// never grow after construction, so the store measures this once
    /// per admission.
    pub fn heap_bytes(&self) -> usize {
        format!("{self:?}").len()
    }
}

/// Profiles, compiles and decomposes an application.
///
/// # Errors
///
/// [`CorepartError::Ir`] when the profiling interpreter rejects the
/// program or workload (bad array names, non-termination within the
/// configured cycle budget).
pub fn prepare(
    app: Application,
    workload: Workload,
    config: &SystemConfig,
) -> Result<PreparedApp, CorepartError> {
    config.validate()?;
    let app = if config.optimize_ir {
        corepart_ir::opt::optimize(&app).0
    } else {
        app
    };
    let mut interp = Interpreter::new(&app);
    for (name, data) in &workload.arrays {
        interp.set_array(name, data)?;
    }
    let budget = if config.max_cycles == 0 {
        u64::MAX
    } else {
        config.max_cycles
    };
    let profile: ExecProfile = interp.run(budget)?;
    let prog: MachProgram = compile_with_profile(&app, Some(&profile));
    let chain: ClusterChain = decompose(&app);
    Ok(PreparedApp {
        app,
        prog,
        profile,
        chain,
        workload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;

    const SRC: &str = r#"app demo; var x[16]; var acc = 0;
        func main() {
            for (var i = 0; i < 16; i = i + 1) { acc = acc + x[i] * 3; }
            return acc;
        }"#;

    #[test]
    fn prepare_produces_all_artifacts() {
        let app = lower(&parse(SRC).unwrap()).unwrap();
        let prepared = prepare(
            app,
            Workload::from_arrays([("x", (0..16).collect::<Vec<i64>>())]),
            &SystemConfig::new(),
        )
        .unwrap();
        assert_eq!(
            prepared.profile.return_value,
            Some((0..16).sum::<i64>() * 3)
        );
        assert!(!prepared.prog.is_empty());
        assert!(!prepared.chain.is_empty());
    }

    #[test]
    fn bad_array_name_errors() {
        let app = lower(&parse(SRC).unwrap()).unwrap();
        let err = prepare(
            app,
            Workload::from_arrays([("nope", vec![1i64])]),
            &SystemConfig::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn workload_constructors() {
        let w = Workload::empty();
        assert!(w.arrays.is_empty());
        let w2 = Workload::from_arrays([("a", vec![1, 2])]);
        assert_eq!(w2.arrays[0].0, "a");
    }
}
