//! Recursive-descent parser for the behavioral description language.
//!
//! ```
//! use corepart_ir::parser::parse;
//!
//! let program = parse(r#"
//!     app smoothing;
//!     const N = 16;
//!     var img[16];
//!     func main() {
//!         for (var i = 1; i < N - 1; i = i + 1) {
//!             img[i] = (img[i - 1] + img[i] + img[i + 1]) / 3;
//!         }
//!     }
//! "#)?;
//! assert_eq!(program.name, "smoothing");
//! # Ok::<(), corepart_ir::error::IrError>(())
//! ```

use crate::ast::{ArrayDecl, ConstDecl, Expr, FuncDecl, GlobalDecl, LValue, Program, Span, Stmt};
use crate::error::IrError;
use crate::lexer::{lex, SpannedTok, Tok};
use crate::op::{BinOp, UnOp};

/// Parses a full program from source text.
///
/// # Errors
///
/// Returns [`IrError::Lex`] or [`IrError::Parse`] with the offending
/// source location.
pub fn parse(src: &str) -> Result<Program, IrError> {
    let toks = lex(src)?;
    Parser { toks, pos: 0 }.program()
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, IrError> {
        Err(IrError::Parse {
            span: self.span(),
            message: message.into(),
        })
    }

    fn expect(&mut self, want: &Tok, ctx: &str) -> Result<(), IrError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{want}` {ctx}, found `{}`", self.peek()))
        }
    }

    fn ident(&mut self, ctx: &str) -> Result<String, IrError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => self.err(format!("expected identifier {ctx}, found `{other}`")),
        }
    }

    fn program(&mut self) -> Result<Program, IrError> {
        self.expect(&Tok::App, "at start of program")?;
        let name = self.ident("after `app`")?;
        self.expect(&Tok::Semi, "after application name")?;

        let mut prog = Program {
            name,
            consts: Vec::new(),
            globals: Vec::new(),
            arrays: Vec::new(),
            funcs: Vec::new(),
        };

        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Const => {
                    let span = self.span();
                    self.bump();
                    let name = self.ident("after `const`")?;
                    self.expect(&Tok::Assign, "in const declaration")?;
                    let value = self.const_expr(&prog)?;
                    self.expect(&Tok::Semi, "after const declaration")?;
                    prog.consts.push(ConstDecl { name, value, span });
                }
                Tok::Var => {
                    let span = self.span();
                    self.bump();
                    let name = self.ident("after `var`")?;
                    if self.peek() == &Tok::LBracket {
                        self.bump();
                        let len = self.const_expr(&prog)?;
                        if len <= 0 || len > i64::from(u32::MAX) {
                            return self.err(format!("array length {len} out of range"));
                        }
                        self.expect(&Tok::RBracket, "after array length")?;
                        self.expect(&Tok::Semi, "after array declaration")?;
                        prog.arrays.push(ArrayDecl {
                            name,
                            len: len as u32,
                            span,
                        });
                    } else {
                        self.expect(&Tok::Assign, "in global declaration")?;
                        let init = self.const_expr(&prog)?;
                        self.expect(&Tok::Semi, "after global declaration")?;
                        prog.globals.push(GlobalDecl { name, init, span });
                    }
                }
                Tok::Func => {
                    let span = self.span();
                    self.bump();
                    let name = self.ident("after `func`")?;
                    self.expect(&Tok::LParen, "after function name")?;
                    let mut params = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            params.push(self.ident("in parameter list")?);
                            if self.peek() == &Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen, "after parameter list")?;
                    let body = self.block()?;
                    prog.funcs.push(FuncDecl {
                        name,
                        params,
                        body,
                        span,
                    });
                }
                other => {
                    let other = other.clone();
                    return self.err(format!(
                        "expected `const`, `var` or `func` at top level, found `{other}`"
                    ));
                }
            }
        }
        Ok(prog)
    }

    /// A compile-time constant expression: literals, previously declared
    /// consts, and arithmetic over them, folded immediately.
    fn const_expr(&mut self, prog: &Program) -> Result<i64, IrError> {
        let span = self.span();
        let expr = self.expr()?;
        fold_const(&expr, prog).ok_or(IrError::Parse {
            span,
            message: "expected a constant expression".into(),
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, IrError> {
        self.expect(&Tok::LBrace, "to open block")?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            if self.peek() == &Tok::Eof {
                return self.err("unexpected end of input inside block");
            }
            stmts.push(self.stmt()?);
        }
        self.bump(); // consume `}`
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, IrError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Var => {
                let s = self.simple_stmt()?;
                self.expect(&Tok::Semi, "after declaration")?;
                Ok(s)
            }
            Tok::If => {
                self.bump();
                self.expect(&Tok::LParen, "after `if`")?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen, "after if condition")?;
                let then_body = self.block()?;
                let else_body = if self.peek() == &Tok::Else {
                    self.bump();
                    if self.peek() == &Tok::If {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    span,
                })
            }
            Tok::While => {
                self.bump();
                self.expect(&Tok::LParen, "after `while`")?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen, "after while condition")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, span })
            }
            Tok::For => {
                self.bump();
                self.expect(&Tok::LParen, "after `for`")?;
                let init = Box::new(self.simple_stmt()?);
                self.expect(&Tok::Semi, "after for-init")?;
                let cond = self.expr()?;
                self.expect(&Tok::Semi, "after for-condition")?;
                let step = Box::new(self.simple_stmt()?);
                self.expect(&Tok::RParen, "after for-step")?;
                let body = self.block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    span,
                })
            }
            Tok::Return => {
                self.bump();
                let value = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi, "after return")?;
                Ok(Stmt::Return { value, span })
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(&Tok::Semi, "after statement")?;
                Ok(s)
            }
        }
    }

    /// A declaration, assignment or expression statement (no trailing
    /// `;` — used both standalone and in `for` headers).
    fn simple_stmt(&mut self) -> Result<Stmt, IrError> {
        let span = self.span();
        if self.peek() == &Tok::Var {
            self.bump();
            let name = self.ident("after `var`")?;
            self.expect(&Tok::Assign, "in local declaration")?;
            let init = self.expr()?;
            return Ok(Stmt::VarDecl { name, init, span });
        }
        // Distinguish `x = e;` / `x[i] = e;` from a call `f(..);`
        if let Tok::Ident(name) = self.peek().clone() {
            match self.peek2().clone() {
                Tok::Assign => {
                    self.bump();
                    self.bump();
                    let value = self.expr()?;
                    return Ok(Stmt::Assign {
                        target: LValue::Var(name),
                        value,
                        span,
                    });
                }
                Tok::LBracket => {
                    // Could be `a[i] = e` — parse the index and check.
                    self.bump();
                    self.bump();
                    let index = self.expr()?;
                    self.expect(&Tok::RBracket, "after array index")?;
                    self.expect(&Tok::Assign, "in array assignment")?;
                    let value = self.expr()?;
                    return Ok(Stmt::Assign {
                        target: LValue::Index(name, Box::new(index)),
                        value,
                        span,
                    });
                }
                _ => {}
            }
        }
        let expr = self.expr()?;
        Ok(Stmt::Expr { expr, span })
    }

    fn expr(&mut self) -> Result<Expr, IrError> {
        self.binary_expr(0)
    }

    /// Precedence-climbing binary expression parser.
    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, IrError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::PipePipe => (BinOp::Or, 1),
                Tok::AmpAmp => (BinOp::And, 2),
                Tok::Pipe => (BinOp::Or, 3),
                Tok::Caret => (BinOp::Xor, 4),
                Tok::Amp => (BinOp::And, 5),
                Tok::EqEq => (BinOp::Eq, 6),
                Tok::NotEq => (BinOp::Ne, 6),
                Tok::Lt => (BinOp::Lt, 7),
                Tok::Le => (BinOp::Le, 7),
                Tok::Gt => (BinOp::Gt, 7),
                Tok::Ge => (BinOp::Ge, 7),
                Tok::Shl => (BinOp::Shl, 8),
                Tok::Shr => (BinOp::Shr, 8),
                Tok::Plus => (BinOp::Add, 9),
                Tok::Minus => (BinOp::Sub, 9),
                Tok::Star => (BinOp::Mul, 10),
                Tok::Slash => (BinOp::Div, 10),
                Tok::Percent => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let span = self.span();
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, IrError> {
        let span = self.span();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Neg, Box::new(e), span))
            }
            Tok::Bang => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Not, Box::new(e), span))
            }
            Tok::Tilde => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::BitNot, Box::new(e), span))
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, IrError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, span))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen, "to close parenthesized expression")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                match self.peek() {
                    Tok::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if self.peek() != &Tok::RParen {
                            loop {
                                args.push(self.expr()?);
                                if self.peek() == &Tok::Comma {
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(&Tok::RParen, "after call arguments")?;
                        Ok(Expr::Call(name, args, span))
                    }
                    Tok::LBracket => {
                        self.bump();
                        let idx = self.expr()?;
                        self.expect(&Tok::RBracket, "after array index")?;
                        Ok(Expr::Index(name, Box::new(idx), span))
                    }
                    _ => Ok(Expr::Var(name, span)),
                }
            }
            other => self.err(format!("expected expression, found `{other}`")),
        }
    }
}

/// Folds a constant expression using previously declared consts.
fn fold_const(expr: &Expr, prog: &Program) -> Option<i64> {
    match expr {
        Expr::Int(v, _) => Some(*v),
        Expr::Var(name, _) => prog
            .consts
            .iter()
            .find(|c| &c.name == name)
            .map(|c| c.value),
        Expr::Unary(op, e, _) => Some(op.eval(fold_const(e, prog)?)),
        Expr::Binary(op, l, r, _) => Some(op.eval(fold_const(l, prog)?, fold_const(r, prog)?)),
        Expr::Index(..) | Expr::Call(..) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let p = parse("app t; func main() { }").unwrap();
        assert_eq!(p.name, "t");
        assert_eq!(p.funcs.len(), 1);
        assert!(p.funcs[0].body.is_empty());
    }

    #[test]
    fn parses_declarations() {
        let p = parse("app t; const N = 4 * 8; var g = 7; var buf[32]; func main() {}").unwrap();
        assert_eq!(p.consts[0].value, 32);
        assert_eq!(p.globals[0].init, 7);
        assert_eq!(p.arrays[0].len, 32);
    }

    #[test]
    fn const_refers_to_earlier_const() {
        let p = parse("app t; const A = 3; const B = A + 1; var x[B]; func main() {}").unwrap();
        assert_eq!(p.consts[1].value, 4);
        assert_eq!(p.arrays[0].len, 4);
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("app t; func main() { var x = 1 + 2 * 3; }").unwrap();
        match &p.funcs[0].body[0] {
            Stmt::VarDecl { init, .. } => match init {
                Expr::Binary(BinOp::Add, _, rhs, _) => {
                    assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, ..)));
                }
                other => panic!("unexpected tree: {other:?}"),
            },
            other => panic!("unexpected stmt: {other:?}"),
        }
    }

    #[test]
    fn precedence_shift_below_add() {
        // 1 << 2 + 3  parses as  1 << (2 + 3)
        let p = parse("app t; func main() { var x = 1 << 2 + 3; }").unwrap();
        match &p.funcs[0].body[0] {
            Stmt::VarDecl { init, .. } => {
                assert!(matches!(init, Expr::Binary(BinOp::Shl, ..)));
            }
            other => panic!("unexpected stmt: {other:?}"),
        }
    }

    #[test]
    fn parses_control_flow() {
        let p = parse(
            r#"app t;
            var a[8];
            func main() {
                for (var i = 0; i < 8; i = i + 1) {
                    if (a[i] > 3) { a[i] = 3; } else { a[i] = a[i] + 1; }
                }
                while (a[0] != 0) { a[0] = a[0] - 1; }
                return a[0];
            }"#,
        )
        .unwrap();
        assert_eq!(p.funcs[0].body.len(), 3);
        assert!(matches!(p.funcs[0].body[0], Stmt::For { .. }));
        assert!(matches!(p.funcs[0].body[1], Stmt::While { .. }));
        assert!(matches!(p.funcs[0].body[2], Stmt::Return { .. }));
    }

    #[test]
    fn parses_else_if_chain() {
        let p = parse(
            "app t; func main() { var x = 0; if (x == 0) { x = 1; } else if (x == 1) { x = 2; } else { x = 3; } }",
        )
        .unwrap();
        match &p.funcs[0].body[1] {
            Stmt::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0], Stmt::If { .. }));
            }
            other => panic!("unexpected stmt: {other:?}"),
        }
    }

    #[test]
    fn parses_calls_and_array_assign() {
        let p = parse(
            "app t; var a[4]; func f(x, y) { return x + y; } func main() { a[1] = f(a[0], 2); f(1, 2); }",
        )
        .unwrap();
        assert_eq!(p.funcs[0].params, vec!["x", "y"]);
        assert!(matches!(
            p.funcs[1].body[0],
            Stmt::Assign {
                target: LValue::Index(..),
                ..
            }
        ));
        assert!(matches!(p.funcs[1].body[1], Stmt::Expr { .. }));
    }

    #[test]
    fn error_reports_location() {
        let err = parse("app t; func main() { var x = ; }").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("expected expression"), "{msg}");
        assert!(msg.contains("1:"), "{msg}");
    }

    #[test]
    fn error_on_missing_semicolon() {
        assert!(parse("app t; func main() { var x = 1 }").is_err());
    }

    #[test]
    fn error_on_nonconst_array_len() {
        assert!(parse("app t; var g = 1; var a[g]; func main() {}").is_err());
    }

    #[test]
    fn error_on_zero_array_len() {
        assert!(parse("app t; var a[0]; func main() {}").is_err());
    }

    #[test]
    fn error_on_garbage_top_level() {
        assert!(parse("app t; 42").is_err());
    }

    #[test]
    fn logical_ops_parse() {
        let p = parse("app t; func main() { var x = 1 && 0 || 1; }").unwrap();
        assert!(matches!(
            p.funcs[0].body[0],
            Stmt::VarDecl {
                init: Expr::Binary(BinOp::Or, ..),
                ..
            }
        ));
    }

    #[test]
    fn unary_chain() {
        let p = parse("app t; func main() { var x = - - 3; var y = !~0; }").unwrap();
        assert_eq!(p.funcs[0].body.len(), 2);
    }
}
