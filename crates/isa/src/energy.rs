//! Instruction-level energy model of the µP core.
//!
//! Follows Tiwari/Malik/Wolfe's measurement methodology (the paper's
//! reference \[12\], explicitly named as "one basis for our partitioning
//! approach"): each instruction class has a *base energy cost*, and a
//! *circuit-state overhead* is added whenever consecutive instructions
//! come from different classes. Pipeline stall cycles (cache misses)
//! burn a reduced idle energy because the non-gated core keeps clocking
//! (§3.1's "wasted energy").
//!
//! The table is calibrated to a SPARCLite-class embedded core in the
//! CMOS6 0.8µ process: ≈0.5–0.6 W at 40 MHz, i.e. ≈13–15 nJ per active
//! cycle, matching the per-cycle energies implied by the paper's
//! Table 1 (e.g. `3d`: 566.78 µJ / 39 712 cycles ≈ 14 nJ/cycle).

use std::collections::BTreeMap;

use corepart_tech::process::CmosProcess;
use corepart_tech::units::Energy;

use crate::isa::InstClass;

/// Per-class base energies and the inter-instruction overhead.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyTable {
    base_per_cycle: BTreeMap<InstClass, Energy>,
    inter_inst_overhead: Energy,
    stall_per_cycle: Energy,
}

impl EnergyTable {
    /// The SPARCLite/CMOS6 calibration used in the paper's experiments.
    pub fn sparclite_cmos6() -> Self {
        Self::for_process(&CmosProcess::cmos6())
    }

    /// Builds the table for an arbitrary process by scaling the CMOS6
    /// calibration with the process's gate-switch energy and clock.
    pub fn for_process(process: &CmosProcess) -> Self {
        // Scale factor relative to CMOS6 (1.5 pJ/gate-switch).
        let scale = process.gate_switch_energy().picojoules() / 1.5;
        let nj = |v: f64| Energy::from_nanojoules(v * scale);
        let base_per_cycle = [
            (InstClass::Alu, 13.0),
            (InstClass::Shift, 13.5),
            (InstClass::Mul, 16.0),
            (InstClass::Div, 14.0),
            (InstClass::Load, 18.0),
            (InstClass::Store, 17.0),
            (InstClass::Branch, 12.0),
            (InstClass::Move, 10.0),
        ]
        .into_iter()
        .map(|(c, v)| (c, nj(v)))
        .collect();
        EnergyTable {
            base_per_cycle,
            inter_inst_overhead: nj(2.5),
            stall_per_cycle: nj(9.0),
        }
    }

    /// Base energy of one cycle executing an instruction of `class`.
    pub fn base_per_cycle(&self, class: InstClass) -> Energy {
        self.base_per_cycle[&class]
    }

    /// Base energy of a whole instruction of `class` lasting
    /// `latency` cycles.
    pub fn base(&self, class: InstClass, latency: u64) -> Energy {
        self.base_per_cycle[&class] * latency
    }

    /// Circuit-state overhead charged when the instruction class
    /// changes between consecutive instructions.
    pub fn inter_inst_overhead(&self) -> Energy {
        self.inter_inst_overhead
    }

    /// Energy of one pipeline-stall cycle (core clocking but idle).
    pub fn stall_per_cycle(&self) -> Energy {
        self.stall_per_cycle
    }

    /// Average active-cycle energy across all classes — a quick
    /// sanity-check/normalization figure.
    pub fn mean_active_cycle(&self) -> Energy {
        let total: Energy = self.base_per_cycle.values().copied().sum();
        total / self.base_per_cycle.len() as f64
    }
}

impl Default for EnergyTable {
    fn default() -> Self {
        EnergyTable::sparclite_cmos6()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_class() {
        let t = EnergyTable::sparclite_cmos6();
        for c in InstClass::ALL {
            assert!(t.base_per_cycle(c).joules() > 0.0, "{c}");
        }
    }

    #[test]
    fn per_cycle_energy_in_expected_band() {
        let t = EnergyTable::sparclite_cmos6();
        let m = t.mean_active_cycle().nanojoules();
        assert!((8.0..25.0).contains(&m), "mean = {m} nJ");
    }

    #[test]
    fn loads_cost_more_than_moves() {
        let t = EnergyTable::sparclite_cmos6();
        assert!(t.base_per_cycle(InstClass::Load) > t.base_per_cycle(InstClass::Move));
    }

    #[test]
    fn multi_cycle_base_scales() {
        let t = EnergyTable::sparclite_cmos6();
        let one = t.base(InstClass::Mul, 1);
        let five = t.base(InstClass::Mul, 5);
        assert!((five.joules() / one.joules() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn stall_cheaper_than_active() {
        let t = EnergyTable::sparclite_cmos6();
        assert!(t.stall_per_cycle() < t.base_per_cycle(InstClass::Alu));
        assert!(t.stall_per_cycle().joules() > 0.0);
    }

    #[test]
    fn scales_with_process() {
        let half = CmosProcess::cmos6().scaled_to(0.4);
        let t6 = EnergyTable::sparclite_cmos6();
        let th = EnergyTable::for_process(&half);
        // 0.4µ switch energy is 1/8 of CMOS6.
        let ratio = t6.base_per_cycle(InstClass::Alu) / th.base_per_cycle(InstClass::Alu);
        assert!((ratio - 8.0).abs() < 1e-9);
    }
}
