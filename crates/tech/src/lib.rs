//! # corepart-tech
//!
//! Technology substrate for the `corepart` low-power hardware/software
//! partitioning library — the reconstruction of the CMOS6 0.8µ models
//! that underpin Henkel's DAC'99 evaluation.
//!
//! This crate provides:
//!
//! * [`units`] — dimension-safe newtypes for energy, power, time, cycle
//!   counts, gate equivalents and frequency.
//! * [`process`] — CMOS process descriptors ([`process::CmosProcess`])
//!   with first-order dynamic-energy relations.
//! * [`resource`] — datapath resource kinds, the CMOS6 resource library
//!   (`GEQ`, `P_av`, `T_cyc` per resource, paper §3.2/§3.4) and designer
//!   [`resource::ResourceSet`]s.
//! * [`energy`] — analytical per-event energy models for caches, main
//!   memory and the shared system bus (paper §3.3/§4).
//! * [`scaling`] — technology-node scaling tables and
//!   [`scaling::OperatingPoint`]s: per-node vdd/frequency/energy/area
//!   factors with Vth-bounded DVFS ranges, resolving to pure
//!   [`scaling::PointWeights`] over base-process metrics.
//!
//! ## Example
//!
//! ```
//! use corepart_tech::process::CmosProcess;
//! use corepart_tech::resource::{OpClass, ResourceLibrary};
//! use corepart_tech::energy::BusEnergyModel;
//!
//! let process = CmosProcess::cmos6();
//! let lib = ResourceLibrary::for_process(&process);
//! let mul = lib.candidates_for(OpClass::Multiply)[0];
//! let spec = lib.expect_spec(mul);
//! println!("{mul}: {} @ {}", spec.geq(), spec.p_av());
//!
//! let bus = BusEnergyModel::analytical(&process, 8.0);
//! println!("bus transfer ≈ {}", bus.read_write_avg());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod energy;
pub mod process;
pub mod resource;
pub mod scaling;
pub mod units;

pub use energy::{BusEnergyModel, CacheEnergyModel, MemoryEnergyModel};
pub use process::{CmosProcess, VoltageError};
pub use resource::{OpClass, ResourceKind, ResourceLibrary, ResourceSet, ResourceSpec};
pub use scaling::{NodeScaling, NodeScalingTable, OperatingPoint, PointWeights, ScalingError};
pub use units::{Cycles, Energy, Frequency, GateEq, Power, Seconds};
