//! Exhaustive operator-level equivalence between the IR interpreter and
//! the compiled ISS — every DSL operator, both operand shapes
//! (var/const), plus the unary forms, checked over a grid of values
//! including the classic edge cases.

use corepart_ir::interp::Interpreter;
use corepart_ir::lower::lower;
use corepart_ir::parser::parse;
use corepart_isa::codegen::compile;
use corepart_isa::simulator::{NullSink, SimConfig, Simulator};

fn both(src: &str) -> (Option<i64>, i64) {
    let app = lower(&parse(src).expect("parses")).expect("lowers");
    let interp = Interpreter::new(&app).run(1_000_000).expect("interprets");
    let prog = compile(&app);
    let stats = Simulator::new(&prog, &app)
        .run(&SimConfig::initial(10_000_000), &mut NullSink)
        .expect("simulates");
    (interp.return_value, stats.return_value)
}

const EDGE_VALUES: [i64; 9] = [
    0,
    1,
    -1,
    2,
    -7,
    63,
    255,
    -1_000_003,
    4_294_967_296, // 2^32: catches accidental 32-bit truncation
];

#[test]
fn every_binary_operator_var_var() {
    let ops = [
        "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "==", "!=", "<", "<=", ">", ">=",
    ];
    for op in ops {
        for &a in &EDGE_VALUES {
            for &b in &EDGE_VALUES {
                // Mask shift amounts so both sides use defined behaviour.
                let rhs = if op == "<<" || op == ">>" {
                    "(y & 31)".to_owned()
                } else {
                    "y".to_owned()
                };
                let src = format!(
                    "app t; var g = 0; func main() {{ var x = {a}; var y = {b}; g = x {op} {rhs}; return g; }}"
                );
                let (i, s) = both(&src);
                assert_eq!(i, Some(s), "{a} {op} {b}");
            }
        }
    }
}

#[test]
fn every_binary_operator_var_const() {
    let ops = ["+", "-", "*", "/", "%", "&", "|", "^"];
    for op in ops {
        for &a in &EDGE_VALUES {
            let src = format!("app t; var g = {a}; func main() {{ return g {op} 13; }}");
            let (i, s) = both(&src);
            assert_eq!(i, Some(s), "{a} {op} 13");
        }
    }
}

#[test]
fn unary_operators() {
    for &a in &EDGE_VALUES {
        for (expr, label) in [
            ("0 - g".to_owned(), "neg"),
            ("!g".to_owned(), "not"),
            ("~g".to_owned(), "bitnot"),
            ("-g".to_owned(), "unary-neg"),
        ] {
            let src = format!("app t; var g = {a}; func main() {{ return {expr}; }}");
            let (i, s) = both(&src);
            assert_eq!(i, Some(s), "{label}({a})");
        }
    }
}

#[test]
fn division_and_remainder_signs() {
    // Truncating division sign conventions must agree.
    for (a, b) in [(7, 2), (-7, 2), (7, -2), (-7, -2), (5, 0), (-5, 0)] {
        let src = format!(
            "app t; var p = {a}; var q = {b}; func main() {{ return p / q * 1000 + p % q; }}"
        );
        let (i, s) = both(&src);
        assert_eq!(i, Some(s), "{a} /% {b}");
    }
}

#[test]
fn shift_semantics_match() {
    for sh in 0..40i64 {
        let src = format!(
            "app t; var v = -123456789; func main() {{ return (v << ({sh} & 31)) + (v >> ({sh} & 31)); }}"
        );
        let (i, s) = both(&src);
        assert_eq!(i, Some(s), "shift {sh}");
    }
}

#[test]
fn nested_call_expression_results_match() {
    let src = r#"app t;
        func mad(a, b, c) { return a * b + c; }
        func twice(x) { return mad(x, 2, 0); }
        func main() { return mad(twice(3), twice(4), mad(1, 2, 3)); }"#;
    let (i, s) = both(src);
    assert_eq!(i, Some(s));
    assert_eq!(s, 6 * 8 + 5);
}

#[test]
fn deeply_nested_control_flow_matches() {
    let src = r#"app t; var acc = 0;
        func main() {
            for (var i = 0; i < 5; i = i + 1) {
                for (var j = 0; j < 5; j = j + 1) {
                    if ((i + j) % 2 == 0) {
                        if (i > j) { acc = acc + i * 10; }
                        else { acc = acc + j; }
                    } else {
                        while (acc % 3 != 0) { acc = acc + 1; }
                    }
                }
            }
            return acc;
        }"#;
    let (i, s) = both(src);
    assert_eq!(i, Some(s));
}
