//! Resource binding and the utilization rate `U_R^core` — the Fig. 4
//! algorithm (`Computing U_R^core and GEQ_RS`).
//!
//! A whole cluster (all its basic blocks) is scheduled onto one
//! candidate datapath. The binding walks the control steps, maintaining
//! the paper's global resource list (`Glob_RS_List[cs][rs][is]`): which
//! instance of which resource type is busy in which control step. Type
//! selection follows `Sorted_RS_List` (smallest usable resource first,
//! preferring already-instantiated types — footnote 13); here that rule
//! is applied during list scheduling, and the binding assigns concrete
//! instance indices (lowest free instance first, which concentrates work
//! on low-numbered instances exactly like the paper's search order).
//!
//! The utilization computation is Fig. 4 lines 19–24: each instance's
//! busy cycles are `#ex_cycs × #ex_times` (operation latency times how
//! often its control step executes, known from profiling), normalized by
//! `N_cyc^c`, the total cycles of the whole cluster.

use std::collections::{BTreeMap, HashMap};

use corepart_ir::cdfg::Application;
use corepart_ir::interp::ExecProfile;
use corepart_ir::op::BlockId;
use corepart_tech::resource::{ResourceKind, ResourceLibrary, ResourceSet};
use corepart_tech::units::GateEq;

use crate::dfg::BlockDfg;
use crate::list::{list_schedule, BlockSchedule, SchedError};

/// The complete schedule of a cluster on one candidate resource set.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSchedule {
    /// The cluster's blocks, in chain order.
    pub blocks: Vec<BlockId>,
    /// Per-block schedules (same order as `blocks`).
    pub schedules: Vec<BlockSchedule>,
    /// The resource set scheduled against.
    pub set_name: String,
}

impl ClusterSchedule {
    /// The schedule of `block`, if it belongs to the cluster.
    pub fn schedule_of(&self, block: BlockId) -> Option<&BlockSchedule> {
        self.blocks
            .iter()
            .position(|&b| b == block)
            .map(|i| &self.schedules[i])
    }

    /// Static schedule length summed over blocks (one pass through every
    /// block once).
    pub fn static_length(&self) -> u64 {
        self.schedules.iter().map(|s| s.length).sum()
    }
}

/// Schedules every block of a cluster on `set`.
///
/// # Errors
///
/// [`SchedError::NoResource`] when some operation cannot execute on any
/// resource of the set — the candidate set is infeasible for this
/// cluster.
pub fn schedule_cluster(
    app: &Application,
    blocks: &[BlockId],
    set: &ResourceSet,
    lib: &ResourceLibrary,
) -> Result<ClusterSchedule, SchedError> {
    let mut schedules = Vec::with_capacity(blocks.len());
    for &b in blocks {
        let dfg = BlockDfg::build(app, b);
        schedules.push(list_schedule(&dfg, set, lib)?);
    }
    Ok(ClusterSchedule {
        blocks: blocks.to_vec(),
        schedules,
        set_name: set.name().to_owned(),
    })
}

/// The instance binding of a cluster schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// Instantiated resources: `#(rs_π)` per kind (Fig. 4 line 18's
    /// counts).
    pub instances: BTreeMap<ResourceKind, u32>,
    /// Instance index of every operation, parallel to each block's
    /// instruction list.
    pub assignment: HashMap<BlockId, Vec<u32>>,
    /// `GEQ_RS = Σ #(rs_π) × GEQ(rs_π)` (Fig. 4 lines 16–18).
    pub geq_rs: GateEq,
}

impl Binding {
    /// Total instantiated instances across kinds.
    pub fn total_instances(&self) -> u32 {
        self.instances.values().sum()
    }
}

/// Binds the scheduled operations to concrete resource instances and
/// computes `GEQ_RS`.
pub fn bind(sched: &ClusterSchedule, lib: &ResourceLibrary) -> Binding {
    let mut instances: BTreeMap<ResourceKind, u32> = BTreeMap::new();
    let mut assignment: HashMap<BlockId, Vec<u32>> = HashMap::new();

    for (bi, block_sched) in sched.schedules.iter().enumerate() {
        let block = sched.blocks[bi];
        // Per-kind, per-instance busy intervals within this block's
        // schedule; instances are shared across blocks (one datapath),
        // but occupancy conflicts only exist within one block's control
        // steps (blocks execute sequentially).
        let mut busy: BTreeMap<ResourceKind, Vec<Vec<(u64, u64)>>> = BTreeMap::new();
        let mut assigned = Vec::with_capacity(block_sched.slots.len());
        for slot in &block_sched.slots {
            let lanes = busy.entry(slot.kind).or_default();
            let interval = (slot.step, slot.step + slot.latency);
            // Lowest free instance (the paper's search through the
            // sorted list settles on the first available entry).
            let mut chosen = None;
            for (i, lane) in lanes.iter().enumerate() {
                let overlaps = lane.iter().any(|&(s, e)| interval.0 < e && s < interval.1);
                if !overlaps {
                    chosen = Some(i);
                    break;
                }
            }
            let idx = match chosen {
                Some(i) => i,
                None => {
                    lanes.push(Vec::new());
                    lanes.len() - 1
                }
            };
            lanes[idx].push(interval);
            assigned.push(idx as u32);
            let count = instances.entry(slot.kind).or_insert(0);
            *count = (*count).max(idx as u32 + 1);
        }
        assignment.insert(block, assigned);
    }

    let geq_rs = instances
        .iter()
        .map(|(&k, &n)| lib.expect_spec(k).geq() * u64::from(n))
        .sum();

    Binding {
        instances,
        assignment,
        geq_rs,
    }
}

/// The utilization result of Fig. 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Utilization {
    /// `U_R^core` — uniform mean over instances (Equation 4; the
    /// paper's default, §3.4 closing note).
    pub u_r: f64,
    /// GEQ-weighted variant (the rejected alternative, kept for the
    /// ablation).
    pub u_r_weighted: f64,
    /// `N_cyc^c` — cycles to execute the whole cluster
    /// (schedule length × execution count, summed over blocks).
    pub n_cyc: u64,
    /// Busy cycles of each instance: `util[rs_i][is]`.
    pub busy: BTreeMap<(ResourceKind, u32), u64>,
}

impl Utilization {
    /// Per-instance utilization `u_rs[is]` in [0, 1].
    pub fn instance_util(&self, kind: ResourceKind, instance: u32) -> f64 {
        if self.n_cyc == 0 {
            0.0
        } else {
            (self.busy.get(&(kind, instance)).copied().unwrap_or(0) as f64 / self.n_cyc as f64)
                .min(1.0)
        }
    }
}

/// Computes `U_R^core` for a bound cluster schedule using profiled
/// execution counts (`#ex_times`, footnote 14).
pub fn utilization(
    sched: &ClusterSchedule,
    binding: &Binding,
    profile: &ExecProfile,
    lib: &ResourceLibrary,
) -> Utilization {
    let mut busy: BTreeMap<(ResourceKind, u32), u64> = BTreeMap::new();
    // Every instantiated instance appears, even if some block never
    // uses it.
    for (&kind, &n) in &binding.instances {
        for is in 0..n {
            busy.insert((kind, is), 0);
        }
    }

    let mut n_cyc: u64 = 0;
    for (bi, block_sched) in sched.schedules.iter().enumerate() {
        let block = sched.blocks[bi];
        let ex_times = profile.block_counts[block.0 as usize];
        n_cyc += block_sched.length * ex_times;
        let assigned = &binding.assignment[&block];
        for (slot, &inst) in block_sched.slots.iter().zip(assigned) {
            // #ex_cycs × #ex_times (Fig. 4 line 23 + footnote 14).
            *busy.get_mut(&(slot.kind, inst)).expect("instance") += slot.latency * ex_times;
        }
    }

    let (mut sum_u, mut sum_wu, mut sum_w) = (0.0f64, 0.0f64, 0.0f64);
    let count = busy.len().max(1);
    for (&(kind, _), &b) in &busy {
        let u = if n_cyc == 0 {
            0.0
        } else {
            (b as f64 / n_cyc as f64).min(1.0)
        };
        let w = lib.expect_spec(kind).geq().cells() as f64;
        sum_u += u;
        sum_wu += u * w;
        sum_w += w;
    }
    Utilization {
        u_r: sum_u / count as f64,
        u_r_weighted: if sum_w == 0.0 { 0.0 } else { sum_wu / sum_w },
        n_cyc,
        busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corepart_ir::interp::Interpreter;
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;

    fn setup(src: &str) -> (Application, ExecProfile) {
        let app = lower(&parse(src).unwrap()).unwrap();
        let profile = Interpreter::new(&app).run(10_000_000).unwrap();
        (app, profile)
    }

    fn loop_blocks(app: &Application) -> Vec<BlockId> {
        app.structure()
            .iter()
            .find(|n| n.is_loop())
            .expect("loop")
            .blocks()
            .to_vec()
    }

    #[test]
    fn schedules_and_binds_a_kernel() {
        let (app, profile) = setup(
            r#"app t; var x[64]; var y[64];
            func main() {
                for (var i = 1; i < 63; i = i + 1) {
                    y[i] = (x[i - 1] + 2 * x[i] + x[i + 1]) >> 2;
                }
            }"#,
        );
        let lib = ResourceLibrary::cmos6();
        let set = &ResourceSet::default_family()[2]; // m-dsp
        let blocks = loop_blocks(&app);
        let cs = schedule_cluster(&app, &blocks, set, &lib).unwrap();
        assert!(cs.static_length() > 0);
        let b = bind(&cs, &lib);
        assert!(b.total_instances() >= 1);
        assert!(b.geq_rs.cells() > 0);
        // Bound instances never exceed the designer's set.
        for (&k, &n) in &b.instances {
            assert!(
                n <= set.count(k),
                "{k}: bound {n} > allowed {}",
                set.count(k)
            );
        }
        let u = utilization(&cs, &b, &profile, &lib);
        assert!(u.u_r > 0.0 && u.u_r <= 1.0, "U_R = {}", u.u_r);
        assert!(u.n_cyc > 0);
    }

    #[test]
    fn geq_only_counts_used_instances() {
        // A cluster with no multiplies must not pay for the set's
        // multiplier (the synthesized core only instantiates what the
        // binding used).
        let (app, _) = setup(
            "app t; var a[16]; func main() { for (var i = 0; i < 16; i = i + 1) { a[i] = a[i] + 1; } }",
        );
        let lib = ResourceLibrary::cmos6();
        let set = &ResourceSet::default_family()[2]; // m-dsp incl. multiplier
        let blocks = loop_blocks(&app);
        let cs = schedule_cluster(&app, &blocks, set, &lib).unwrap();
        let b = bind(&cs, &lib);
        assert_eq!(b.instances.get(&ResourceKind::Multiplier), None);
        assert!(b.geq_rs < set.total_geq(&lib));
    }

    #[test]
    fn utilization_higher_on_smaller_set() {
        // The same kernel on a narrower datapath keeps its resources
        // busier — the core effect the partitioner exploits.
        let (app, profile) = setup(
            r#"app t; var x[64]; var y[64];
            func main() {
                for (var i = 0; i < 64; i = i + 1) {
                    y[i] = x[i] * 3 + (x[i] >> 1) + 7;
                }
            }"#,
        );
        let lib = ResourceLibrary::cmos6();
        let family = ResourceSet::default_family();
        let blocks = loop_blocks(&app);
        let u_of = |set: &ResourceSet| {
            let cs = schedule_cluster(&app, &blocks, set, &lib).unwrap();
            let b = bind(&cs, &lib);
            utilization(&cs, &b, &profile, &lib).u_r
        };
        let mid = u_of(&family[2]); // m-dsp
        let large = u_of(&family[4]); // xl-dsp
                                      // Unused instances are never instantiated (the binding only
                                      // pays for what it uses), so the difference is bounded; the
                                      // tight set must not be materially worse than the widest one.
        assert!(
            mid >= large - 0.05,
            "smaller set should utilize comparably or better: {mid} vs {large}"
        );
    }

    #[test]
    fn unexecuted_cluster_has_zero_utilization() {
        let (app, profile) =
            setup("app t; var g = 0; func main() { if (g > 0) { while (g > 1) { g = g - 1; } } }");
        let lib = ResourceLibrary::cmos6();
        let set = &ResourceSet::default_family()[1];
        // The inner while never runs (g == 0).
        let inner: Vec<BlockId> = app
            .structure()
            .iter()
            .flat_map(|n| n.children())
            .filter(|n| n.is_loop())
            .flat_map(|n| n.blocks().iter().copied())
            .collect();
        assert!(!inner.is_empty());
        let cs = schedule_cluster(&app, &inner, set, &lib).unwrap();
        let b = bind(&cs, &lib);
        let u = utilization(&cs, &b, &profile, &lib);
        assert_eq!(u.u_r, 0.0);
        assert_eq!(u.n_cyc, 0);
    }

    #[test]
    fn weighted_and_uniform_differ_on_mixed_datapath() {
        let (app, profile) = setup(
            r#"app t; var x[32]; var y[32];
            func main() {
                for (var i = 0; i < 32; i = i + 1) {
                    y[i] = x[i] * x[i] + i;
                }
            }"#,
        );
        let lib = ResourceLibrary::cmos6();
        let set = &ResourceSet::default_family()[2];
        let blocks = loop_blocks(&app);
        let cs = schedule_cluster(&app, &blocks, set, &lib).unwrap();
        let b = bind(&cs, &lib);
        let u = utilization(&cs, &b, &profile, &lib);
        // Both defined and in range; they generally differ.
        assert!(u.u_r_weighted > 0.0 && u.u_r_weighted <= 1.0);
        assert!(u.u_r > 0.0);
    }

    #[test]
    fn instance_util_accessor() {
        let (app, profile) = setup(
            "app t; var a[8]; func main() { for (var i = 0; i < 8; i = i + 1) { a[i] = a[i] + i; } }",
        );
        let lib = ResourceLibrary::cmos6();
        let set = &ResourceSet::default_family()[1];
        let blocks = loop_blocks(&app);
        let cs = schedule_cluster(&app, &blocks, set, &lib).unwrap();
        let b = bind(&cs, &lib);
        let u = utilization(&cs, &b, &profile, &lib);
        for &(k, is) in u.busy.keys() {
            let v = u.instance_util(k, is);
            assert!((0.0..=1.0).contains(&v));
        }
        assert_eq!(u.instance_util(ResourceKind::Divider, 9), 0.0);
    }

    #[test]
    fn infeasible_set_propagates_error() {
        let (app, _) = setup("app t; var g = 9; func main() { while (g > 1) { g = g / 2; } }");
        let lib = ResourceLibrary::cmos6();
        let set = ResourceSet::builder("no-div")
            .with(ResourceKind::Alu, 1)
            .with(ResourceKind::MemPort, 1)
            .build();
        let blocks = loop_blocks(&app);
        assert!(schedule_cluster(&app, &blocks, &set, &lib).is_err());
    }
}
