//! # corepart
//!
//! A low-power hardware/software partitioning library for core-based
//! embedded systems — a from-scratch reproduction of J. Henkel's DAC'99
//! approach.
//!
//! `corepart` minimizes the energy of a whole SOC — µP core, I-cache,
//! D-cache, main memory, bus and an application-specific (ASIC) core —
//! by moving clusters of a behavioral description (loop nests,
//! conditionals, functions) onto a custom datapath that achieves a
//! higher *resource utilization rate* than the programmable core
//! (§3.1 of the paper: a non-gated core clocks its multiplier even
//! while executing `add`s; a tailored datapath keeps every unit busy).
//!
//! ## Pipeline
//!
//! 1. Parse + lower a behavioral description
//!    ([`corepart_ir`]) and profile it.
//! 2. Decompose into the cluster chain (Fig. 2 b).
//! 3. Pre-select clusters by the Fig.-3 bus-transfer estimate
//!    ([`preselect`]).
//! 4. For every candidate × designer resource set: list-schedule, bind
//!    (Fig. 4), compute `U_R^core`, and score with the objective
//!    function of Fig. 1 line 13 ([`partition`]).
//! 5. Verify the winner against the full simulation stack: ISS with
//!    instruction-level energies, trace-driven caches + memory, and a
//!    switching-activity ASIC estimate ([`evaluate`]).
//!
//! ## Quickstart
//!
//! ```
//! use corepart::flow::DesignFlow;
//! use corepart::prepare::Workload;
//!
//! let result = DesignFlow::new().run_source(
//!     r#"app fir; var x[64]; var y[64];
//!     func main() {
//!         for (var i = 1; i < 64; i = i + 1) {
//!             y[i] = x[i] * 5 + x[i - 1] * 3;
//!         }
//!     }"#,
//!     Workload::from_arrays([("x", (0..64).collect::<Vec<i64>>())]),
//! )?;
//! let saving = result.outcome.energy_saving_percent().unwrap_or(0.0);
//! println!("energy saving: {saving:.1}%");
//! # Ok::<(), corepart::error::CorepartError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod bus_transfer;
pub mod corpus;
pub mod engine;
pub mod error;
pub mod evaluate;
pub mod explore;
pub mod flow;
pub mod json;
pub mod multicore;
pub mod objective;
pub mod parallel;
pub mod partition;
pub mod prepare;
pub mod preselect;
pub mod report;
pub mod serve;
pub mod store;
pub mod system;
pub mod verify;

pub use corpus::{
    run_corpus, run_corpus_with, CorpusEntry, CorpusOptions, CorpusOutcome, CorpusRow,
    ParetoAccumulator, RemoteOptions,
};
pub use engine::{Baseline, Engine, Session, SessionStats};
pub use error::CorepartError;
pub use evaluate::{
    evaluate_initial, evaluate_initial_captured, evaluate_partition, evaluate_partition_with,
    Partition, PartitionDetail,
};
pub use explore::{explore, explore_in, DesignPoint, Exploration};
pub use flow::{DesignFlow, FlowResult};
pub use multicore::{evaluate_multicore, split_search, MultiCorePartition};
pub use parallel::{par_map, resolve_threads};
pub use partition::{PartitionOutcome, Partitioner, ScheduleKey, SearchStats};
pub use prepare::{prepare, PreparedApp, Workload};
pub use report::{figure6, render_figure6, Figure6Point, Table1, Table1Entry};
pub use serve::{ServeOptions, Server};
pub use store::{ArtifactStore, PipelineStats, StoreOptions, StoreStats};
pub use system::{DesignMetrics, SystemConfig};
pub use verify::{replay_run, ReplayEngine, VerifiedRun};

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use corepart_cache as cache;
pub use corepart_ir as ir;
pub use corepart_isa as isa;
pub use corepart_sched as sched;
pub use corepart_tech as tech;
