//! Cache adaptation after partitioning — the §1 footnote: "the access
//! pattern may change when a different hw/sw partition is used. Hence,
//! power consumption [of the caches] is likely to differ", so the cache
//! cores "have to be adapted efficiently … according to the particular
//! hw/sw partitioning chosen".
//!
//! This example partitions an image kernel, then sweeps the cache
//! geometry of both the initial and the partitioned system, showing
//! that the partitioned design's sweet spot is a much smaller cache.
//!
//! ```text
//! cargo run --release -p corepart --example cache_tuning
//! ```

use corepart::engine::Engine;
use corepart::error::CorepartError;
use corepart::partition::Partitioner;
use corepart::prepare::Workload;
use corepart::system::SystemConfig;
use corepart_ir::lower::lower;
use corepart_ir::parser::parse;

const SOURCE: &str = r#"
app edges;

const SIDE = 32;

var img[1024];
var grad[1024];

func main() {
    // Gradient magnitude (hot, regular).
    for (var y = 1; y < SIDE - 1; y = y + 1) {
        for (var x = 1; x < SIDE - 1; x = x + 1) {
            var p = y * SIDE + x;
            var gx = img[p + 1] - img[p - 1];
            var gy = img[p + SIDE] - img[p - SIDE];
            var mx = gx >> 63;
            var my = gy >> 63;
            grad[p] = ((gx ^ mx) - mx) + ((gy ^ my) - my);
        }
    }
    // Histogram-ish thresholding (stays in software).
    var strong = 0;
    for (var k = 0; k < SIDE * SIDE; k = k + 1) {
        if (grad[k] > 40) {
            strong = strong + 1;
        }
    }
    return strong;
}
"#;

fn main() -> Result<(), CorepartError> {
    let img: Vec<i64> = (0..1024)
        .map(|i| ((i * 31 + (i / 32) * 7) % 256) as i64)
        .collect();
    let workload = Workload::from_arrays([("img", img)]);

    // One engine for the whole sweep: every cache geometry shares the
    // prepared app and the schedule cache; only the baseline splits
    // (the cache cores are part of the baseline fingerprint).
    let base_config = SystemConfig::new();
    let app = lower(&parse(SOURCE)?)?;
    let engine = Engine::new(base_config.clone())?;

    // Find the partition once, under the default 8 kB caches.
    let session = engine.session(&app, &workload);
    let partitioner = Partitioner::new(&session)?;
    let outcome = partitioner.run()?;
    let Some((partition, _)) = outcome.best else {
        println!("no partition found — nothing to tune");
        return Ok(());
    };

    println!(
        "{:>7} | {:>14} {:>9} | {:>14} {:>9}",
        "cache", "initial E", "i$ miss%", "partitioned E", "i$ miss%"
    );
    for kb in [1usize, 2, 4, 8, 16] {
        let icache = base_config
            .icache
            .with_size(kb * 1024)
            .expect("power-of-two size");
        let dcache = base_config
            .dcache
            .with_size(kb * 1024)
            .expect("power-of-two size");
        let config = base_config.clone().with_caches(icache, dcache);
        let tuned = engine.session_with_config(&app, &workload, config)?;
        let initial = &tuned.baseline()?.metrics;
        let p = Partitioner::new(&tuned)?;
        let detail = p.evaluate(&partition)?;
        println!(
            "{:>5}kB | {:>14} {:>9.2} | {:>14} {:>9.2}",
            kb,
            format!("{}", initial.total_energy()),
            initial.icache_miss_ratio * 100.0,
            format!("{}", detail.metrics.total_energy()),
            detail.metrics.icache_miss_ratio * 100.0,
        );
    }
    println!(
        "\nAfter partitioning, the uP core only runs the thresholding pass —\n\
         a small cache serves it with the same miss ratio, so the cache cores\n\
         can shrink (the paper's point about re-adapting the standard cores)."
    );
    Ok(())
}
