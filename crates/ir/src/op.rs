//! Operation and operand types of the three-address CDFG instruction
//! set.

use std::fmt;

/// Identifier of a scalar variable (named variable or compiler
/// temporary) inside one function/application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a global array. Arrays live in the shared memory of the
/// target architecture (Fig. 2 a), so both cores can reach them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub u32);

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Identifier of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Identifier of a function in a lowered program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// An instruction operand: a variable or an integer literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A scalar variable or temporary.
    Var(VarId),
    /// An integer constant.
    Const(i64),
}

impl Operand {
    /// Returns the variable if this operand is one.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(v),
            Operand::Const(_) => None,
        }
    }
}

impl From<VarId> for Operand {
    fn from(v: VarId) -> Operand {
        Operand::Var(v)
    }
}

impl From<i64> for Operand {
    fn from(c: i64) -> Operand {
        Operand::Const(c)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Var(v) => write!(f, "{v}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Binary operators of the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (truncating; division by zero traps in the interpreter)
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic)
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl BinOp {
    /// All binary operators.
    pub const ALL: [BinOp; 16] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ];

    /// True for comparison operators producing 0/1.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Evaluates the operator on two values with the IR's wrapping
    /// semantics.
    ///
    /// Division/remainder by zero yields 0 (the interpreter separately
    /// flags it); shift amounts are masked to 0..63.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::Eq => i64::from(a == b),
            BinOp::Ne => i64::from(a != b),
            BinOp::Lt => i64::from(a < b),
            BinOp::Le => i64::from(a <= b),
            BinOp::Gt => i64::from(a > b),
            BinOp::Ge => i64::from(a >= b),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Unary operators of the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!x` is 1 when x == 0).
    Not,
    /// Bitwise complement.
    BitNot,
}

impl UnOp {
    /// Evaluates the operator.
    pub fn eval(self, a: i64) -> i64 {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => i64::from(a == 0),
            UnOp::BitNot => !a,
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
        };
        f.write_str(s)
    }
}

/// A three-address instruction inside a basic block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `dst = value`
    Const {
        /// Destination variable.
        dst: VarId,
        /// The constant.
        value: i64,
    },
    /// `dst = src` (register move)
    Copy {
        /// Destination variable.
        dst: VarId,
        /// Source operand.
        src: Operand,
    },
    /// `dst = op src`
    Unary {
        /// Destination variable.
        dst: VarId,
        /// The operator.
        op: UnOp,
        /// Source operand.
        src: Operand,
    },
    /// `dst = lhs op rhs`
    Binary {
        /// Destination variable.
        dst: VarId,
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = array[index]`
    Load {
        /// Destination variable.
        dst: VarId,
        /// The array read.
        array: ArrayId,
        /// Element index.
        index: Operand,
    },
    /// `array[index] = value`
    Store {
        /// The array written.
        array: ArrayId,
        /// Element index.
        index: Operand,
        /// Value stored.
        value: Operand,
    },
    /// `dst = call func(args)` — present only before inlining.
    Call {
        /// Destination for the return value, if used.
        dst: Option<VarId>,
        /// Callee.
        func: FuncId,
        /// Argument operands.
        args: Vec<Operand>,
    },
}

impl Inst {
    /// The variable this instruction defines, if any.
    pub fn def(&self) -> Option<VarId> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Unary { dst, .. }
            | Inst::Binary { dst, .. }
            | Inst::Load { dst, .. } => Some(*dst),
            Inst::Store { .. } => None,
            Inst::Call { dst, .. } => *dst,
        }
    }

    /// Variables this instruction reads, in operand order.
    pub fn uses(&self) -> Vec<VarId> {
        let mut v = Vec::new();
        let mut push = |o: &Operand| {
            if let Operand::Var(x) = o {
                v.push(*x);
            }
        };
        match self {
            Inst::Const { .. } => {}
            Inst::Copy { src, .. } => push(src),
            Inst::Unary { src, .. } => push(src),
            Inst::Binary { lhs, rhs, .. } => {
                push(lhs);
                push(rhs);
            }
            Inst::Load { index, .. } => push(index),
            Inst::Store { index, value, .. } => {
                push(index);
                push(value);
            }
            Inst::Call { args, .. } => args.iter().for_each(push),
        }
        v
    }

    /// The array this instruction reads, if any.
    pub fn array_use(&self) -> Option<ArrayId> {
        match self {
            Inst::Load { array, .. } => Some(*array),
            _ => None,
        }
    }

    /// The array this instruction writes, if any.
    pub fn array_def(&self) -> Option<ArrayId> {
        match self {
            Inst::Store { array, .. } => Some(*array),
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Const { dst, value } => write!(f, "{dst} = {value}"),
            Inst::Copy { dst, src } => write!(f, "{dst} = {src}"),
            Inst::Unary { dst, op, src } => write!(f, "{dst} = {op}{src}"),
            Inst::Binary { dst, op, lhs, rhs } => write!(f, "{dst} = {lhs} {op} {rhs}"),
            Inst::Load { dst, array, index } => write!(f, "{dst} = {array}[{index}]"),
            Inst::Store {
                array,
                index,
                value,
            } => write!(f, "{array}[{index}] = {value}"),
            Inst::Call { dst, func, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = call {func}(")?;
                } else {
                    write!(f, "call {func}(")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// Basic-block terminator.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a condition operand (non-zero = taken).
    Branch {
        /// Condition.
        cond: Operand,
        /// Successor when the condition is non-zero.
        then_block: BlockId,
        /// Successor when the condition is zero.
        else_block: BlockId,
    },
    /// Function return.
    Return(Option<Operand>),
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_block,
                else_block,
                ..
            } => vec![*then_block, *else_block],
            Terminator::Return(_) => vec![],
        }
    }

    /// The variable read by the terminator, if any.
    pub fn use_var(&self) -> Option<VarId> {
        match self {
            Terminator::Branch { cond, .. } => cond.as_var(),
            Terminator::Return(Some(op)) => op.as_var(),
            _ => None,
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(b) => write!(f, "jump {b}"),
            Terminator::Branch {
                cond,
                then_block,
                else_block,
            } => write!(f, "br {cond} ? {then_block} : {else_block}"),
            Terminator::Return(Some(op)) => write!(f, "ret {op}"),
            Terminator::Return(None) => f.write_str("ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_basics() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Sub.eval(2, 3), -1);
        assert_eq!(BinOp::Mul.eval(4, 3), 12);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
        assert_eq!(BinOp::Rem.eval(7, 2), 1);
        assert_eq!(BinOp::Div.eval(7, 0), 0);
        assert_eq!(BinOp::Rem.eval(7, 0), 0);
        assert_eq!(BinOp::Shl.eval(1, 4), 16);
        assert_eq!(BinOp::Shr.eval(-8, 1), -4);
        assert_eq!(BinOp::Lt.eval(1, 2), 1);
        assert_eq!(BinOp::Ge.eval(1, 2), 0);
    }

    #[test]
    fn binop_wrapping() {
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(BinOp::Mul.eval(i64::MAX, 2), -2);
        // shift amounts masked
        assert_eq!(BinOp::Shl.eval(1, 64), 1);
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Neg.eval(5), -5);
        assert_eq!(UnOp::Not.eval(0), 1);
        assert_eq!(UnOp::Not.eval(7), 0);
        assert_eq!(UnOp::BitNot.eval(0), -1);
    }

    #[test]
    fn inst_def_use() {
        let i = Inst::Binary {
            dst: VarId(3),
            op: BinOp::Add,
            lhs: Operand::Var(VarId(1)),
            rhs: Operand::Const(2),
        };
        assert_eq!(i.def(), Some(VarId(3)));
        assert_eq!(i.uses(), vec![VarId(1)]);

        let s = Inst::Store {
            array: ArrayId(0),
            index: Operand::Var(VarId(1)),
            value: Operand::Var(VarId(2)),
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![VarId(1), VarId(2)]);
        assert_eq!(s.array_def(), Some(ArrayId(0)));
        assert_eq!(s.array_use(), None);

        let l = Inst::Load {
            dst: VarId(0),
            array: ArrayId(1),
            index: Operand::Const(0),
        };
        assert_eq!(l.array_use(), Some(ArrayId(1)));
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: Operand::Var(VarId(0)),
            then_block: BlockId(1),
            else_block: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(t.use_var(), Some(VarId(0)));
        assert!(Terminator::Return(None).successors().is_empty());
    }

    #[test]
    fn display_round_trip_smoke() {
        let i = Inst::Binary {
            dst: VarId(3),
            op: BinOp::Mul,
            lhs: Operand::Var(VarId(1)),
            rhs: Operand::Const(2),
        };
        assert_eq!(format!("{i}"), "v3 = v1 * 2");
        let t = Terminator::Jump(BlockId(7));
        assert_eq!(format!("{t}"), "jump bb7");
    }

    #[test]
    fn comparison_predicate() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::Ge.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::Shl.is_comparison());
    }
}
