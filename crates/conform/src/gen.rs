//! Structured BDL application generator.
//!
//! Extends the string-template `arb_program` idea of
//! `tests/cross_crate_props.rs` into a proper library: applications
//! are generated as a structural AST ([`GenApp`]) covering exactly the
//! cluster shapes the paper's §3.2 decomposition partitions over —
//! nested loop nests, conditionals and (inlined) helper functions —
//! plus arrays with a deterministic workload. Because the AST is
//! structural, a failing application can be *shrunk*
//! ([`shrink_candidates`]) by removing statements, collapsing
//! conditionals and reducing trip counts while staying well-formed:
//! every generated or shrunk app parses, lowers, and terminates.
//!
//! Well-formedness invariants the generator maintains:
//!
//! * every array index is masked to the (power-of-two) array length,
//!   so accesses are always in bounds;
//! * shift amounts are masked to `& 7`;
//! * loops are counted `for` loops with bounded trip counts, so every
//!   execution terminates (division by zero evaluates to 0 in both
//!   the interpreter and the ISS, so `/` and `%` are unrestricted);
//! * every name is declared before use and declared once.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Arithmetic operators the generator draws from (shifts get their
/// right-hand side masked at render time).
const BIN_OPS: [&str; 10] = ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"];
/// Comparison operators for `if`/loop conditions.
const CMP_OPS: [&str; 6] = ["<", ">", "<=", ">=", "==", "!="];
/// Power-of-two array lengths (mask-indexable).
const ARRAY_LENS: [u32; 4] = [8, 16, 32, 64];

/// A generated expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// An integer literal.
    Const(i64),
    /// A scalar in scope (global, loop variable, or helper parameter).
    Var(String),
    /// An array element; the index is masked to the array length at
    /// render time, so it is always in bounds.
    Elem {
        /// Index into [`GenApp::arrays`].
        array: usize,
        /// The (unmasked) index expression.
        index: Box<Expr>,
    },
    /// A binary arithmetic operation.
    Bin {
        /// The operator token (one of `+ - * / % & | ^ << >>`).
        op: &'static str,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A comparison (generated only as `if`-condition roots).
    Cmp {
        /// The comparison token (one of `< > <= >= == !=`).
        op: &'static str,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

/// An assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// A global scalar.
    Var(String),
    /// An array element (index masked at render time).
    Elem {
        /// Index into [`GenApp::arrays`].
        array: usize,
        /// The (unmasked) index expression.
        index: Expr,
    },
}

/// A generated statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `target = value;`
    Assign {
        /// Where the value goes.
        target: Target,
        /// The value.
        value: Expr,
    },
    /// `target = helper(args...);` — a helper call whose result lands
    /// in a global scalar.
    Call {
        /// The global scalar receiving the result.
        target: String,
        /// Index into [`GenApp::helpers`].
        func: usize,
        /// Argument expressions (matches the helper's arity).
        args: Vec<Expr>,
    },
    /// A counted loop: `for (var v = 0; v < trips; v = v + 1) { ... }`.
    For {
        /// The loop variable (unique per loop).
        var: String,
        /// The trip count.
        trips: u32,
        /// The loop body.
        body: Vec<Stmt>,
    },
    /// A conditional; `else_body` may be empty.
    If {
        /// The condition (a [`Expr::Cmp`] root).
        cond: Expr,
        /// The `then` branch.
        then_body: Vec<Stmt>,
        /// The `else` branch (omitted when empty).
        else_body: Vec<Stmt>,
    },
}

/// A generated array plus its deterministic workload contents.
#[derive(Debug, Clone, PartialEq)]
pub struct GenArray {
    /// The array name.
    pub name: String,
    /// Its (power-of-two) length.
    pub len: u32,
    /// The workload data loaded before every simulation.
    pub values: Vec<i64>,
}

/// A generated helper function (inlined by lowering).
#[derive(Debug, Clone, PartialEq)]
pub struct GenFunc {
    /// The function name.
    pub name: String,
    /// Parameter names (unique across the app).
    pub params: Vec<String>,
    /// Local declarations, as `(name, initializer)` pairs.
    pub locals: Vec<(String, Expr)>,
    /// Body statements (assignments to locals, bounded loops).
    pub body: Vec<Stmt>,
    /// The returned expression.
    pub ret: Expr,
}

/// A generated application: renders to BDL source
/// ([`GenApp::source`]) and carries its own workload
/// ([`GenApp::workload_arrays`]).
#[derive(Debug, Clone, PartialEq)]
pub struct GenApp {
    /// The `app` name.
    pub name: String,
    /// Global arrays with workload data.
    pub arrays: Vec<GenArray>,
    /// Global scalars, as `(name, initializer)` pairs.
    pub globals: Vec<(String, i64)>,
    /// Helper functions callable from `main`.
    pub helpers: Vec<GenFunc>,
    /// The body of `main`.
    pub main: Vec<Stmt>,
    /// The expression `main` returns.
    pub ret: Expr,
}

/// Book-keeping while generating: names in scope and fresh-name
/// counters.
struct Ctx {
    scope: Vec<String>,
    next_loop_var: u32,
}

/// Generates one application from a case seed. The same seed always
/// yields the same application (the vendored `rand` shim is
/// deterministic and platform-independent).
pub fn generate(seed: u64) -> GenApp {
    let mut rng = StdRng::seed_from_u64(seed);

    let arrays: Vec<GenArray> = (0..rng.gen_range(1..=3usize))
        .map(|i| {
            let len = ARRAY_LENS[rng.gen_range(0..ARRAY_LENS.len())];
            GenArray {
                name: format!("a{i}"),
                len,
                values: (0..len).map(|_| rng.gen_range(-64i64..=64)).collect(),
            }
        })
        .collect();

    let globals: Vec<(String, i64)> = (0..rng.gen_range(2..=4usize))
        .map(|i| (format!("g{i}"), rng.gen_range(-16i64..=16)))
        .collect();

    let helpers: Vec<GenFunc> = (0..rng.gen_range(0..=2usize))
        .map(|h| gen_helper(&mut rng, h, &arrays))
        .collect();

    let mut ctx = Ctx {
        scope: globals.iter().map(|(n, _)| n.clone()).collect(),
        next_loop_var: 0,
    };
    let main = gen_block(&mut rng, &mut ctx, &arrays, &globals, &helpers, 0, 3, 3, 5);

    // The return value folds every global in, so any divergence in
    // computed state shows up in `return_value` too.
    let mut ret = Expr::Var(globals[0].0.clone());
    for (name, _) in &globals[1..] {
        ret = Expr::Bin {
            op: "+",
            lhs: Box::new(ret),
            rhs: Box::new(Expr::Var(name.clone())),
        };
    }

    GenApp {
        name: format!("gen{}", seed % 1_000_000),
        arrays,
        globals,
        helpers,
        main,
        ret,
    }
}

fn gen_helper(rng: &mut StdRng, index: usize, arrays: &[GenArray]) -> GenFunc {
    let name = format!("h{index}");
    let params: Vec<String> = (0..rng.gen_range(1..=2usize))
        .map(|p| format!("h{index}p{p}"))
        .collect();
    // Locals and body are straight-line over params/locals/constants
    // (helpers never touch globals; array reads are allowed in the
    // return expression). An optional bounded loop adds an inlined
    // loop cluster.
    let mut scope = params.clone();
    let locals: Vec<(String, Expr)> = (0..rng.gen_range(0..=1usize))
        .map(|t| {
            let name = format!("h{index}t{t}");
            let init = gen_arith(rng, &scope, arrays, 2, false);
            scope.push(name.clone());
            (name, init)
        })
        .collect();
    let mut body = Vec::new();
    if !locals.is_empty() && rng.gen_bool(0.5) {
        let target = locals[0].0.clone();
        let var = format!("h{index}k");
        scope.push(var.clone());
        let value = gen_arith(rng, &scope, arrays, 2, false);
        scope.pop();
        body.push(Stmt::For {
            var,
            trips: rng.gen_range(2..=8),
            body: vec![Stmt::Assign {
                target: Target::Var(target),
                value,
            }],
        });
    }
    let ret = gen_arith(rng, &scope, arrays, 2, true);
    GenFunc {
        name,
        params,
        locals,
        body,
        ret,
    }
}

/// A random arithmetic expression over the scalars in `scope`,
/// constants, and (when `allow_elem`) array elements.
fn gen_arith(
    rng: &mut StdRng,
    scope: &[String],
    arrays: &[GenArray],
    depth: u32,
    allow_elem: bool,
) -> Expr {
    if depth == 0 || rng.gen_bool(0.35) {
        return match rng.gen_range(0..3u32) {
            0 => Expr::Const(rng.gen_range(-16i64..=16)),
            1 if !scope.is_empty() => Expr::Var(scope[rng.gen_range(0..scope.len())].clone()),
            _ if allow_elem && !arrays.is_empty() => {
                let array = rng.gen_range(0..arrays.len());
                let index = Box::new(if scope.is_empty() || rng.gen_bool(0.3) {
                    Expr::Const(rng.gen_range(0i64..=16))
                } else {
                    Expr::Var(scope[rng.gen_range(0..scope.len())].clone())
                });
                Expr::Elem { array, index }
            }
            _ => Expr::Const(rng.gen_range(-16i64..=16)),
        };
    }
    Expr::Bin {
        op: BIN_OPS[rng.gen_range(0..BIN_OPS.len())],
        lhs: Box::new(gen_arith(rng, scope, arrays, depth - 1, allow_elem)),
        rhs: Box::new(gen_arith(rng, scope, arrays, depth - 1, allow_elem)),
    }
}

fn gen_cond(rng: &mut StdRng, scope: &[String], arrays: &[GenArray]) -> Expr {
    Expr::Cmp {
        op: CMP_OPS[rng.gen_range(0..CMP_OPS.len())],
        lhs: Box::new(gen_arith(rng, scope, arrays, 2, true)),
        rhs: Box::new(gen_arith(rng, scope, arrays, 2, true)),
    }
}

fn gen_target(
    rng: &mut StdRng,
    scope_globals: &[(String, i64)],
    arrays: &[GenArray],
    ctx: &Ctx,
) -> Target {
    if !arrays.is_empty() && rng.gen_bool(0.4) {
        let array = rng.gen_range(0..arrays.len());
        let index = if ctx.scope.is_empty() || rng.gen_bool(0.3) {
            Expr::Const(rng.gen_range(0i64..=16))
        } else {
            Expr::Var(ctx.scope[rng.gen_range(0..ctx.scope.len())].clone())
        };
        Target::Elem { array, index }
    } else {
        let g = rng.gen_range(0..scope_globals.len());
        Target::Var(scope_globals[g].0.clone())
    }
}

#[allow(clippy::too_many_arguments)]
fn gen_block(
    rng: &mut StdRng,
    ctx: &mut Ctx,
    arrays: &[GenArray],
    globals: &[(String, i64)],
    helpers: &[GenFunc],
    loop_depth: u32,
    max_loop_depth: u32,
    // Remaining nesting budget; decremented by *every* nested block
    // (loop or conditional), so generation always terminates.
    nest: u32,
    max_stmts: usize,
) -> Vec<Stmt> {
    let n = rng.gen_range(1..=max_stmts.max(1));
    let mut stmts = Vec::with_capacity(n);
    for _ in 0..n {
        let roll = rng.gen_range(0..100u32);
        if roll < 35 && loop_depth < max_loop_depth && nest > 0 {
            // A counted loop with a unique loop variable.
            let var = format!("i{}", ctx.next_loop_var);
            ctx.next_loop_var += 1;
            let trips = rng.gen_range(2..=10u32);
            ctx.scope.push(var.clone());
            let body = gen_block(
                rng,
                ctx,
                arrays,
                globals,
                helpers,
                loop_depth + 1,
                max_loop_depth,
                nest - 1,
                3,
            );
            ctx.scope.pop();
            stmts.push(Stmt::For { var, trips, body });
        } else if roll < 55 && nest > 0 {
            let cond = gen_cond(rng, &ctx.scope, arrays);
            let then_body = gen_block(
                rng,
                ctx,
                arrays,
                globals,
                helpers,
                loop_depth,
                max_loop_depth,
                nest - 1,
                2,
            );
            let else_body = if rng.gen_bool(0.5) {
                gen_block(
                    rng,
                    ctx,
                    arrays,
                    globals,
                    helpers,
                    loop_depth,
                    max_loop_depth,
                    nest - 1,
                    2,
                )
            } else {
                Vec::new()
            };
            stmts.push(Stmt::If {
                cond,
                then_body,
                else_body,
            });
        } else if roll < 70 && !helpers.is_empty() {
            let func = rng.gen_range(0..helpers.len());
            let args = (0..helpers[func].params.len())
                .map(|_| gen_arith(rng, &ctx.scope, arrays, 2, true))
                .collect();
            let target = globals[rng.gen_range(0..globals.len())].0.clone();
            stmts.push(Stmt::Call { target, func, args });
        } else {
            stmts.push(Stmt::Assign {
                target: gen_target(rng, globals, arrays, ctx),
                value: gen_arith(rng, &ctx.scope, arrays, 3, true),
            });
        }
    }
    stmts
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

impl GenApp {
    /// Renders the application to BDL source text.
    pub fn source(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("app {};\n", self.name));
        for a in &self.arrays {
            out.push_str(&format!("var {}[{}];\n", a.name, a.len));
        }
        for (name, init) in &self.globals {
            out.push_str(&format!("var {name} = {init};\n"));
        }
        for f in &self.helpers {
            out.push_str(&format!("func {}({}) {{\n", f.name, f.params.join(", ")));
            for (name, init) in &f.locals {
                out.push_str(&format!("    var {name} = {};\n", self.expr(init)));
            }
            for s in &f.body {
                self.stmt(&mut out, s, 1);
            }
            out.push_str(&format!("    return {};\n}}\n", self.expr(&f.ret)));
        }
        out.push_str("func main() {\n");
        for s in &self.main {
            self.stmt(&mut out, s, 1);
        }
        out.push_str(&format!("    return {};\n}}\n", self.expr(&self.ret)));
        out
    }

    /// The workload arrays — `(name, contents)` pairs for
    /// `Workload::from_arrays`.
    pub fn workload_arrays(&self) -> Vec<(String, Vec<i64>)> {
        self.arrays
            .iter()
            .map(|a| (a.name.clone(), a.values.clone()))
            .collect()
    }

    fn stmt(&self, out: &mut String, s: &Stmt, indent: usize) {
        let pad = "    ".repeat(indent);
        match s {
            Stmt::Assign { target, value } => {
                out.push_str(&format!(
                    "{pad}{} = {};\n",
                    self.target(target),
                    self.expr(value)
                ));
            }
            Stmt::Call { target, func, args } => {
                let rendered: Vec<String> = args.iter().map(|a| self.expr(a)).collect();
                out.push_str(&format!(
                    "{pad}{target} = {}({});\n",
                    self.helpers[*func].name,
                    rendered.join(", ")
                ));
            }
            Stmt::For { var, trips, body } => {
                out.push_str(&format!(
                    "{pad}for (var {var} = 0; {var} < {trips}; {var} = {var} + 1) {{\n"
                ));
                for inner in body {
                    self.stmt(out, inner, indent + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                out.push_str(&format!("{pad}if ({}) {{\n", self.expr(cond)));
                for inner in then_body {
                    self.stmt(out, inner, indent + 1);
                }
                if else_body.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    for inner in else_body {
                        self.stmt(out, inner, indent + 1);
                    }
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
        }
    }

    fn target(&self, t: &Target) -> String {
        match t {
            Target::Var(name) => name.clone(),
            Target::Elem { array, index } => {
                let a = &self.arrays[*array];
                format!("{}[({}) & {}]", a.name, self.expr(index), a.len - 1)
            }
        }
    }

    fn expr(&self, e: &Expr) -> String {
        match e {
            Expr::Const(v) => {
                if *v < 0 {
                    format!("({v})")
                } else {
                    v.to_string()
                }
            }
            Expr::Var(name) => name.clone(),
            Expr::Elem { array, index } => {
                let a = &self.arrays[*array];
                format!("{}[({}) & {}]", a.name, self.expr(index), a.len - 1)
            }
            Expr::Bin { op, lhs, rhs } => {
                if *op == "<<" || *op == ">>" {
                    format!("({} {op} ({} & 7))", self.expr(lhs), self.expr(rhs))
                } else {
                    format!("({} {op} {})", self.expr(lhs), self.expr(rhs))
                }
            }
            Expr::Cmp { op, lhs, rhs } => {
                format!("({} {op} {})", self.expr(lhs), self.expr(rhs))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// All one-edit-smaller variants of `app`, each still well-formed:
/// statement removals, loop trip reductions, conditional collapses,
/// top-level expression simplifications, and removals of unreferenced
/// helpers/arrays/globals. The runner greedily descends through these
/// while the original oracle keeps failing.
pub fn shrink_candidates(app: &GenApp) -> Vec<GenApp> {
    let mut out = Vec::new();

    for variant in block_variants(&app.main) {
        let mut candidate = app.clone();
        candidate.main = variant;
        out.push(candidate);
    }
    for (h, helper) in app.helpers.iter().enumerate() {
        for variant in block_variants(&helper.body) {
            let mut candidate = app.clone();
            candidate.helpers[h].body = variant;
            out.push(candidate);
        }
    }

    // Remove helpers no call statement references.
    for h in 0..app.helpers.len() {
        if !block_calls(&app.main, h) {
            let mut candidate = app.clone();
            candidate.helpers.remove(h);
            reindex_calls(&mut candidate.main, h);
            out.push(candidate);
        }
    }

    // Remove arrays nothing references.
    for a in 0..app.arrays.len() {
        if !app_uses_array(app, a) {
            let mut candidate = app.clone();
            candidate.arrays.remove(a);
            reindex_arrays_app(&mut candidate, a);
            out.push(candidate);
        }
    }

    // Shrink the return expression.
    for simpler in expr_variants(&app.ret) {
        let mut candidate = app.clone();
        candidate.ret = simpler;
        out.push(candidate);
    }

    out
}

/// One-edit variants of a statement list: per-statement removal,
/// recursive body edits, trip reduction, conditional collapse, and
/// assignment-value simplification.
fn block_variants(stmts: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for (i, s) in stmts.iter().enumerate() {
        // Removal.
        let mut removed = stmts.to_vec();
        removed.remove(i);
        out.push(removed);

        match s {
            Stmt::For { var, trips, body } => {
                if *trips > 1 {
                    let mut v = stmts.to_vec();
                    v[i] = Stmt::For {
                        var: var.clone(),
                        trips: 1,
                        body: body.clone(),
                    };
                    out.push(v);
                }
                for inner in block_variants(body) {
                    let mut v = stmts.to_vec();
                    v[i] = Stmt::For {
                        var: var.clone(),
                        trips: *trips,
                        body: inner,
                    };
                    out.push(v);
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                // Collapse to either branch.
                for branch in [then_body, else_body] {
                    let mut v = stmts.to_vec();
                    v.splice(i..=i, branch.iter().cloned());
                    out.push(v);
                }
                for inner in block_variants(then_body) {
                    let mut v = stmts.to_vec();
                    v[i] = Stmt::If {
                        cond: cond.clone(),
                        then_body: inner,
                        else_body: else_body.clone(),
                    };
                    out.push(v);
                }
                for inner in block_variants(else_body) {
                    let mut v = stmts.to_vec();
                    v[i] = Stmt::If {
                        cond: cond.clone(),
                        then_body: then_body.clone(),
                        else_body: inner,
                    };
                    out.push(v);
                }
            }
            Stmt::Assign { target, value } => {
                for simpler in expr_variants(value) {
                    let mut v = stmts.to_vec();
                    v[i] = Stmt::Assign {
                        target: target.clone(),
                        value: simpler,
                    };
                    out.push(v);
                }
            }
            Stmt::Call { .. } => {}
        }
    }
    out
}

/// Structural simplifications of an expression: each binary node can
/// collapse to either operand, and any non-trivial node to `1`.
fn expr_variants(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Bin { lhs, rhs, .. } => {
            vec![(**lhs).clone(), (**rhs).clone(), Expr::Const(1)]
        }
        Expr::Elem { .. } | Expr::Var(_) => vec![Expr::Const(1)],
        _ => Vec::new(),
    }
}

fn block_calls(stmts: &[Stmt], func: usize) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Call { func: f, .. } => *f == func,
        Stmt::For { body, .. } => block_calls(body, func),
        Stmt::If {
            then_body,
            else_body,
            ..
        } => block_calls(then_body, func) || block_calls(else_body, func),
        Stmt::Assign { .. } => false,
    })
}

fn reindex_calls(stmts: &mut [Stmt], removed: usize) {
    for s in stmts {
        match s {
            Stmt::Call { func, .. } => {
                if *func > removed {
                    *func -= 1;
                }
            }
            Stmt::For { body, .. } => reindex_calls(body, removed),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                reindex_calls(then_body, removed);
                reindex_calls(else_body, removed);
            }
            Stmt::Assign { .. } => {}
        }
    }
}

fn expr_uses_array(e: &Expr, a: usize) -> bool {
    match e {
        Expr::Elem { array, index } => *array == a || expr_uses_array(index, a),
        Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
            expr_uses_array(lhs, a) || expr_uses_array(rhs, a)
        }
        Expr::Const(_) | Expr::Var(_) => false,
    }
}

fn block_uses_array(stmts: &[Stmt], a: usize) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Assign { target, value } => {
            let t = match target {
                Target::Elem { array, index } => *array == a || expr_uses_array(index, a),
                Target::Var(_) => false,
            };
            t || expr_uses_array(value, a)
        }
        Stmt::Call { args, .. } => args.iter().any(|e| expr_uses_array(e, a)),
        Stmt::For { body, .. } => block_uses_array(body, a),
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            expr_uses_array(cond, a)
                || block_uses_array(then_body, a)
                || block_uses_array(else_body, a)
        }
    })
}

fn app_uses_array(app: &GenApp, a: usize) -> bool {
    block_uses_array(&app.main, a)
        || expr_uses_array(&app.ret, a)
        || app.helpers.iter().any(|f| {
            f.locals.iter().any(|(_, e)| expr_uses_array(e, a))
                || block_uses_array(&f.body, a)
                || expr_uses_array(&f.ret, a)
        })
}

fn reindex_expr_arrays(e: &mut Expr, removed: usize) {
    match e {
        Expr::Elem { array, index } => {
            if *array > removed {
                *array -= 1;
            }
            reindex_expr_arrays(index, removed);
        }
        Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
            reindex_expr_arrays(lhs, removed);
            reindex_expr_arrays(rhs, removed);
        }
        Expr::Const(_) | Expr::Var(_) => {}
    }
}

fn reindex_block_arrays(stmts: &mut [Stmt], removed: usize) {
    for s in stmts {
        match s {
            Stmt::Assign { target, value } => {
                if let Target::Elem { array, index } = target {
                    if *array > removed {
                        *array -= 1;
                    }
                    reindex_expr_arrays(index, removed);
                }
                reindex_expr_arrays(value, removed);
            }
            Stmt::Call { args, .. } => {
                for a in args {
                    reindex_expr_arrays(a, removed);
                }
            }
            Stmt::For { body, .. } => reindex_block_arrays(body, removed),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                reindex_expr_arrays(cond, removed);
                reindex_block_arrays(then_body, removed);
                reindex_block_arrays(else_body, removed);
            }
        }
    }
}

fn reindex_arrays_app(app: &mut GenApp, removed: usize) {
    reindex_block_arrays(&mut app.main, removed);
    reindex_expr_arrays(&mut app.ret, removed);
    for f in &mut app.helpers {
        for (_, e) in &mut f.locals {
            reindex_expr_arrays(e, removed);
        }
        reindex_block_arrays(&mut f.body, removed);
        reindex_expr_arrays(&mut f.ret, removed);
    }
}

/// A rough structural size (statements + expression nodes), used by
/// the shrinker to prefer strictly smaller candidates.
pub fn size(app: &GenApp) -> usize {
    fn expr(e: &Expr) -> usize {
        match e {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Elem { index, .. } => 1 + expr(index),
            Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => 1 + expr(lhs) + expr(rhs),
        }
    }
    fn block(stmts: &[Stmt]) -> usize {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::Assign { value, .. } => 1 + expr(value),
                Stmt::Call { args, .. } => 1 + args.iter().map(expr).sum::<usize>(),
                Stmt::For { body, .. } => 2 + block(body),
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => 1 + expr(cond) + block(then_body) + block(else_body),
            })
            .sum()
    }
    block(&app.main)
        + expr(&app.ret)
        + app
            .helpers
            .iter()
            .map(|f| {
                1 + f.locals.iter().map(|(_, e)| expr(e)).sum::<usize>()
                    + block(&f.body)
                    + expr(&f.ret)
            })
            .sum::<usize>()
        + app.arrays.len()
        + app.globals.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42);
        let b = generate(42);
        assert_eq!(a, b);
        assert_eq!(a.source(), b.source());
        assert_ne!(generate(42).source(), generate(43).source());
    }

    #[test]
    fn sources_have_structure() {
        // Across a seed range, the generator produces loops,
        // conditionals and helper calls (the cluster shapes §3.2
        // decomposes).
        let sources: Vec<String> = (0..40).map(|s| generate(s).source()).collect();
        assert!(sources.iter().any(|s| s.contains("for (")));
        assert!(sources.iter().any(|s| s.contains("if (")));
        assert!(sources.iter().any(|s| s.contains("= h0(")));
    }

    #[test]
    fn shrink_candidates_are_smaller_or_equal() {
        let app = generate(7);
        let base = size(&app);
        for candidate in shrink_candidates(&app) {
            assert!(size(&candidate) <= base);
        }
    }
}
