//! `MPG` — an MPEG-II-encoder-style workload.
//!
//! The computational signature of an MPEG-II encoder's inner loop:
//! full-search block motion estimation (sum of absolute differences
//! over a ±4 search window) followed by a separable 8×8 transform and
//! quantization of the residual. Motion estimation dominates — it is
//! the cluster the partitioner should move, reproducing the paper's
//! MPG row (≈43 % energy saving, large execution-time win).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Current-block side (16×16 macroblock).
pub const BLK: usize = 16;
/// Reference-window side.
pub const WIN: usize = 24;

/// The behavioral source.
pub const SOURCE: &str = r#"
app mpg;

const BLK = 16;
const WIN = 24;
const RANGE = 8;

var cur[256];
var refwin[576];
var resid[256];
var coeff[256];
var quant[256];
var mv[3];

func main() {
    // --- Motion estimation: full search over an 8x8 displacement
    // grid; the dominating, highly regular cluster. ---
    mv[0] = 1 << 30;
    for (var dy = 0; dy < RANGE; dy = dy + 1) {
        for (var dx = 0; dx < RANGE; dx = dx + 1) {
            var sad = 0;
            for (var y = 0; y < BLK; y = y + 1) {
                for (var x = 0; x < BLK; x = x + 1) {
                    var d = cur[y * BLK + x] - refwin[(y + dy) * WIN + x + dx];
                    var m = d >> 63;
                    sad = sad + ((d ^ m) - m);
                }
            }
            if (sad < mv[0]) {
                mv[0] = sad;
                mv[1] = dx;
                mv[2] = dy;
            }
        }
    }

    // --- Residual against the best match. ---
    for (var ry = 0; ry < BLK; ry = ry + 1) {
        for (var rx = 0; rx < BLK; rx = rx + 1) {
            resid[ry * BLK + rx] =
                cur[ry * BLK + rx] - refwin[(ry + mv[2]) * WIN + rx + mv[1]];
        }
    }

    // --- Separable 4-tap "DCT-like" transform (integer butterflies). ---
    for (var ty = 0; ty < BLK; ty = ty + 1) {
        for (var tx = 0; tx < BLK; tx = tx + 1) {
            var a = resid[ty * BLK + tx];
            var b = resid[ty * BLK + ((tx + 1) & 15)];
            var c = resid[((ty + 1) & 15) * BLK + tx];
            coeff[ty * BLK + tx] = (a * 17 + b * 9 + c * 9) >> 5;
        }
    }

    // --- Quantization with a dead zone (branchy, modest size). ---
    var nz = 0;
    for (var q = 0; q < 256; q = q + 1) {
        var v = coeff[q] / 12;
        if (v > -2) {
            if (v < 2) {
                v = 0;
            }
        }
        quant[q] = v;
        if (v != 0) {
            nz = nz + 1;
        }
    }
    return nz + mv[0];
}
"#;

/// Deterministic inputs: a textured current block and a shifted, noisy
/// reference window (so the search has a meaningful minimum).
pub fn arrays(seed: u64) -> Vec<(String, Vec<i64>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cur = vec![0i64; BLK * BLK];
    for y in 0..BLK {
        for x in 0..BLK {
            cur[y * BLK + x] = ((x as i64 * 13 + y as i64 * 7) % 97) + rng.gen_range(0..8);
        }
    }
    // Reference = current shifted by (3, 2) + noise, embedded in the
    // window.
    let mut refwin = vec![0i64; WIN * WIN];
    for y in 0..WIN {
        for x in 0..WIN {
            refwin[y * WIN + x] = rng.gen_range(0..96);
        }
    }
    for y in 0..BLK {
        for x in 0..BLK {
            refwin[(y + 2) * WIN + x + 3] = cur[y * BLK + x] + rng.gen_range(-2..3);
        }
    }
    vec![("cur".to_owned(), cur), ("refwin".to_owned(), refwin)]
}
