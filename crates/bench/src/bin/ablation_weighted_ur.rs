//! Ablation **A1** — GEQ-weighted vs uniform utilization rate.
//!
//! §3.4 closing note: "all resources contribute to `U_R^core` in the
//! same way, no matter whether they are large or small … an according
//! distinction does not result in better partitions though the
//! individual values of `U_R^core` are different. Reason is that the
//! *relative* values of `U_R^core` of different clusters are actually
//! responsible."
//!
//! This experiment computes both variants for every (cluster, set)
//! candidate of every application and reports (a) the individual
//! values, (b) whether the *ranking* of clusters — what the partition
//! decision consumes — agrees.
//!
//! ```text
//! cargo run --release -p corepart-bench --bin ablation_weighted_ur
//! ```

use corepart::engine::Engine;
use corepart::evaluate::Partition;
use corepart::partition::Partitioner;
use corepart::prepare::Workload;
use corepart::system::SystemConfig;
use corepart_bench::SEED;
use corepart_workloads::all;

fn main() {
    let config = SystemConfig::new();
    println!("A1: uniform vs GEQ-weighted U_R (per candidate cluster, m-dsp set)\n");
    println!(
        "{:<8} {:<14} {:>9} {:>11} | rank agreement",
        "app", "cluster", "U_R", "U_R(wgt)"
    );

    let mut agreements = 0usize;
    let mut comparisons = 0usize;
    for w in all() {
        let app = w.app().expect("bundled workload lowers");
        let workload = Workload::from_arrays(w.arrays(SEED));
        let engine = Engine::new(config.clone()).expect("engine");
        let session = engine.session(&app, &workload);
        let prepared = session.prepared().expect("bundled workload prepares");
        let partitioner = Partitioner::new(&session).expect("initial run");
        let set = config.resource_sets[2].clone(); // m-dsp

        let mut rows: Vec<(String, f64, f64)> = Vec::new();
        for cand in partitioner.candidates() {
            let partition = Partition::single(cand.cluster, set.clone());
            // Use the full evaluation to get both utilization variants.
            if let Ok(detail) = partitioner.evaluate(&partition) {
                rows.push((
                    prepared.chain.cluster(cand.cluster).label.clone(),
                    detail.u_r,
                    detail.u_r_weighted,
                ));
            }
        }
        // Rank agreement: does sorting by either metric order the
        // clusters identically?
        let mut by_u: Vec<usize> = (0..rows.len()).collect();
        by_u.sort_by(|&a, &b| rows[b].1.partial_cmp(&rows[a].1).expect("finite"));
        let mut by_w: Vec<usize> = (0..rows.len()).collect();
        by_w.sort_by(|&a, &b| rows[b].2.partial_cmp(&rows[a].2).expect("finite"));
        let agree = by_u == by_w;
        if rows.len() > 1 {
            comparisons += 1;
            if agree {
                agreements += 1;
            }
        }
        for (label, u, uw) in &rows {
            println!("{:<8} {:<14} {:>9.3} {:>11.3} |", w.name, label, u, uw);
        }
        if rows.len() > 1 {
            println!("{:<8} -> cluster ranking agrees: {agree}\n", w.name);
        } else {
            println!();
        }
    }
    println!(
        "Summary: rankings agree on {agreements}/{comparisons} applications — the\n\
         paper's observation that weighting 'does not result in better partitions'\n\
         holds when the relative order is what decides."
    );
}
