//! # corepart-conform
//!
//! Generative differential-conformance harness for the
//! replay/cache/session spine.
//!
//! The library-level promise under test is strong: for any
//! application, [`corepart`] produces **bit-identical**
//! [`corepart::PartitionOutcome`]s whether verification replays the
//! captured reference trace or re-simulates directly, whether the
//! search runs on one thread or many, whether sessions share an
//! [`corepart::Engine`] or each build their own, and whether the
//! schedule cache serves a hit or recomputes. Hand-written tests pin
//! that promise on six fixed workloads; this crate pins it on an
//! unbounded family of *generated* applications.
//!
//! Three layers:
//!
//! * [`gen`] — a structured BDL generator (loop nests, conditionals,
//!   helper functions, arrays) with deterministic per-seed output and
//!   structural shrinking;
//! * [`oracle`] — differential and metamorphic oracles run on every
//!   generated application under a matrix of
//!   [`corepart::system::SystemConfig`]s;
//! * [`fault`] — deliberate-damage scenarios (trace-capture overflow,
//!   corrupted and truncated captures, evicted and poisoned schedule
//!   cache entries) asserting the documented degradation: fall back
//!   bit-identically, or fail loudly through
//!   [`corepart::CorepartError`] — never panic, never silently
//!   diverge.
//!
//! The [`runner`] drives seeds through all three layers, shrinks any
//! failing application to a minimal reproducer, and emits a
//! machine-readable failure report ([`report`]). The `conform` binary
//! wraps the runner for CI:
//!
//! ```text
//! cargo run -p corepart-conform --release -- --seed 1 --cases 500
//! ```
//!
//! A fourth layer, [`corpus`], feeds the same generator into
//! [`corepart::corpus`]'s resumable sharded runner for corpus-scale
//! exploration (`conform corpus --seed 7 --count 1000 ...`): one
//! byte-stable columnar results file, an aggregate Pareto frontier,
//! and per-feature saving statistics over thousands of generated apps.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod fault;
pub mod gen;
pub mod oracle;
pub mod report;
pub mod runner;

pub use corpus::{gen_entry, run_gen_corpus};
pub use gen::{generate, shrink_candidates, GenApp};
pub use oracle::Violation;
pub use runner::{run, Failure, RunnerOptions, Summary};
