//! Machine-readable (JSON) export of reports.
//!
//! The text renderings in [`crate::report`] serve humans; downstream
//! tooling (plotting scripts, CI dashboards) wants structured output.
//! The writer here is deliberately dependency-free: the report types
//! are flat records of numbers and names, so a small escaper suffices.

use std::fmt::Write as _;

use crate::explore::Exploration;
use crate::partition::PartitionOutcome;
use crate::report::{Figure6Point, Table1, Table1Entry};
use crate::system::DesignMetrics;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Serializes one design point (all energies in joules, cycle counts
/// raw, hardware in cells).
pub fn metrics_to_json(m: &DesignMetrics) -> String {
    format!(
        concat!(
            "{{\"icache_j\":{},\"dcache_j\":{},\"mem_j\":{},\"bus_j\":{},",
            "\"up_core_j\":{},\"asic_core_j\":{},\"total_j\":{},",
            "\"up_cycles\":{},\"asic_cycles\":{},\"total_cycles\":{},",
            "\"geq_cells\":{},\"icache_miss\":{},\"dcache_miss\":{}}}"
        ),
        num(m.icache.joules()),
        num(m.dcache.joules()),
        num(m.mem.joules()),
        num(m.bus.joules()),
        num(m.up_core.joules()),
        m.asic_core
            .map(|e| num(e.joules()))
            .unwrap_or_else(|| "null".to_owned()),
        num(m.total_energy().joules()),
        m.up_cycles.count(),
        m.asic_cycles.count(),
        m.total_cycles().count(),
        m.geq.cells(),
        num(m.icache_miss_ratio),
        num(m.dcache_miss_ratio),
    )
}

/// Serializes one Table-1 entry.
pub fn entry_to_json(e: &Table1Entry) -> String {
    format!(
        concat!(
            "{{\"app\":\"{}\",\"initial\":{},\"partitioned\":{},",
            "\"energy_saving_pct\":{},\"time_change_pct\":{}}}"
        ),
        esc(&e.app),
        metrics_to_json(&e.initial),
        e.partitioned
            .as_ref()
            .map(metrics_to_json)
            .unwrap_or_else(|| "null".to_owned()),
        e.saving_percent()
            .map(num)
            .unwrap_or_else(|| "null".to_owned()),
        e.time_change_percent()
            .map(num)
            .unwrap_or_else(|| "null".to_owned()),
    )
}

/// Serializes a whole table as a JSON array.
pub fn table1_to_json(t: &Table1) -> String {
    let rows: Vec<String> = t.entries().iter().map(entry_to_json).collect();
    format!("[{}]", rows.join(","))
}

/// Serializes the Figure-6 series.
pub fn figure6_to_json(points: &[Figure6Point]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"app\":\"{}\",\"energy_saving_pct\":{},\"time_change_pct\":{}}}",
                esc(&p.app),
                num(p.energy_saving),
                num(p.time_change),
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// Serializes a partitioning outcome (initial + optional best +
/// search statistics).
pub fn outcome_to_json(name: &str, outcome: &PartitionOutcome) -> String {
    let best = outcome
        .best
        .as_ref()
        .map(|(partition, detail)| {
            let clusters: Vec<String> =
                partition.clusters.iter().map(|c| c.0.to_string()).collect();
            format!(
                concat!(
                    "{{\"clusters\":[{}],\"set\":\"{}\",\"metrics\":{},",
                    "\"u_r\":{},\"u_up\":{},\"comm_words\":{}}}"
                ),
                clusters.join(","),
                esc(partition.set.name()),
                metrics_to_json(&detail.metrics),
                num(detail.u_r),
                num(detail.u_up),
                detail.comm_words,
            )
        })
        .unwrap_or_else(|| "null".to_owned());
    let s = &outcome.search;
    format!(
        concat!(
            "{{\"app\":\"{}\",\"initial\":{},\"best\":{},",
            "\"search\":{{\"candidates\":{},\"estimated\":{},",
            "\"rejected_by_utilization\":{},\"infeasible\":{},",
            "\"growth_steps\":{},\"verifications\":{},\"replayed\":{},",
            "\"batched_replays\":{},\"batch_shards\":{},",
            "\"cache_hits\":{},\"cache_misses\":{},",
            "\"estimate_nanos\":{},\"growth_nanos\":{},\"verify_nanos\":{}}}}}"
        ),
        esc(name),
        metrics_to_json(&outcome.initial),
        best,
        s.candidates,
        s.estimated,
        s.rejected_by_utilization,
        s.infeasible,
        s.growth_steps,
        s.verifications,
        s.replayed,
        s.batched_replays,
        s.batch_shards,
        s.cache_hits,
        s.cache_misses,
        s.estimate_nanos,
        s.growth_nanos,
        s.verify_nanos,
    )
}

/// Serializes an exploration sweep: every design point with its
/// Pareto-frontier membership.
pub fn exploration_to_json(ex: &Exploration) -> String {
    let frontier = ex.pareto_frontier();
    let rows: Vec<String> = ex
        .points
        .iter()
        .map(|p| {
            let on_frontier = frontier.iter().any(|f| std::ptr::eq(*f, p));
            format!(
                concat!(
                    "{{\"label\":\"{}\",\"energy_j\":{},\"cycles\":{},",
                    "\"geq_cells\":{},\"saving_pct\":{},\"initial\":{},",
                    "\"pareto\":{}}}"
                ),
                esc(&p.label),
                num(p.energy.joules()),
                p.cycles.count(),
                p.geq.cells(),
                num(p.saving_percent),
                p.is_initial,
                on_frontier,
            )
        })
        .collect();
    format!("{{\"points\":[{}]}}", rows.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::DesignPoint;
    use corepart_tech::units::{Cycles, Energy, GateEq};

    fn metrics() -> DesignMetrics {
        DesignMetrics {
            icache: Energy::from_microjoules(1.0),
            dcache: Energy::from_microjoules(2.0),
            mem: Energy::from_microjoules(3.0),
            bus: Energy::ZERO,
            up_core: Energy::from_microjoules(4.0),
            asic_core: Some(Energy::from_microjoules(5.0)),
            up_cycles: Cycles::new(100),
            asic_cycles: Cycles::new(50),
            geq: GateEq::new(1234),
            icache_miss_ratio: 0.0125,
            dcache_miss_ratio: 0.5,
        }
    }

    #[test]
    fn metrics_json_well_formed() {
        let j = metrics_to_json(&metrics());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"geq_cells\":1234"));
        assert!(j.contains("\"total_cycles\":150"));
        // 5 µJ in joules, however the constructor's float rounding and
        // Rust's float printer render it.
        let expected = format!("\"asic_core_j\":{}", Energy::from_microjoules(5.0).joules());
        assert!(j.contains(&expected), "{j}");
        // Balanced braces / quotes.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('"').count() % 2, 0);
    }

    #[test]
    fn null_asic_for_initial_design() {
        let mut m = metrics();
        m.asic_core = None;
        let j = metrics_to_json(&m);
        assert!(j.contains("\"asic_core_j\":null"));
    }

    #[test]
    fn entry_and_table_json() {
        let e = Table1Entry {
            app: "3d \"quoted\"".into(),
            initial: metrics(),
            partitioned: None,
        };
        let j = entry_to_json(&e);
        assert!(j.contains("3d \\\"quoted\\\""));
        assert!(j.contains("\"partitioned\":null"));
        let mut t = Table1::new();
        t.push(e);
        let tj = table1_to_json(&t);
        assert!(tj.starts_with('[') && tj.ends_with(']'));
    }

    #[test]
    fn figure6_json() {
        let pts = vec![Figure6Point {
            app: "mpg".into(),
            energy_saving: 43.2,
            time_change: -52.9,
        }];
        let j = figure6_to_json(&pts);
        assert!(j.contains("\"energy_saving_pct\":43.2"));
        assert!(j.contains("-52.9"));
    }

    #[test]
    fn escaping_control_chars() {
        assert_eq!(esc("a\nb"), "a\\nb");
        assert_eq!(esc("a\\b"), "a\\\\b");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn exploration_json_marks_frontier_membership() {
        let dominated = DesignPoint {
            label: "worse".into(),
            energy: Energy::from_microjoules(10.0),
            cycles: Cycles::new(200),
            geq: GateEq::new(5000),
            saving_percent: -5.0,
            is_initial: false,
        };
        let winner = DesignPoint {
            label: "better".into(),
            energy: Energy::from_microjoules(5.0),
            cycles: Cycles::new(100),
            geq: GateEq::new(1000),
            saving_percent: 50.0,
            is_initial: false,
        };
        let ex = Exploration {
            points: vec![dominated, winner],
        };
        let j = exploration_to_json(&ex);
        assert!(j.starts_with("{\"points\":[") && j.ends_with("]}"));
        assert!(j.contains("\"label\":\"worse\",") && j.contains("\"pareto\":false"));
        assert!(j.contains("\"label\":\"better\",") && j.contains("\"pareto\":true"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
