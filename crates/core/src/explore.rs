//! Systematic design-space exploration.
//!
//! §3.5 describes an interactive loop: "the designer will make use of
//! his/her interaction possibilities to provide the partitioning
//! algorithms with different parameters". This module automates that
//! loop: sweep any combination of knobs (resource sets, objective
//! balance, cache geometry), collect every verified design point, and
//! extract the energy/hardware/performance Pareto frontier a designer
//! would actually choose from.
//!
//! The sweep is engineered for breadth: every configuration opens one
//! [`Session`](crate::engine::Session) on a shared [`Engine`], whose compute-once artifact
//! pools make configurations that lower the application identically
//! share one preparation pass, configurations whose initial
//! (all-software) design is identical — e.g. a pure objective-factor
//! sweep — share one baseline simulation, and every configuration with
//! the same resource library share one schedule cache. The
//! per-configuration searches run in parallel
//! ([`crate::parallel::par_map`]) with results folded in configuration
//! order, so a sweep's points are bit-identical for any thread count.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use corepart_ir::cdfg::Application;
use corepart_ir::op::BlockId;
use corepart_tech::scaling::OperatingPoint;
use corepart_tech::units::{Cycles, Energy, GateEq, Seconds};

use crate::engine::Engine;
use crate::error::CorepartError;
use crate::parallel::par_map;
use crate::partition::Partitioner;
use crate::prepare::Workload;
use crate::system::{ResolvedPoint, SystemConfig};
use crate::verify::ReplayEngine;

/// One explored design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Human-readable description of the knob settings.
    pub label: String,
    /// Total system energy.
    pub energy: Energy,
    /// Total execution cycles.
    pub cycles: Cycles,
    /// Additional hardware.
    pub geq: GateEq,
    /// Energy saving vs the sweep's initial design, percent.
    pub saving_percent: f64,
    /// Whether this point is the all-software design.
    pub is_initial: bool,
}

impl DesignPoint {
    /// True when `self` dominates `other` (no worse on all three
    /// axes, strictly better on at least one).
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        let le = self.energy.joules() <= other.energy.joules()
            && self.cycles <= other.cycles
            && self.geq <= other.geq;
        let lt = self.energy.joules() < other.energy.joules()
            || self.cycles < other.cycles
            || self.geq < other.geq;
        le && lt
    }
}

/// Results of one exploration sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Exploration {
    /// Every evaluated point (including the initial design).
    pub points: Vec<DesignPoint>,
}

impl Exploration {
    /// The Pareto-optimal subset over (energy, cycles, hardware).
    ///
    /// Coincident points (identical on all three axes) are reported
    /// once, keeping the first label.
    ///
    /// Runs in `O(n log n)`: points are visited in (energy, cycles,
    /// hardware, input-order) order, so every point that could
    /// disqualify `p` — a dominator, or a coincident point earlier in
    /// the input — is visited before `p`. A cycles→hardware staircase
    /// (least hardware seen at any cycle count ≤ c, strictly
    /// decreasing) then answers "is some earlier point ≤ `p` on the
    /// remaining two axes" in one ordered-map probe; since earlier
    /// visits also mean energy ≤ `p.energy`, a positive probe is
    /// exactly a dominator or an earlier coincident point, matching
    /// the quadratic all-pairs scan this replaces.
    pub fn pareto_frontier(&self) -> Vec<&DesignPoint> {
        let mut order: Vec<usize> = (0..self.points.len()).collect();
        order.sort_by(|&a, &b| {
            let (pa, pb) = (&self.points[a], &self.points[b]);
            pa.energy
                .joules()
                .total_cmp(&pb.energy.joules())
                .then(pa.cycles.cmp(&pb.cycles))
                .then(pa.geq.cmp(&pb.geq))
                .then(a.cmp(&b))
        });

        let mut staircase: BTreeMap<Cycles, GateEq> = BTreeMap::new();
        let mut keep = vec![false; self.points.len()];
        for &i in &order {
            let p = &self.points[i];
            let covered = staircase
                .range(..=p.cycles)
                .next_back()
                .is_some_and(|(_, &geq)| geq <= p.geq);
            if covered {
                continue;
            }
            keep[i] = true;
            // Insert (cycles, geq) and evict the staircase steps it
            // obsoletes (same or more cycles, same or more hardware),
            // preserving the strictly-decreasing-hardware invariant.
            let obsolete: Vec<Cycles> = staircase
                .range(p.cycles..)
                .take_while(|(_, &geq)| geq >= p.geq)
                .map(|(&cycles, _)| cycles)
                .collect();
            for cycles in obsolete {
                staircase.remove(&cycles);
            }
            staircase.insert(p.cycles, p.geq);
        }
        self.points
            .iter()
            .enumerate()
            .filter_map(|(i, p)| keep[i].then_some(p))
            .collect()
    }

    /// The minimum-energy point.
    pub fn min_energy(&self) -> Option<&DesignPoint> {
        self.points
            .iter()
            .min_by(|a, b| a.energy.joules().total_cmp(&b.energy.joules()))
    }

    /// The minimum-cycles point.
    pub fn min_cycles(&self) -> Option<&DesignPoint> {
        self.points.iter().min_by_key(|p| p.cycles)
    }

    /// Renders the frontier as an aligned table.
    pub fn render_frontier(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>14} {:>12} {:>10} {:>9}\n",
            "design point", "energy", "cycles", "HW cells", "saving%"
        ));
        let mut frontier = self.pareto_frontier();
        frontier.sort_by(|a, b| a.energy.joules().total_cmp(&b.energy.joules()));
        for p in frontier {
            out.push_str(&format!(
                "{:<28} {:>14} {:>12} {:>10} {:>9.1}\n",
                p.label,
                format!("{}", p.energy),
                p.cycles.to_string(),
                p.geq.cells(),
                p.saving_percent,
            ));
        }
        out
    }
}

/// Explores an application over a family of configurations.
///
/// Each configuration is a `(label, SystemConfig)` pair; the sweep
/// opens one [`Session`](crate::engine::Session) per configuration on
/// a single shared [`Engine`] and partitions under each one, recording
/// the chosen design (or the initial design when no partition wins).
/// The initial design of the *first* configuration is included as the
/// baseline point.
///
/// Preparation, the baseline simulation, and the schedule cache are
/// shared across configurations wherever their stage fingerprints
/// allow (see [`crate::engine`]), and the searches run in parallel;
/// the resulting points are identical to running each configuration
/// from scratch, sequentially.
///
/// # Errors
///
/// Propagates preparation/simulation failures; configurations whose
/// search finds nothing contribute their initial design instead.
pub fn explore(
    app: &Application,
    workload: &Workload,
    configs: &[(String, SystemConfig)],
) -> Result<Exploration, CorepartError> {
    if configs.is_empty() {
        return Err(CorepartError::Config {
            message: "exploration needs at least one configuration".into(),
        });
    }
    let engine = Engine::new(configs[0].1.clone())?;
    explore_in(&engine, app, workload, configs)
}

/// Like [`explore`], but running the sweep against a caller-supplied
/// [`Engine`] instead of a private one — every artifact the sweep
/// resolves lands in (and is served from) that engine's pools. The
/// serve-mode artifact store uses this so repeated explorations of the
/// same application skip preparation and the baseline simulation.
///
/// # Errors
///
/// As [`explore`].
pub fn explore_in(
    engine: &Engine,
    app: &Application,
    workload: &Workload,
    configs: &[(String, SystemConfig)],
) -> Result<Exploration, CorepartError> {
    if configs.is_empty() {
        return Err(CorepartError::Config {
            message: "exploration needs at least one configuration".into(),
        });
    }

    // One engine, one session per configuration. Opening sessions is
    // free; the compute-once pools resolve each distinct artifact
    // exactly once even though the workers race for them.
    let mut sessions = Vec::with_capacity(configs.len());
    for (_, config) in configs {
        sessions.push(engine.session_with_config(app, workload, config.clone())?);
    }

    // Phase 1: one *search* per configuration — pre-selection,
    // estimate grid, greedy growth, no verification — in parallel,
    // folded back in configuration order.
    let phases = par_map(&sessions, engine.threads(), |_, session| {
        let partitioner = Partitioner::new(session)?;
        let phase = partitioner.search()?;
        Ok::<_, CorepartError>((partitioner, phase))
    });

    // Phase 2: verify every configuration's winner through the
    // batched replay kernel — one walk of the decoded trace per
    // shared replay engine, however many configurations share it (a
    // factor sweep shares one baseline, so its K winners cost one
    // decode + one K-lane walk instead of K streaming replays).
    // Verification *results* are published through each engine's memo;
    // batch errors are dropped here because each configuration's
    // `finish` below reproduces its own error through the normal
    // evaluation path, in configuration order.
    // One entry per shared replay engine: the engine, any member
    // configuration, and every member's winning hardware-block set.
    type WinnerGroup<'a> = (
        &'a Arc<ReplayEngine>,
        &'a SystemConfig,
        Vec<HashSet<BlockId>>,
    );
    let mut groups: Vec<WinnerGroup> = Vec::new();
    for (partitioner, phase) in phases.iter().filter_map(|r| r.as_ref().ok()) {
        let (Some(best), Some(replay)) = (phase.best(), partitioner.replay_engine()) else {
            continue;
        };
        let set = partitioner.hw_set_of(&best.partition);
        // Sessions share a replay engine only when their baseline
        // fingerprints agree, which covers every configuration field
        // the replay consumes — any group member's config verifies
        // every member's winner identically.
        match groups.iter_mut().find(|(e, _, _)| Arc::ptr_eq(e, replay)) {
            Some((_, _, sets)) => sets.push(set),
            None => groups.push((replay, partitioner.config(), vec![set])),
        }
    }
    for (replay, config, sets) in groups {
        let _ = replay.verify_batch_with(
            config,
            &sets,
            crate::verify::BatchOptions::threaded(engine.threads()),
        );
    }

    // Phase 3: close each search (a memo hit when phase 2 pre-seeded
    // the winner) and assemble the points, both in configuration
    // order — errors surface per configuration exactly as the
    // sequential one-run-per-config loop raised them.
    let first_initial = &sessions[0].baseline()?.metrics;
    let base = first_initial.total_energy();
    let mut points = Vec::with_capacity(configs.len() + 1);
    points.push(DesignPoint {
        label: "initial (all software)".into(),
        energy: first_initial.total_energy(),
        cycles: first_initial.total_cycles(),
        geq: GateEq::ZERO,
        saving_percent: 0.0,
        is_initial: true,
    });
    for ((label, _), result) in configs.iter().zip(phases) {
        let (partitioner, phase) = result?;
        let outcome = partitioner.finish(phase)?;
        let (energy, cycles, geq) = match &outcome.best {
            Some((_, detail)) => (
                detail.metrics.total_energy(),
                detail.metrics.total_cycles(),
                detail.metrics.geq,
            ),
            None => (
                outcome.initial.total_energy(),
                outcome.initial.total_cycles(),
                GateEq::ZERO,
            ),
        };
        points.push(DesignPoint {
            label: label.clone(),
            energy,
            cycles,
            geq,
            saving_percent: energy.percent_saving(base).unwrap_or(0.0),
            is_initial: false,
        });
    }
    Ok(Exploration { points })
}

/// One base design point re-weighed to one operating point — an entry
/// of a (partition × resource set × node × vdd) sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct NodePoint {
    /// `"<base label> @ <node>nm@<vdd>V"`.
    pub label: String,
    /// Technology node in nanometres.
    pub node_nm: u32,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Label of the base design point this entry re-weighs.
    pub base_label: String,
    /// Total system energy at the operating point.
    pub energy: Energy,
    /// Total execution wall time at the operating point.
    pub time: Seconds,
    /// ASIC hardware effort in fractional gate-equivalent cells.
    pub area_cells: f64,
    /// Whether the base point is the all-software design.
    pub is_initial: bool,
}

/// Results of a node×vdd sweep: the base exploration (simulated once,
/// at the base process) and its points re-weighed to every requested
/// operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeExploration {
    /// The base-process exploration the weighting pass consumed.
    pub base: Exploration,
    /// Every (base point × operating point) entry, grouped by node,
    /// then descending vdd, then base-point order.
    pub points: Vec<NodePoint>,
}

/// Total order on `f64` for the frontier staircase (`total_cmp`).
#[derive(PartialEq)]
struct F64Key(f64);

impl Eq for F64Key {}

impl PartialOrd for F64Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl NodeExploration {
    /// The Pareto-optimal subset over (energy, time, area) — the same
    /// `O(n log n)` energy-sorted time→area staircase as
    /// [`Exploration::pareto_frontier`], on real-valued axes.
    pub fn pareto_frontier(&self) -> Vec<&NodePoint> {
        let mut order: Vec<usize> = (0..self.points.len()).collect();
        order.sort_by(|&a, &b| {
            let (pa, pb) = (&self.points[a], &self.points[b]);
            pa.energy
                .joules()
                .total_cmp(&pb.energy.joules())
                .then(pa.time.secs().total_cmp(&pb.time.secs()))
                .then(pa.area_cells.total_cmp(&pb.area_cells))
                .then(a.cmp(&b))
        });

        let mut staircase: BTreeMap<F64Key, f64> = BTreeMap::new();
        let mut keep = vec![false; self.points.len()];
        for &i in &order {
            let p = &self.points[i];
            let covered = staircase
                .range(..=F64Key(p.time.secs()))
                .next_back()
                .is_some_and(|(_, &area)| area <= p.area_cells);
            if covered {
                continue;
            }
            keep[i] = true;
            let obsolete: Vec<f64> = staircase
                .range(F64Key(p.time.secs())..)
                .take_while(|(_, &area)| area >= p.area_cells)
                .map(|(k, _)| k.0)
                .collect();
            for time in obsolete {
                staircase.remove(&F64Key(time));
            }
            staircase.insert(F64Key(p.time.secs()), p.area_cells);
        }
        self.points
            .iter()
            .enumerate()
            .filter_map(|(i, p)| keep[i].then_some(p))
            .collect()
    }

    /// The minimum-energy point across all operating points.
    pub fn min_energy(&self) -> Option<&NodePoint> {
        self.points
            .iter()
            .min_by(|a, b| a.energy.joules().total_cmp(&b.energy.joules()))
    }

    /// Renders the 3D frontier as an aligned table.
    pub fn render_frontier(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>14} {:>12} {:>12}\n",
            "design point", "energy", "time", "HW cells"
        ));
        let mut frontier = self.pareto_frontier();
        frontier.sort_by(|a, b| a.energy.joules().total_cmp(&b.energy.joules()));
        for p in frontier {
            out.push_str(&format!(
                "{:<44} {:>14} {:>12} {:>12.1}\n",
                p.label,
                format!("{}", p.energy),
                format!("{}", p.time),
                p.area_cells,
            ));
        }
        out
    }
}

/// Explores an application over configurations × nodes × vdd points.
///
/// The (partition × resource set) axes cost one [`explore`] sweep at
/// the base process; the (node × vdd) axes are a pure weighting pass
/// over the resulting counts ([`ResolvedPoint::weigh_raw`]) — no
/// further simulation or replay. Each node contributes `vdd_steps`
/// supplies descending from its nominal to its sweep floor
/// (`vdd_steps == 1` → nominal only).
///
/// # Errors
///
/// As [`explore`], plus [`CorepartError::Config`] when `nodes` is empty
/// or names a node absent from the base configuration's scaling table.
pub fn explore_nodes(
    app: &Application,
    workload: &Workload,
    configs: &[(String, SystemConfig)],
    nodes: &[u32],
    vdd_steps: usize,
) -> Result<NodeExploration, CorepartError> {
    if configs.is_empty() {
        return Err(CorepartError::Config {
            message: "exploration needs at least one configuration".into(),
        });
    }
    let engine = Engine::new(configs[0].1.clone())?;
    explore_nodes_in(&engine, app, workload, configs, nodes, vdd_steps)
}

/// Like [`explore_nodes`], against a caller-supplied [`Engine`].
///
/// # Errors
///
/// As [`explore_nodes`].
pub fn explore_nodes_in(
    engine: &Engine,
    app: &Application,
    workload: &Workload,
    configs: &[(String, SystemConfig)],
    nodes: &[u32],
    vdd_steps: usize,
) -> Result<NodeExploration, CorepartError> {
    if nodes.is_empty() {
        return Err(CorepartError::Config {
            message: "node sweep needs at least one technology node".into(),
        });
    }
    let base_cfg = &configs[0].1;
    // Resolve every operating point up front so an unknown node or an
    // unusable range fails before any simulation work.
    let mut resolved: Vec<ResolvedPoint> = Vec::new();
    for &node_nm in nodes {
        let row = base_cfg
            .scaling
            .row(node_nm)
            .ok_or_else(|| CorepartError::Config {
                message: format!(
                    "unknown technology node {node_nm}nm (known: {})",
                    base_cfg
                        .scaling
                        .nodes()
                        .iter()
                        .map(|n| n.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            })?;
        for vdd in row.vdd_sweep(&base_cfg.process, vdd_steps) {
            let point = OperatingPoint { node_nm, vdd };
            let weights = base_cfg
                .scaling
                .weights(&base_cfg.process, &point)
                .map_err(|e| CorepartError::Config {
                    message: e.to_string(),
                })?;
            resolved.push(ResolvedPoint {
                point,
                weights,
                base_period: base_cfg.process.clock_period(),
            });
        }
    }

    // One simulated exploration; everything after is arithmetic.
    let base = explore_in(engine, app, workload, configs)?;
    let mut points = Vec::with_capacity(resolved.len() * base.points.len());
    for rp in &resolved {
        for bp in &base.points {
            let w = rp.weigh_raw(bp.energy, bp.cycles, bp.geq);
            points.push(NodePoint {
                label: format!("{} @ {}", bp.label, rp.point),
                node_nm: rp.point.node_nm,
                vdd: rp.point.vdd,
                base_label: bp.label.clone(),
                energy: w.energy,
                time: w.time,
                area_cells: w.area_cells,
                is_initial: bp.is_initial,
            });
        }
    }
    Ok(NodeExploration { base, points })
}

/// Convenience: the standard sweep over objective hardware weights.
pub fn hardware_weight_sweep(weights: &[f64], base: &SystemConfig) -> Vec<(String, SystemConfig)> {
    weights
        .iter()
        .map(|&g| {
            (
                format!("G = {g}"),
                base.clone().with_factors(base.factor_f, g),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;

    const SRC: &str = r#"app explore; var x[96]; var y[96];
        func main() {
            for (var i = 1; i < 95; i = i + 1) {
                y[i] = x[i] * 7 + (x[i - 1] >> 2);
            }
            return y[40];
        }"#;

    fn app() -> Application {
        lower(&parse(SRC).unwrap()).unwrap()
    }

    fn workload() -> Workload {
        Workload::from_arrays([("x", (0..96).collect::<Vec<i64>>())])
    }

    #[test]
    fn sweep_produces_points_and_frontier() {
        let configs = hardware_weight_sweep(&[0.0, 0.2, 2.0], &SystemConfig::new());
        let ex = explore(&app(), &workload(), &configs).expect("sweep runs");
        // initial + 3 sweep points.
        assert_eq!(ex.points.len(), 4);
        let frontier = ex.pareto_frontier();
        assert!(!frontier.is_empty());
        // The minimum-energy point must be on the frontier.
        let min_e = ex.min_energy().expect("non-empty");
        assert!(frontier.iter().any(|p| p.label == min_e.label));
        // The initial point is dominated by a successful partition.
        assert!(ex
            .points
            .iter()
            .any(|p| !p.is_initial && p.energy < ex.points[0].energy));
        let text = ex.render_frontier();
        assert!(text.contains("design point"));
    }

    #[test]
    fn domination_is_strict_partial_order() {
        let a = DesignPoint {
            label: "a".into(),
            energy: Energy::from_microjoules(10.0),
            cycles: Cycles::new(100),
            geq: GateEq::new(0),
            saving_percent: 0.0,
            is_initial: false,
        };
        let b = DesignPoint {
            label: "b".into(),
            energy: Energy::from_microjoules(5.0),
            cycles: Cycles::new(100),
            geq: GateEq::new(0),
            saving_percent: 50.0,
            is_initial: false,
        };
        assert!(b.dominates(&a));
        assert!(!a.dominates(&b));
        assert!(!a.dominates(&a), "irreflexive");
        // Incomparable pair: trade energy for cycles.
        let c = DesignPoint {
            label: "c".into(),
            energy: Energy::from_microjoules(7.0),
            cycles: Cycles::new(50),
            geq: GateEq::new(500),
            saving_percent: 30.0,
            is_initial: false,
        };
        assert!(!b.dominates(&c) && !c.dominates(&b));
    }

    #[test]
    fn empty_config_list_rejected() {
        assert!(explore(&app(), &workload(), &[]).is_err());
    }

    #[test]
    fn node_sweep_reweighs_base_points() {
        let configs = hardware_weight_sweep(&[0.2, 2.0], &SystemConfig::new());
        let nx = explore_nodes(&app(), &workload(), &configs, &[800, 180], 2).expect("sweep runs");
        // 2 nodes x 2 vdd steps x (initial + 2 base points).
        assert_eq!(nx.points.len(), 2 * 2 * nx.base.points.len());
        // Native-point entries reproduce the base exploration bit-exactly.
        let process = SystemConfig::new().process;
        for (np, bp) in nx
            .points
            .iter()
            .filter(|p| p.node_nm == 800 && p.vdd == 5.0)
            .zip(&nx.base.points)
        {
            assert_eq!(np.base_label, bp.label);
            assert_eq!(np.energy.joules().to_bits(), bp.energy.joules().to_bits());
            let native_secs = bp.cycles.count() as f64 * process.clock_period().secs();
            assert_eq!(np.time.secs().to_bits(), native_secs.to_bits());
        }
        // The 3D frontier exists and holds the global energy minimum,
        // which at these factors lives on the smaller node.
        let frontier = nx.pareto_frontier();
        assert!(!frontier.is_empty());
        let min_e = nx.min_energy().expect("non-empty");
        assert_eq!(min_e.node_nm, 180);
        assert!(frontier
            .iter()
            .any(|p| p.label == min_e.label && p.vdd == min_e.vdd));
        let text = nx.render_frontier();
        assert!(text.contains("design point"), "{text}");
    }

    #[test]
    fn node_sweep_rejects_unknown_node_and_empty_list() {
        let configs = hardware_weight_sweep(&[0.2], &SystemConfig::new());
        let err = explore_nodes(&app(), &workload(), &configs, &[123], 2).unwrap_err();
        assert!(err.to_string().contains("unknown technology node 123"));
        assert!(explore_nodes(&app(), &workload(), &configs, &[], 2).is_err());
    }

    #[test]
    fn min_accessors() {
        let configs = hardware_weight_sweep(&[0.2], &SystemConfig::new());
        let ex = explore(&app(), &workload(), &configs).expect("sweep runs");
        assert!(ex.min_energy().is_some());
        assert!(ex.min_cycles().is_some());
    }
}
