//! A library of classic DSP micro-kernels.
//!
//! Beyond the six paper applications, these parameterized kernels give
//! exploration examples and benchmarks a spectrum of computational
//! signatures: MAC-bound (`fir`, `dot_product`, `matmul`), recurrence-
//! bound (`iir`), shift/logic-bound (`crc32`), control-bound
//! (`histogram`), and butterfly-structured (`fft_stage`). Each source
//! is generated for a requested size, so scaling studies are one call
//! away.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated kernel: source text plus its input arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name (also the DSL `app` name).
    pub name: String,
    /// Behavioral source text.
    pub source: String,
    /// Seeded input arrays.
    pub arrays: Vec<(String, Vec<i64>)>,
}

fn rng_vec(rng: &mut StdRng, n: usize, lo: i64, hi: i64) -> Vec<i64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// `y[i] = Σ_k h[k]·x[i−k]` — the MAC workhorse.
///
/// # Panics
///
/// Panics if `taps` is 0 or `n <= taps`.
pub fn fir(n: usize, taps: usize, seed: u64) -> Kernel {
    assert!(taps > 0 && n > taps, "need n > taps > 0");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = String::new();
    for k in 0..taps {
        if k > 0 {
            acc.push_str(" + ");
        }
        acc.push_str(&format!("x[i - {k}] * h[{k}]"));
    }
    let source = format!(
        r#"app fir;
var x[{n}];
var h[{taps}];
var y[{n}];
func main() {{
    for (var i = {taps}; i < {n}; i = i + 1) {{
        y[i] = ({acc}) >> 6;
    }}
    return y[{n} - 1];
}}"#
    );
    Kernel {
        name: "fir".into(),
        source,
        arrays: vec![
            ("x".into(), rng_vec(&mut rng, n, -128, 128)),
            ("h".into(), rng_vec(&mut rng, taps, 1, 32)),
        ],
    }
}

/// `acc = Σ a[i]·b[i]`.
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn dot_product(n: usize, seed: u64) -> Kernel {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let source = format!(
        r#"app dot;
var a[{n}];
var b[{n}];
func main() {{
    var acc = 0;
    for (var i = 0; i < {n}; i = i + 1) {{
        acc = acc + a[i] * b[i];
    }}
    return acc;
}}"#
    );
    Kernel {
        name: "dot".into(),
        source,
        arrays: vec![
            ("a".into(), rng_vec(&mut rng, n, -64, 64)),
            ("b".into(), rng_vec(&mut rng, n, -64, 64)),
        ],
    }
}

/// `C = A·B` over `n×n` matrices (row-major).
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn matmul(n: usize, seed: u64) -> Kernel {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let nn = n * n;
    let source = format!(
        r#"app matmul;
var a[{nn}];
var b[{nn}];
var c[{nn}];
func main() {{
    for (var i = 0; i < {n}; i = i + 1) {{
        for (var j = 0; j < {n}; j = j + 1) {{
            var acc = 0;
            for (var k = 0; k < {n}; k = k + 1) {{
                acc = acc + a[i * {n} + k] * b[k * {n} + j];
            }}
            c[i * {n} + j] = acc;
        }}
    }}
    return c[0];
}}"#
    );
    Kernel {
        name: "matmul".into(),
        source,
        arrays: vec![
            ("a".into(), rng_vec(&mut rng, nn, -16, 16)),
            ("b".into(), rng_vec(&mut rng, nn, -16, 16)),
        ],
    }
}

/// A second-order IIR (biquad) recurrence — serial by construction.
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn iir(n: usize, seed: u64) -> Kernel {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let source = format!(
        r#"app iir;
var x[{n}];
var y[{n}];
func main() {{
    var z1 = 0;
    var z2 = 0;
    for (var i = 0; i < {n}; i = i + 1) {{
        var v = x[i];
        var o = (v * 1229 + z1) >> 12;
        z1 = (v * 2458 + z2) - o * 1843;
        z2 = v * 1229 - o * 717;
        y[i] = o;
    }}
    return y[{n} - 1];
}}"#
    );
    Kernel {
        name: "iir".into(),
        source,
        arrays: vec![("x".into(), rng_vec(&mut rng, n, -2048, 2048))],
    }
}

/// Bitwise CRC-32 over a message — shift/xor bound, no multiplies.
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn crc32(n: usize, seed: u64) -> Kernel {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let source = format!(
        r#"app crc;
var msg[{n}];
func main() {{
    var crc = 0xFFFF;
    for (var i = 0; i < {n}; i = i + 1) {{
        crc = crc ^ (msg[i] & 255);
        for (var b = 0; b < 8; b = b + 1) {{
            var lsb = crc & 1;
            crc = crc >> 1;
            if (lsb != 0) {{
                crc = crc ^ 0xA001;
            }}
        }}
    }}
    return crc;
}}"#
    );
    Kernel {
        name: "crc".into(),
        source,
        arrays: vec![("msg".into(), rng_vec(&mut rng, n, 0, 256))],
    }
}

/// A 256-bin histogram — data-dependent stores, control-bound.
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn histogram(n: usize, seed: u64) -> Kernel {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let source = format!(
        r#"app hist;
var pixels[{n}];
var bins[256];
func main() {{
    for (var i = 0; i < {n}; i = i + 1) {{
        var v = pixels[i] & 255;
        bins[v] = bins[v] + 1;
    }}
    var peak = 0;
    for (var b = 0; b < 256; b = b + 1) {{
        if (bins[b] > peak) {{
            peak = bins[b];
        }}
    }}
    return peak;
}}"#
    );
    Kernel {
        name: "hist".into(),
        source,
        arrays: vec![("pixels".into(), rng_vec(&mut rng, n, 0, 256))],
    }
}

/// One radix-2 FFT butterfly stage over `n` complex points
/// (interleaved re/im, fixed-point twiddles).
///
/// # Panics
///
/// Panics unless `n` is a power of two ≥ 4.
pub fn fft_stage(n: usize, seed: u64) -> Kernel {
    assert!(
        n.is_power_of_two() && n >= 4,
        "n must be a power of two >= 4"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let half = n / 2;
    let source = format!(
        r#"app fft;
var re[{n}];
var im[{n}];
var wr[{half}];
var wi[{half}];
func main() {{
    for (var k = 0; k < {half}; k = k + 1) {{
        var tr = (re[k + {half}] * wr[k] - im[k + {half}] * wi[k]) >> 10;
        var ti = (re[k + {half}] * wi[k] + im[k + {half}] * wr[k]) >> 10;
        var ar = re[k];
        var ai = im[k];
        re[k] = ar + tr;
        im[k] = ai + ti;
        re[k + {half}] = ar - tr;
        im[k + {half}] = ai - ti;
    }}
    return re[0] + im[0];
}}"#
    );
    Kernel {
        name: "fft".into(),
        source,
        arrays: vec![
            ("re".into(), rng_vec(&mut rng, n, -512, 512)),
            ("im".into(), rng_vec(&mut rng, n, -512, 512)),
            ("wr".into(), rng_vec(&mut rng, half, -1024, 1024)),
            ("wi".into(), rng_vec(&mut rng, half, -1024, 1024)),
        ],
    }
}

/// All kernels at moderate default sizes (for sweeps and benches).
pub fn default_suite(seed: u64) -> Vec<Kernel> {
    vec![
        fir(128, 8, seed),
        dot_product(256, seed),
        matmul(12, seed),
        iir(256, seed),
        crc32(64, seed),
        histogram(512, seed),
        fft_stage(64, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use corepart_ir::interp::Interpreter;
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;

    fn run(k: &Kernel) -> i64 {
        let app = lower(&parse(&k.source).unwrap_or_else(|e| panic!("{}: {e}", k.name)))
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        let mut interp = Interpreter::new(&app);
        for (name, data) in &k.arrays {
            interp.set_array(name, data).unwrap();
        }
        interp
            .run(100_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name))
            .return_value
            .unwrap_or_else(|| panic!("{} returned nothing", k.name))
    }

    #[test]
    fn all_default_kernels_run() {
        for k in default_suite(5) {
            let _ = run(&k);
        }
    }

    #[test]
    fn dot_product_matches_reference() {
        let k = dot_product(64, 9);
        let expect: i64 = k.arrays[0]
            .1
            .iter()
            .zip(&k.arrays[1].1)
            .map(|(a, b)| a * b)
            .sum();
        assert_eq!(run(&k), expect);
    }

    #[test]
    fn matmul_matches_reference() {
        let n = 6;
        let k = matmul(n, 11);
        let a = &k.arrays[0].1;
        let b = &k.arrays[1].1;
        let mut c00 = 0i64;
        for t in 0..n {
            c00 += a[t] * b[t * n];
        }
        assert_eq!(run(&k), c00);
    }

    #[test]
    fn crc_matches_reference() {
        let k = crc32(32, 13);
        let msg = &k.arrays[0].1;
        let mut crc: i64 = 0xFFFF;
        for &byte in msg {
            crc ^= byte & 255;
            for _ in 0..8 {
                let lsb = crc & 1;
                crc >>= 1;
                if lsb != 0 {
                    crc ^= 0xA001;
                }
            }
        }
        assert_eq!(run(&k), crc);
    }

    #[test]
    fn histogram_peak_matches_reference() {
        let k = histogram(200, 17);
        let mut bins = [0i64; 256];
        for &p in &k.arrays[0].1 {
            bins[(p & 255) as usize] += 1;
        }
        assert_eq!(run(&k), *bins.iter().max().expect("non-empty"));
    }

    #[test]
    fn kernels_deterministic_per_seed() {
        assert_eq!(fir(64, 4, 3), fir(64, 4, 3));
        assert_ne!(
            dot_product(64, 3).arrays,
            dot_product(64, 4).arrays,
            "different seeds should differ"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let _ = fft_stage(12, 1);
    }

    #[test]
    fn kernels_partition_sensibly() {
        // The MAC-bound kernels should find partitions; run the full
        // flow on a small FIR as a smoke check.
        use corepart::flow::DesignFlow;
        use corepart::prepare::Workload;
        let k = fir(96, 6, 21);
        let result = DesignFlow::new()
            .run_source(&k.source, Workload::from_arrays(k.arrays.clone()))
            .expect("flow runs");
        assert!(result.outcome.best.is_some(), "FIR must partition");
    }
}
