//! # corepart-bench
//!
//! Experiment-regeneration harness for the `corepart` reproduction of
//! Henkel's DAC'99 low-power partitioning paper.
//!
//! Each binary regenerates one artifact of the paper's evaluation
//! (see DESIGN.md's experiment index):
//!
//! | binary                 | artifact |
//! |------------------------|----------|
//! | `table1`               | Table 1 — per-application energy/time breakdown |
//! | `fig6`                 | Figure 6 — savings / time-change bar series |
//! | `ablation_weighted_ur` | §3.4 note — GEQ-weighted vs uniform `U_R` |
//! | `ablation_preselect`   | §3.2 — pre-selection budget `N_max` sweep |
//! | `ablation_factor_f`    | §3.2/§4 — objective-function factor sweep |
//! | `ablation_cache_adapt` | §1 — cache re-tuning after partitioning |
//! | `baseline_perf`        | §2 — performance-driven partitioning baseline |
//! | `ablation_scheduler`   | extension A6 — list vs force-directed scheduling |
//! | `ablation_voltage`     | extension E1 — node × vdd re-weighting of the chosen partition |
//! | `kernel_sweep`         | extension E2 — DSP micro-kernel suite |
//! | `ablation_multicore`   | extension E3 — multi-ASIC-core split |
//! | `ablation_chaining`    | extension E4 — operator chaining |
//! | `ablation_compiler`    | extension E5 — software-compiler quality |
//!
//! The `criterion` benches (`benches/`) measure the algorithms
//! themselves (list scheduling, binding, the partition loop, cache
//! simulation).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use corepart::flow::{DesignFlow, FlowResult};
use corepart::prepare::Workload;
use corepart::system::SystemConfig;
use corepart_workloads::{all, PaperWorkload};

/// The deterministic input seed every experiment uses.
pub const SEED: u64 = 1;

/// Runs the full design flow on one paper workload.
///
/// # Panics
///
/// Panics when the bundled workload fails to simulate — that is a bug,
/// not an input condition.
pub fn run_workload(w: &PaperWorkload, config: &SystemConfig) -> FlowResult {
    let app = w.app().unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let workload = Workload::from_arrays(w.arrays(SEED));
    let mut result = DesignFlow::with_config(config.clone())
        .run_app(app, workload)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    // Report under the paper's row label rather than the DSL app name.
    result.app_name = w.name.to_owned();
    result
}

/// Runs the full design flow on all six applications.
pub fn run_all(config: &SystemConfig) -> Vec<FlowResult> {
    all().iter().map(|w| run_workload(w, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_smallest_app() {
        let w = corepart_workloads::by_name("engine").expect("engine");
        let result = run_workload(&w, &SystemConfig::new());
        assert_eq!(result.app_name, "engine");
        assert!(result.outcome.initial.total_energy().joules() > 0.0);
    }
}
