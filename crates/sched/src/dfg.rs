//! Data-flow graph extraction for scheduling.
//!
//! Each basic block of a cluster becomes one DFG: nodes are the block's
//! instructions, edges are intra-block def→use dependencies plus memory
//! ordering (stores serialize against loads/stores of the same array).
//! The list scheduler consumes these graphs block by block; the ASIC
//! datapath executes one block's schedule per control-flow step, exactly
//! like an HLS controller FSM.

use std::collections::HashMap;

use corepart_ir::cdfg::Application;
use corepart_ir::op::{BinOp, BlockId, Inst, UnOp};
use corepart_tech::resource::OpClass;

/// Maps an IR instruction to the resource class that executes it.
pub fn op_class_of(inst: &Inst) -> OpClass {
    match inst {
        Inst::Const { .. } | Inst::Copy { .. } => OpClass::Move,
        Inst::Unary { op, .. } => match op {
            UnOp::Neg => OpClass::AddSub,
            UnOp::Not => OpClass::Compare,
            UnOp::BitNot => OpClass::Logic,
        },
        Inst::Binary { op, .. } => match op {
            BinOp::Add | BinOp::Sub => OpClass::AddSub,
            BinOp::Mul => OpClass::Multiply,
            BinOp::Div | BinOp::Rem => OpClass::Divide,
            BinOp::And | BinOp::Or | BinOp::Xor => OpClass::Logic,
            BinOp::Shl | BinOp::Shr => OpClass::Shift,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                OpClass::Compare
            }
        },
        Inst::Load { .. } | Inst::Store { .. } => OpClass::MemAccess,
        Inst::Call { .. } => OpClass::Move,
    }
}

/// The data-flow graph of one basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockDfg {
    /// The block this DFG describes.
    pub block: BlockId,
    /// Operation class of each instruction.
    pub classes: Vec<OpClass>,
    /// `preds[i]` = indices of instructions that must complete before
    /// instruction `i` starts.
    pub preds: Vec<Vec<usize>>,
    /// `succs[i]` = reverse edges.
    pub succs: Vec<Vec<usize>>,
}

impl BlockDfg {
    /// Builds the DFG of `block` in `app`.
    pub fn build(app: &Application, block: BlockId) -> Self {
        let insts = &app.block(block).insts;
        let n = insts.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];

        // def→use edges via last-writer tracking.
        let mut last_def: HashMap<corepart_ir::op::VarId, usize> = HashMap::new();
        // Memory ordering per array: last store + loads since.
        let mut last_store: HashMap<corepart_ir::op::ArrayId, usize> = HashMap::new();
        let mut loads_since: HashMap<corepart_ir::op::ArrayId, Vec<usize>> = HashMap::new();

        for (i, inst) in insts.iter().enumerate() {
            for u in inst.uses() {
                if let Some(&d) = last_def.get(&u) {
                    if !preds[i].contains(&d) {
                        preds[i].push(d);
                    }
                }
            }
            if let Some(a) = inst.array_use() {
                if let Some(&s) = last_store.get(&a) {
                    if !preds[i].contains(&s) {
                        preds[i].push(s);
                    }
                }
                loads_since.entry(a).or_default().push(i);
            }
            if let Some(a) = inst.array_def() {
                if let Some(&s) = last_store.get(&a) {
                    if !preds[i].contains(&s) {
                        preds[i].push(s);
                    }
                }
                for &l in loads_since.get(&a).into_iter().flatten() {
                    if l != i && !preds[i].contains(&l) {
                        preds[i].push(l);
                    }
                }
                loads_since.insert(a, Vec::new());
                last_store.insert(a, i);
            }
            if let Some(d) = inst.def() {
                last_def.insert(d, i);
            }
        }

        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, ps) in preds.iter().enumerate() {
            for &p in ps {
                succs[p].push(i);
            }
        }

        BlockDfg {
            block,
            classes: insts.iter().map(op_class_of).collect(),
            preds,
            succs,
        }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True for an empty block.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Indices in a valid topological order (instructions are already
    /// topological because edges only point forward).
    pub fn topo_order(&self) -> Vec<usize> {
        (0..self.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;

    fn first_nonempty_dfg(src: &str) -> (Application, BlockId) {
        let app = lower(&parse(src).unwrap()).unwrap();
        let bid = (0..app.blocks().len() as u32)
            .map(BlockId)
            .find(|&b| !app.block(b).insts.is_empty())
            .expect("nonempty block");
        (app, bid)
    }

    #[test]
    fn def_use_edges() {
        let (app, b) =
            first_nonempty_dfg("app t; var g = 0; func main() { var x = 1 + 2; g = x * 3; }");
        let dfg = BlockDfg::build(&app, b);
        // Find the Mul node; it must depend on something.
        let mul = dfg
            .classes
            .iter()
            .position(|&c| c == OpClass::Multiply)
            .expect("mul op");
        assert!(!dfg.preds[mul].is_empty());
    }

    #[test]
    fn independent_ops_have_no_edges() {
        let (app, b) = first_nonempty_dfg(
            "app t; var g = 0; var h = 0; var p = 3; var q = 4; func main() { g = p + 1; h = q + 2; }",
        );
        let dfg = BlockDfg::build(&app, b);
        let adds: Vec<usize> = dfg
            .classes
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == OpClass::AddSub)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(adds.len(), 2);
        assert!(!dfg.preds[adds[1]].contains(&adds[0]));
    }

    #[test]
    fn store_load_ordering() {
        let (app, b) = first_nonempty_dfg(
            "app t; var a[4]; func main() { a[0] = 5; var x = a[0]; a[1] = x; }",
        );
        let dfg = BlockDfg::build(&app, b);
        let mems: Vec<usize> = dfg
            .classes
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == OpClass::MemAccess)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(mems.len(), 3);
        // load (2nd mem op) depends on the first store.
        assert!(dfg.preds[mems[1]].contains(&mems[0]));
        // second store depends on the load's value chainwise.
        assert!(!dfg.preds[mems[2]].is_empty());
    }

    #[test]
    fn classes_mapped() {
        let (app, b) =
            first_nonempty_dfg("app t; var g = 2; func main() { g = (g * 3) / (g + 1) << 2; }");
        let dfg = BlockDfg::build(&app, b);
        assert!(dfg.classes.contains(&OpClass::Multiply));
        assert!(dfg.classes.contains(&OpClass::Divide));
        assert!(dfg.classes.contains(&OpClass::AddSub));
        assert!(dfg.classes.contains(&OpClass::Shift));
    }

    #[test]
    fn comparison_maps_to_compare() {
        use corepart_ir::op::{Operand, VarId};
        let i = Inst::Binary {
            dst: VarId(0),
            op: BinOp::Lt,
            lhs: Operand::Var(VarId(1)),
            rhs: Operand::Const(2),
        };
        assert_eq!(op_class_of(&i), OpClass::Compare);
        let c = Inst::Const {
            dst: VarId(0),
            value: 3,
        };
        assert_eq!(op_class_of(&c), OpClass::Move);
    }

    #[test]
    fn edges_point_forward() {
        let (app, b) = first_nonempty_dfg(
            "app t; var a[8]; var g = 1; func main() { a[g] = a[g - 1] + a[g + 1] * 2; g = g ^ 3; }",
        );
        let dfg = BlockDfg::build(&app, b);
        for (i, ps) in dfg.preds.iter().enumerate() {
            for &p in ps {
                assert!(p < i, "edge {p} -> {i} not forward");
            }
        }
        // succs consistent with preds
        for (i, ss) in dfg.succs.iter().enumerate() {
            for &s in ss {
                assert!(dfg.preds[s].contains(&i));
            }
        }
    }
}
