//! Golden-file snapshot tests: the exact JSON the flow and the
//! exploration sweep emit for all six paper workloads, byte for byte.
//!
//! `tests/table1_shape.rs` pins the *qualitative* paper claims (the
//! 35–94 % saving band, the `trick` time trade, the i-cache collapse);
//! these goldens pin the *quantitative* output — every joule, cycle
//! and cell as currently computed. Any change to the numeric pipeline,
//! however small, shows up here as a readable JSON diff instead of
//! slipping through a shape band.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test goldens
//! ```
//!
//! then review the diff like any other code change.

use std::path::PathBuf;

use corepart::corpus::CorpusOptions;
use corepart::explore::{explore, hardware_weight_sweep};
use corepart::flow::DesignFlow;
use corepart::json::corpus_to_json;
use corepart::json::{exploration_to_json, table1_to_json};
use corepart::prepare::Workload;
use corepart::report::Table1;
use corepart::system::SystemConfig;
use corepart_conform::corpus::run_gen_corpus;
use corepart_ir::lower::lower;
use corepart_ir::parser::parse;
use corepart_tech::scaling::OperatingPoint;
use corepart_workloads::all;

/// The `explore` sweep mirrors the CLI's default weight ladder.
const EXPLORE_WEIGHTS: [f64; 7] = [0.0, 0.1, 0.2, 0.5, 1.0, 2.0, 4.0];

fn goldens_dir() -> PathBuf {
    // The test is registered from crates/core; goldens live beside the
    // other cross-crate tests.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens")
}

fn update_mode() -> bool {
    std::env::var("UPDATE_GOLDENS").is_ok_and(|v| v == "1")
}

/// Compares `actual` against the committed golden (or rewrites it in
/// update mode), with a first-divergence excerpt on mismatch.
fn assert_golden(name: &str, actual: &str) {
    let path = goldens_dir().join(name);
    if update_mode() {
        std::fs::create_dir_all(goldens_dir()).expect("create goldens dir");
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_GOLDENS=1 cargo test --test goldens",
            path.display()
        )
    });
    if expected != actual {
        let at = expected
            .bytes()
            .zip(actual.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| expected.len().min(actual.len()));
        let lo = at.saturating_sub(60);
        panic!(
            "golden {} diverges at byte {at}:\n  expected …{}…\n  actual   …{}…\n\
             (UPDATE_GOLDENS=1 regenerates after an intentional change)",
            name,
            &expected[lo..(at + 60).min(expected.len())],
            &actual[lo..(at + 60).min(actual.len())],
        );
    }
}

fn file_name(workload: &str) -> String {
    workload
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

#[test]
fn table1_json_matches_golden() {
    let mut table = Table1::new();
    for w in all() {
        let result = DesignFlow::with_config(SystemConfig::new())
            .run_app(w.app().expect("lowers"), Workload::from_arrays(w.arrays(1)))
            .expect("flow succeeds");
        table.push(result.table1_entry());
    }
    assert_eq!(table.entries().len(), 6);
    let mut json = table1_to_json(&table);
    json.push('\n');
    assert_golden("table1.json", &json);
}

#[test]
fn native_operating_point_reproduces_table1_golden() {
    // Pinning an explicit operating point at the base process's own
    // node and supply must be a no-op: simulation already runs there,
    // and the native weights are exactly 1.0. The table JSON has to
    // match the committed golden byte for byte.
    let base = SystemConfig::new();
    let native = OperatingPoint::native_of(&base.process);
    let mut table = Table1::new();
    for w in all() {
        let result = DesignFlow::with_config(base.clone().with_operating_point(native))
            .run_app(w.app().expect("lowers"), Workload::from_arrays(w.arrays(1)))
            .expect("flow succeeds");
        table.push(result.table1_entry());
    }
    let mut json = table1_to_json(&table);
    json.push('\n');
    let path = goldens_dir().join("table1.json");
    let expected =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    assert_eq!(expected, json, "native point must not perturb the flow");
}

#[test]
fn corpus_sample_json_matches_golden() {
    // A 32-app generated corpus (run seed 9, the corpus defaults):
    // every row, the aggregate frontier and the feature statistics,
    // byte for byte. This is the regression net over the *generated*
    // workload family — a numeric change anywhere in the flow shows up
    // here across 32 structurally diverse apps at once.
    let out =
        std::env::temp_dir().join(format!("corepart-golden-corpus-{}.tsv", std::process::id()));
    let journal = std::env::temp_dir().join(format!(
        "corepart-golden-corpus-{}.journal",
        std::process::id()
    ));
    let mut options = CorpusOptions::new(SystemConfig::new());
    options.chunk = 8;
    let outcome =
        run_gen_corpus(9, 32, options, &journal, &out, false).expect("corpus run succeeds");
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_file(&journal);
    assert!(outcome.finished);
    assert_eq!(outcome.rows.len(), 32);
    let mut json = corpus_to_json(&outcome);
    json.push('\n');
    assert_golden("corpus_sample.json", &json);
}

#[test]
fn exploration_json_matches_goldens() {
    for w in all() {
        let app = lower(&parse(w.source).expect("parses")).expect("lowers");
        let workload = Workload::from_arrays(w.arrays(1));
        let configs = hardware_weight_sweep(&EXPLORE_WEIGHTS, &SystemConfig::new());
        let ex = explore(&app, &workload, &configs).expect("exploration succeeds");
        // One point per weight plus the initial design.
        assert_eq!(ex.points.len(), EXPLORE_WEIGHTS.len() + 1);
        let mut json = exploration_to_json(&ex);
        json.push('\n');
        assert_golden(&format!("explore_{}.json", file_name(w.name)), &json);
    }
}
