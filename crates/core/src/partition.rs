//! The low-power partitioning loop — the Fig. 1 algorithm.
//!
//! The search follows the paper's two-phase structure:
//!
//! * **Estimate phase** (lines 3–13): for every pre-selected cluster ×
//!   every designer resource set, list-schedule, bind and compute
//!   `U_R^core`; reject candidates that do not beat the µP's
//!   utilization (`U_R > U_µP`, line 9); score survivors with the
//!   objective function using the *quick* energy estimates. This never
//!   runs a simulation — it is the fast inner loop the pre-selection
//!   exists to keep small.
//! * **Verification phase** (lines 14–15): the best-`OF` candidate is
//!   "synthesized" (full datapath estimate) and verified by the
//!   whole-system simulation: ISS + caches + memory + gate-level-style
//!   ASIC energy. Only a verified improvement is reported.
//!
//! On top of the single-cluster loop, [`Partitioner::run`] grows the
//! chosen partition greedily: neighbouring clusters whose addition
//! improves the (estimated, then verified) objective join the ASIC
//! core, benefiting from the synergy discounts of Fig. 3.
//!
//! ## The parallel, memoizing engine
//!
//! The estimate grid (candidates × resource sets) and each growth
//! round are parallel maps ([`crate::parallel::par_map`]) whose
//! results are folded **sequentially in candidate order**: the strict
//! `<` comparison keeps the first-in-order winner on ties and each
//! growth round adopts the first improving candidate in order, exactly
//! what the sequential scan did. Schedules are memoized in a
//! [`ScheduleCache`] (one compute per key even under races), so both
//! the chosen partition *and* the statistics are bit-identical for
//! every [`SystemConfig::threads`] value.
//!
//! Verification reuses both memoization layers: the winning
//! candidate's schedule trio was already computed during the estimate
//! phase (a guaranteed cache hit), and the µP + cache-hierarchy
//! simulation is served by the trace-replay engine
//! ([`crate::verify`]) captured during the initial run — one
//! simulation per workload, bit-identical re-accounting per candidate.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use corepart_ir::cluster::ClusterId;
use corepart_isa::profile::CoreUtilization;
use corepart_isa::simulator::RunStats;
use corepart_sched::binding::{bind, schedule_cluster, utilization};
use corepart_sched::cache::{ScheduleCache, ScheduledCluster};
use corepart_sched::datapath::estimate_datapath;
use corepart_sched::energy::estimate_energy;
use corepart_tech::energy::MemoryEnergyModel;
use corepart_tech::resource::ResourceKind;
use corepart_tech::units::Energy;

use crate::bus_transfer::transfer_counts;
use crate::engine::Session;
use crate::error::CorepartError;
use crate::evaluate::{evaluate_partition_with, Partition, PartitionDetail};
use crate::objective::Objective;
use crate::parallel::par_map;
use crate::prepare::PreparedApp;
use crate::preselect::{preselect, CandidateScore};
use crate::system::{DesignMetrics, SystemConfig};
use crate::verify::ReplayEngine;

/// The memoization key of one synthesis request: the partition's
/// clusters (in partition order — block order matters to the
/// scheduler) plus the resource set's identity (name and exact
/// contents).
pub type ScheduleKey = (Vec<ClusterId>, String, Vec<(ResourceKind, u32)>);

/// The [`ScheduleKey`] of one candidate partition — the estimate
/// phase and the verification path build it identically, which is
/// what lets verification reuse estimate-phase cache entries. Public
/// so external tooling (the conformance harness's cache-poisoning
/// probes) can address the exact entry a partition resolves to.
pub fn schedule_key(partition: &Partition) -> ScheduleKey {
    (
        partition.clusters.clone(),
        partition.set.name().to_owned(),
        partition.set.iter().collect(),
    )
}

/// Counters describing how the search went.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Clusters surviving pre-selection.
    pub candidates: usize,
    /// (cluster, set) pairs estimated.
    pub estimated: usize,
    /// Pairs rejected by the `U_R > U_µP` test (Fig. 1 line 9).
    pub rejected_by_utilization: usize,
    /// Pairs whose resource set could not execute the cluster.
    pub infeasible: usize,
    /// Greedy growth steps that improved the objective.
    pub growth_steps: usize,
    /// Full verifications run (Fig. 1 lines 14–15).
    pub verifications: usize,
    /// Verifications served by the trace-replay engine instead of a
    /// fresh instruction-set simulation.
    pub replayed: usize,
    /// Batched replay walks run on this search's behalf (each walk
    /// verifies every uncached candidate of a round in one pass over
    /// the decoded trace).
    pub batched_replays: usize,
    /// Stretch-shard rounds walked by those batched replays (the
    /// rendezvous rounds of the lane-group threading; 1 per unsharded
    /// batch). A mechanism counter, excluded from equality like
    /// `batched_replays`.
    pub batch_shards: usize,
    /// Schedule-cache lookups served from memory during this run.
    pub cache_hits: u64,
    /// Schedule-cache lookups that ran the scheduler (distinct keys).
    pub cache_misses: u64,
    /// Wall time of the estimate phase, nanoseconds.
    pub estimate_nanos: u64,
    /// Wall time of the greedy growth phase, nanoseconds.
    pub growth_nanos: u64,
    /// Wall time of the verification phase, nanoseconds.
    pub verify_nanos: u64,
}

impl PartialEq for SearchStats {
    /// Wall-time fields and the `replayed`/`batched_replays` mechanism
    /// counters are excluded: two runs are equal when they computed
    /// the same results, however long the clock said it took and
    /// whichever (bit-identical) verification path served them.
    fn eq(&self, other: &Self) -> bool {
        self.candidates == other.candidates
            && self.estimated == other.estimated
            && self.rejected_by_utilization == other.rejected_by_utilization
            && self.infeasible == other.infeasible
            && self.growth_steps == other.growth_steps
            && self.verifications == other.verifications
            && self.cache_hits == other.cache_hits
            && self.cache_misses == other.cache_misses
    }
}

impl Eq for SearchStats {}

/// The result of a partitioning run.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionOutcome {
    /// The initial design's metrics (Table 1 "I" row).
    pub initial: DesignMetrics,
    /// The verified best partition (Table 1 "P" row), or `None` when no
    /// candidate beat the initial design.
    pub best: Option<(Partition, PartitionDetail)>,
    /// Search statistics.
    pub search: SearchStats,
}

impl PartitionOutcome {
    /// Energy saving of the chosen partition in percent, if one was
    /// found.
    pub fn energy_saving_percent(&self) -> Option<f64> {
        self.best
            .as_ref()
            .and_then(|(_, d)| d.metrics.energy_saving_vs(&self.initial))
    }

    /// Execution-time change of the chosen partition in percent
    /// (negative = faster), if one was found.
    pub fn time_change_percent(&self) -> Option<f64> {
        self.best
            .as_ref()
            .and_then(|(_, d)| d.metrics.time_change_vs(&self.initial))
    }
}

/// One estimated candidate (estimate phase output).
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatedCandidate {
    /// The candidate partition.
    pub partition: Partition,
    /// Its ASIC utilization.
    pub u_r: f64,
    /// The estimated objective value.
    pub of_value: f64,
    /// The estimated total system energy.
    pub energy: Energy,
}

/// The partitioner, bound to one [`Session`]'s stage artifacts: the
/// prepared application, the initial-design baseline (metrics, run
/// statistics, replay engine) and the shared schedule cache all come
/// from — and are shared through — the session's [`crate::engine`]
/// pools.
#[derive(Debug)]
pub struct Partitioner<'a> {
    prepared: &'a PreparedApp,
    config: &'a SystemConfig,
    initial: &'a DesignMetrics,
    initial_stats: &'a RunStats,
    u_up: f64,
    objective: Objective,
    cache: Arc<ScheduleCache<ScheduleKey>>,
    replay: Option<Arc<ReplayEngine>>,
    threads: usize,
}

impl<'a> Partitioner<'a> {
    /// Opens the partitioner on a session, resolving the session's
    /// prepared application and initial-design baseline (lazily
    /// computed, shared with sibling sessions — see
    /// [`crate::engine`]), and sets up the objective function.
    ///
    /// # Errors
    ///
    /// The session's memoized preparation or simulation failure.
    pub fn new(session: &'a Session<'_>) -> Result<Self, CorepartError> {
        let prepared = session.prepared()?;
        let baseline = session.baseline()?;
        let config = session.config();
        let u_up = CoreUtilization::from_stats(&baseline.stats).mean();
        let objective = Objective::new(config, baseline.metrics.total_energy());
        Ok(Partitioner {
            prepared,
            config,
            initial: &baseline.metrics,
            initial_stats: &baseline.stats,
            u_up,
            objective,
            cache: Arc::clone(session.schedule_cache()),
            replay: baseline.replay.clone(),
            threads: session.threads(),
        })
    }

    /// The schedule cache backing this partitioner's estimates.
    pub fn schedule_cache(&self) -> &Arc<ScheduleCache<ScheduleKey>> {
        &self.cache
    }

    /// The replay engine backing verifications, when the reference
    /// trace was captured (absent when `trace_cap_bytes` is 0 or the
    /// capture overflowed the cap).
    pub fn replay_engine(&self) -> Option<&Arc<ReplayEngine>> {
        self.replay.as_ref()
    }

    /// The resolved worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The initial design's metrics.
    pub fn initial(&self) -> &DesignMetrics {
        self.initial
    }

    /// The prepared application this partitioner works on.
    pub fn prepared(&self) -> &PreparedApp {
        self.prepared
    }

    /// The system configuration in use.
    pub fn config(&self) -> &SystemConfig {
        self.config
    }

    /// The initial run's statistics (per-block attribution).
    pub fn initial_stats(&self) -> &RunStats {
        self.initial_stats
    }

    /// `U_µP^core` of the initial run.
    pub fn u_up(&self) -> f64 {
        self.u_up
    }

    /// The objective function in use.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// The pre-selected candidate clusters (Fig. 1 line 5).
    pub fn candidates(&self) -> Vec<CandidateScore> {
        preselect(self.prepared, self.initial_stats, self.config)
    }

    /// Fully evaluates (verifies) one partition — Fig. 1 lines 14–15.
    ///
    /// The schedule trio is served from (and feeds) this partitioner's
    /// [`ScheduleCache`] — the estimate phase already computed the
    /// winning candidate's entry, so verification hits it — and the
    /// µP/cache-hierarchy side replays the captured reference trace
    /// when one is available, falling back to direct simulation
    /// otherwise. Both layers are bit-identical to the uncached path.
    ///
    /// # Errors
    ///
    /// Infeasible resource sets or simulation failures.
    pub fn evaluate(&self, partition: &Partition) -> Result<PartitionDetail, CorepartError> {
        evaluate_partition_with(
            self.prepared,
            partition,
            self.initial_stats,
            self.config,
            Some(&self.cache),
            self.replay.as_deref(),
        )
    }

    /// The memoized schedule trio — list schedule, binding,
    /// utilization — of one candidate partition, served from (and
    /// feeding) the session's shared [`ScheduleCache`]. This is the
    /// synthesis step every consumer shares: the estimate phase, full
    /// verification, and the multi-core per-core evaluation all hit
    /// the same entries.
    ///
    /// # Errors
    ///
    /// The (memoized) [`CorepartError::Sched`] when the partition's
    /// resource set cannot execute its clusters.
    pub fn scheduled(&self, partition: &Partition) -> Result<Arc<ScheduledCluster>, CorepartError> {
        let mut hw_blocks = Vec::new();
        for &cid in &partition.clusters {
            hw_blocks.extend(self.prepared.chain.cluster(cid).blocks.iter().copied());
        }
        Ok(self.cache.get_or_compute(schedule_key(partition), || {
            let sched = schedule_cluster(
                &self.prepared.app,
                &hw_blocks,
                &partition.set,
                &self.config.library,
            )?;
            let binding = bind(&sched, &self.config.library);
            let util = utilization(
                &sched,
                &binding,
                &self.prepared.profile,
                &self.config.library,
            );
            Ok(ScheduledCluster {
                sched,
                binding,
                util,
            })
        })?)
    }

    /// The objective value of a verified design.
    pub fn objective_value(&self, metrics: &DesignMetrics) -> f64 {
        self.objective.value(metrics.total_energy(), metrics.geq)
    }

    /// Estimate phase for one candidate partition (no simulation):
    /// schedule + bind + `U_R` + quick energies + `OF`.
    ///
    /// Returns `Ok(None)` when the candidate fails the `U_R > U_µP`
    /// test of Fig. 1 line 9.
    ///
    /// # Errors
    ///
    /// [`CorepartError::Sched`] when the set cannot execute the
    /// clusters.
    pub fn estimate(
        &self,
        partition: &Partition,
    ) -> Result<Option<EstimatedCandidate>, CorepartError> {
        self.estimate_inner(partition, true)
    }

    /// Like [`Partitioner::estimate`], with the Fig.-1-line-9
    /// utilization gate optional: the gate screens *seed* clusters, but
    /// greedy growth is judged by the objective alone (a grown
    /// partition's combined `U_R` may dip below `U_µP` while still
    /// lowering total energy, e.g. when absorbing the small glue
    /// cluster between two hot loops).
    fn estimate_inner(
        &self,
        partition: &Partition,
        enforce_gate: bool,
    ) -> Result<Option<EstimatedCandidate>, CorepartError> {
        let mut hw_blocks = Vec::new();
        for &cid in &partition.clusters {
            hw_blocks.extend(self.prepared.chain.cluster(cid).blocks.iter().copied());
        }
        let synth = self.scheduled(partition)?;
        let ScheduledCluster {
            sched,
            binding,
            util,
        } = &*synth;

        // Fig. 1 line 9: only clusters that utilize the ASIC datapath
        // better than the µP utilizes itself *while running this
        // cluster* can save energy (per-cluster comparison, §3.2).
        let u_up_region = CoreUtilization::for_blocks(self.initial_stats, &hw_blocks).mean();
        if enforce_gate && util.u_r <= self.config.gate_margin * u_up_region {
            return Ok(None);
        }

        // Line 11: quick ASIC-energy estimate.
        let e_r = estimate_energy(util, binding, &self.config.library);

        // Line 12: remaining software energy.
        let e_cluster: Energy = partition
            .clusters
            .iter()
            .map(|&cid| {
                self.initial_stats
                    .energy_of(&self.prepared.chain.cluster(cid).blocks)
            })
            .sum();
        let e_up = self.initial.up_core - e_cluster;

        // Communication energy (the E_Trans of line 4, with synergy
        // among the chosen clusters).
        let on_asic: HashSet<ClusterId> = partition.clusters.iter().copied().collect();
        let mem_model =
            MemoryEnergyModel::analytical(&self.config.process, self.config.memory_bytes);
        let mut e_comm = Energy::ZERO;
        for &cid in &partition.clusters {
            let cluster = self.prepared.chain.cluster(cid);
            let mut others = on_asic.clone();
            others.remove(&cid);
            let counts = transfer_counts(&self.prepared.chain, cid, &others);
            let inv = corepart_ir::cluster::cluster_invocations(
                &self.prepared.app,
                &self.prepared.profile,
                cluster,
            );
            e_comm += (self.config.bus.write() + mem_model.write_word()) * (counts.words_in * inv)
                + (self.config.bus.read() + mem_model.read_word()) * (counts.words_out * inv);
        }

        // E_rest: the other cores, taken from the initial design at
        // estimate time (the verification re-simulates them).
        let e_rest = self.initial.icache + self.initial.dcache + self.initial.mem;

        let datapath = estimate_datapath(sched, binding, &self.config.library);
        let energy = e_r + e_up + e_comm + e_rest;
        let of_value = self.objective.value(energy, datapath.total());

        Ok(Some(EstimatedCandidate {
            partition: partition.clone(),
            u_r: util.u_r,
            of_value,
            energy,
        }))
    }

    /// The hardware-block set a partition induces: the blocks of its
    /// clusters, in chain order — the exact set verification replays
    /// under (and the [`crate::verify::ReplayEngine`] memo key, once
    /// sorted).
    pub fn hw_set_of(&self, partition: &Partition) -> HashSet<corepart_ir::op::BlockId> {
        let mut hw = HashSet::new();
        for &cid in &partition.clusters {
            hw.extend(self.prepared.chain.cluster(cid).blocks.iter().copied());
        }
        hw
    }

    /// Runs the full Fig. 1 search: pre-selection, the estimate loop
    /// over clusters × resource sets, greedy multi-cluster growth, and
    /// final verification.
    ///
    /// Equivalent to [`Partitioner::search`] followed by
    /// [`Partitioner::finish`], with the winning candidate's replay
    /// seeded through the batched kernel when a trace is available
    /// (`explore` seeds many winners per batch; a single run's batch
    /// has one lane — still one decode instead of a streaming parse).
    ///
    /// # Errors
    ///
    /// Simulation failures during verification (estimate-phase
    /// infeasibilities are skipped and counted instead).
    pub fn run(&self) -> Result<PartitionOutcome, CorepartError> {
        let mut phase = self.search()?;
        if let (Some(best), Some(engine)) = (&phase.best, &self.replay) {
            let before = engine.batches();
            let shards_before = engine.batch_shards();
            // A batch error is deliberately dropped: `finish` re-asks
            // the memo (per-candidate errors were cached there) or the
            // sequential path (trace-level errors memoize nothing) and
            // reproduces the identical error through the normal
            // evaluation route.
            let _ = engine.verify_batch_with(
                self.config,
                std::slice::from_ref(&self.hw_set_of(&best.partition)),
                crate::verify::BatchOptions::threaded(self.threads),
            );
            phase.search.batched_replays += (engine.batches() - before) as usize;
            phase.search.batch_shards += (engine.batch_shards() - shards_before) as usize;
        }
        self.finish(phase)
    }

    /// The search half of [`Partitioner::run`] — pre-selection, the
    /// estimate grid, greedy growth — with **no** verification: the
    /// returned [`SearchPhase`] carries the winning estimated
    /// candidate (if any) and the statistics so far. Callers batch the
    /// winner's replay across many searches (see [`crate::explore()`])
    /// before closing each phase with [`Partitioner::finish`].
    ///
    /// # Errors
    ///
    /// Non-scheduling estimate failures (infeasibilities are counted,
    /// not raised).
    pub fn search(&self) -> Result<SearchPhase, CorepartError> {
        let candidates = self.candidates();
        let mut search = SearchStats {
            candidates: candidates.len(),
            ..SearchStats::default()
        };
        let (hits_before, misses_before) = (self.cache.hits(), self.cache.misses());

        // --- Estimate loop (Fig. 1 lines 6-13): the whole candidate ×
        // resource-set grid is estimated in parallel, then folded
        // sequentially in grid order — the strict `<` keeps the
        // first-in-order winner on ties, so the result is identical to
        // the sequential scan for any thread count. ---
        let estimate_started = Instant::now();
        let grid: Vec<Partition> = candidates
            .iter()
            .flat_map(|cand| {
                self.config
                    .resource_sets
                    .iter()
                    .map(|set| Partition::single(cand.cluster, set.clone()))
            })
            .collect();
        search.estimated += grid.len();
        let estimates = par_map(&grid, self.threads, |_, partition| self.estimate(partition));
        let mut best_est: Option<EstimatedCandidate> = None;
        for result in estimates {
            match result {
                Ok(Some(est)) => {
                    if est.of_value < self.objective.initial_value()
                        && best_est
                            .as_ref()
                            .map(|b| est.of_value < b.of_value)
                            .unwrap_or(true)
                    {
                        best_est = Some(est);
                    }
                }
                Ok(None) => search.rejected_by_utilization += 1,
                Err(CorepartError::Sched(_)) => search.infeasible += 1,
                Err(other) => return Err(other),
            }
        }
        search.estimate_nanos = estimate_started.elapsed().as_nanos() as u64;

        let Some(mut best) = best_est else {
            return Ok(SearchPhase {
                search,
                best: None,
                hits_before,
                misses_before,
            });
        };

        // --- Greedy growth: co-locate more clusters on the ASIC core
        // while the estimated objective keeps improving. Each round
        // estimates every remaining candidate in parallel, then adopts
        // the first improving one in candidate order — the same
        // cluster the sequential scan-and-break selected. ---
        let growth_started = Instant::now();
        loop {
            let chosen: HashSet<ClusterId> = best.partition.clusters.iter().copied().collect();
            let grown: Vec<Partition> = candidates
                .iter()
                .filter(|cand| !chosen.contains(&cand.cluster))
                .map(|cand| {
                    let mut grown = best.partition.clone();
                    grown.clusters.push(cand.cluster);
                    grown.clusters.sort();
                    grown
                })
                .collect();
            if grown.is_empty() {
                break;
            }
            search.estimated += grown.len();
            let estimates = par_map(&grown, self.threads, |_, partition| {
                self.estimate_inner(partition, false)
            });
            let mut improved = false;
            for result in estimates {
                match result {
                    Ok(Some(est)) if !improved && est.of_value < best.of_value => {
                        best = est;
                        improved = true;
                        search.growth_steps += 1;
                    }
                    Ok(Some(_)) | Ok(None) => {}
                    Err(CorepartError::Sched(_)) => search.infeasible += 1,
                    Err(other) => return Err(other),
                }
            }
            if !improved {
                break;
            }
        }
        search.growth_nanos = growth_started.elapsed().as_nanos() as u64;

        Ok(SearchPhase {
            search,
            best: Some(best),
            hits_before,
            misses_before,
        })
    }

    /// The verification half of [`Partitioner::run`] — Fig. 1 lines
    /// 14–15 plus the §3.5 "could the total system energy be
    /// reduced?" check — closing a [`SearchPhase`]. When the winner's
    /// replay was pre-seeded by a batch, the evaluation here is a memo
    /// hit; the outcome is bit-identical either way.
    ///
    /// # Errors
    ///
    /// Simulation failures during verification.
    pub fn finish(&self, phase: SearchPhase) -> Result<PartitionOutcome, CorepartError> {
        let SearchPhase {
            mut search,
            best,
            hits_before,
            misses_before,
        } = phase;
        let Some(best) = best else {
            search.cache_hits = self.cache.hits() - hits_before;
            search.cache_misses = self.cache.misses() - misses_before;
            return Ok(PartitionOutcome {
                initial: self.initial.clone(),
                best: None,
                search,
            });
        };

        let verify_started = Instant::now();
        search.verifications += 1;
        if self.replay.is_some() {
            search.replayed += 1;
        }
        let detail = self.evaluate(&best.partition)?;
        let verified_better =
            detail.metrics.total_energy().joules() < self.initial.total_energy().joules();
        search.verify_nanos = verify_started.elapsed().as_nanos() as u64;
        search.cache_hits = self.cache.hits() - hits_before;
        search.cache_misses = self.cache.misses() - misses_before;

        Ok(PartitionOutcome {
            initial: self.initial.clone(),
            best: verified_better.then_some((best.partition, detail)),
            search,
        })
    }
}

/// The intermediate product between [`Partitioner::search`] and
/// [`Partitioner::finish`]: the statistics accumulated so far, the
/// winning estimated candidate (if any), and the schedule-cache
/// counter snapshots the finish uses to compute this run's deltas.
#[derive(Debug)]
pub struct SearchPhase {
    /// Statistics so far; `finish` completes the verification fields.
    /// Public within the crate so `run`/`explore` can attribute
    /// batched walks to the search they verified.
    pub(crate) search: SearchStats,
    best: Option<EstimatedCandidate>,
    hits_before: u64,
    misses_before: u64,
}

impl SearchPhase {
    /// The winning estimated candidate, when the estimate phase found
    /// one that beats the initial design.
    pub fn best(&self) -> Option<&EstimatedCandidate> {
        self.best.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::prepare::Workload;
    use corepart_ir::cdfg::Application;
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;

    fn make(
        src: &str,
        workload: Workload,
        config: SystemConfig,
    ) -> (Engine, Application, Workload) {
        let app = lower(&parse(src).unwrap()).unwrap();
        (Engine::new(config).unwrap(), app, workload)
    }

    const DSP: &str = r#"app dsp; var x[256]; var y[256]; var s = 0;
        func main() {
            for (var i = 1; i < 255; i = i + 1) {
                y[i] = (x[i - 1] * 3 + x[i] * 5 + x[i + 1] * 3) >> 4;
            }
            for (var j = 0; j < 256; j = j + 1) { s = s + y[j]; }
            return s;
        }"#;

    fn dsp_workload() -> Workload {
        Workload::from_arrays([(
            "x",
            (0..256)
                .map(|i| (i * 31 + 7) % 255 - 128)
                .collect::<Vec<i64>>(),
        )])
    }

    #[test]
    fn finds_an_energy_saving_partition() {
        let (engine, app, workload) = make(DSP, dsp_workload(), SystemConfig::new());
        let session = engine.session(&app, &workload);
        let partitioner = Partitioner::new(&session).unwrap();
        let outcome = partitioner.run().unwrap();
        let (partition, detail) = outcome.best.as_ref().expect("a partition must be found");
        assert!(!partition.clusters.is_empty());
        let saving = outcome.energy_saving_percent().unwrap();
        assert!(
            saving > 20.0,
            "DSP kernel should save substantially, got {saving:.1}%"
        );
        // Utilization test held.
        assert!(detail.u_r > partitioner.u_up());
        // Hardware stayed in the paper's band.
        assert!(detail.metrics.geq.cells() < 40_000);
        assert!(outcome.search.candidates > 0);
        assert!(outcome.search.estimated > 0);
    }

    #[test]
    fn estimate_rejects_low_utilization() {
        let (engine, app, workload) = make(DSP, dsp_workload(), SystemConfig::new());
        let session = engine.session(&app, &workload);
        let partitioner = Partitioner::new(&session).unwrap();
        let config = session.config();
        let hot = partitioner
            .prepared()
            .chain
            .iter()
            .find(|c| c.is_loop())
            .unwrap()
            .id;
        // The huge xl-dsp set on a modest kernel: utilization dives.
        let est = partitioner
            .estimate(&Partition::single(
                hot,
                config.resource_set(4).unwrap().clone(),
            ))
            .unwrap();
        let est_small = partitioner
            .estimate(&Partition::single(
                hot,
                config.resource_set(2).unwrap().clone(),
            ))
            .unwrap();
        if let (Some(l), Some(s)) = (&est, &est_small) {
            assert!(s.u_r >= l.u_r);
        }
        // At least one variant must pass the utilization test.
        assert!(est.is_some() || est_small.is_some());
    }

    #[test]
    fn control_code_yields_no_partition() {
        // Irregular, branchy, low-reuse code: no cluster should beat
        // the initial design.
        let (engine, app, workload) = make(
            r#"app ctl; var s = 0;
            func main() {
                if (s == 0) { s = 1; } else { s = 2; }
                if (s > 1) { s = s - 1; }
                return s;
            }"#,
            Workload::empty(),
            SystemConfig::new(),
        );
        let session = engine.session(&app, &workload);
        let partitioner = Partitioner::new(&session).unwrap();
        let outcome = partitioner.run().unwrap();
        assert!(outcome.best.is_none());
    }

    #[test]
    fn factor_f_changes_the_choice() {
        // With a crushing hardware weight, nothing is worth synthesis.
        let (engine, app, workload) = make(
            DSP,
            dsp_workload(),
            SystemConfig::new().with_factors(1.0, 1000.0),
        );
        let session = engine.session(&app, &workload);
        let partitioner = Partitioner::new(&session).unwrap();
        let outcome = partitioner.run().unwrap();
        assert!(
            outcome.best.is_none(),
            "a 1000x hardware weight must reject every candidate"
        );
    }

    #[test]
    fn outcome_accessors() {
        let (engine, app, workload) = make(DSP, dsp_workload(), SystemConfig::new());
        let session = engine.session(&app, &workload);
        let partitioner = Partitioner::new(&session).unwrap();
        let outcome = partitioner.run().unwrap();
        assert!(outcome.energy_saving_percent().is_some());
        assert!(outcome.time_change_percent().is_some());
        assert!(partitioner.initial().up_core.joules() > 0.0);
        assert!(partitioner.initial_stats().cycles.count() > 0);
        assert!(partitioner.objective().initial_value() > 0.0);
    }
}
