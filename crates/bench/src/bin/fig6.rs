//! Regenerates the paper's **Figure 6**: achieved energy savings and
//! change of total execution time per application, as a text bar chart.
//!
//! ```text
//! cargo run --release -p corepart-bench --bin fig6
//! ```

use corepart::report::{figure6, render_figure6, Table1, Table1Entry};
use corepart::system::SystemConfig;
use corepart_bench::run_all;

fn main() {
    let config = SystemConfig::new();
    let results = run_all(&config);

    let mut table = Table1::new();
    for r in &results {
        table.push(Table1Entry::from_outcome(r.app_name.clone(), &r.outcome));
    }
    let points = figure6(&table);
    println!("{}", render_figure6(&points));

    println!("series (app, energy saving %, exec-time change %):");
    for p in &points {
        println!(
            "  {:<8} {:+7.2} {:+7.2}",
            p.app, p.energy_saving, p.time_change
        );
    }
}
