//! The sharded, budgeted, warm artifact store behind `corepart serve`.
//!
//! An [`ArtifactStore`] keeps [`Engine`] pools alive across a request
//! stream so repeated fingerprints skip preparation and the baseline
//! simulation — the two stages that dominate a cold run. Three design
//! rules shape it:
//!
//! * **Sharding.** The `(application, workload)` fingerprint space is
//!   split across `S` shards, each owning a full [`Engine`] (its own
//!   slice of the prepared-app / baseline+trace / schedule-cache
//!   pools). A request locks only its shard's ledger, and the serve
//!   layer drives one worker thread per shard — there is no global
//!   lock on the hot lookup path; the only store-global state is a
//!   pair of atomics (byte ledger total and LRU clock).
//! * **Byte budget.** Every pool entry is charged its measured
//!   `heap_bytes()` against one store-wide budget (the per-run
//!   `trace_cap_bytes` idea promoted to a per-store budget). The
//!   reserve path is compare-and-swap — accounted bytes can never
//!   exceed the budget, even across racing shards.
//! * **LRU + admission control.** When a reservation fails, the shard
//!   evicts its own least-recently-used *cold* entries first. Hot
//!   entries (touched by [`StoreOptions::hot_touches`]+ requests) are
//!   never evicted to admit a cold, first-time artifact — a one-shot
//!   trace cannot flush a hot baseline; the newcomer is declined
//!   instead (computed, served, and dropped). Ties are broken by
//!   `(kind, key)` so eviction order never depends on hash-map
//!   iteration order.
//! * **Result memoization.** The whole flow is deterministic, so the
//!   store also memoizes the rendered `result` payload per *exact*
//!   request ([`ArtifactStore::with_result`]): a repeated request is
//!   answered by a map lookup without touching the engine at all.
//!   Result entries live in the same byte ledger under the same
//!   budget/LRU/admission rules; only result-missing requests (new
//!   knobs on a warm app) touch — and thereby keep hot — the
//!   underlying artifacts.
//!
//! Evicted entries are recomputed bit-identically on the next request
//! — every artifact is a pure function of its key (see
//! [`MemoCache::evict`](corepart_sched::cache::MemoCache::evict)).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use corepart_ir::cdfg::Application;

use crate::engine::{ArtifactKind, Engine};
use crate::error::CorepartError;
use crate::prepare::Workload;
use crate::system::SystemConfig;

/// Construction knobs of an [`ArtifactStore`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Fingerprint shards (= warm engines = serve worker threads).
    pub shards: usize,
    /// Store-wide byte budget over all accounted artifacts.
    pub budget_bytes: u64,
    /// Touch count from which an entry counts as *hot* (protected from
    /// eviction by cold, first-time admissions).
    pub hot_touches: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            shards: 4,
            budget_bytes: 128 << 20,
            hot_touches: 2,
        }
    }
}

/// Ledger key of one accounted pool entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct EntryKey {
    kind: ArtifactKind,
    key: String,
}

/// Ledger record of one accounted pool entry.
#[derive(Debug, Clone)]
struct EntryMeta {
    /// Accounted bytes (reserved against the global budget).
    bytes: u64,
    /// Global LRU clock value of the last touching request.
    tick: u64,
    /// Requests that touched this entry.
    touches: u64,
}

/// One shard: a warm engine plus the ledger of its accounted entries.
#[derive(Debug)]
struct StoreShard {
    engine: Engine,
    meta: Mutex<HashMap<EntryKey, EntryMeta>>,
    /// Memoized deterministic serve `result` payloads, keyed by the
    /// full request key ([`ArtifactKind::Result`] ledger entries).
    results: Mutex<HashMap<String, String>>,
    latencies: Mutex<Vec<u64>>,
    requests: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
    declined: AtomicU64,
    /// Jobs currently enqueued on (or being drained by) this shard's
    /// serve worker.
    depth: AtomicU64,
    /// High-water mark of `depth`.
    depth_max: AtomicU64,
}

/// Per-request accounting returned by [`ArtifactStore::with_engine`].
#[derive(Debug, Clone, Copy)]
pub struct RequestStats {
    /// The shard that served the request.
    pub shard: usize,
    /// True when the shard already held a memoized result for the
    /// exact request, or a baseline artifact for the request's
    /// `(application, workload)` identity — the expensive work was
    /// served warm.
    pub store_hit: bool,
    /// Wall time of the request inside the store, nanoseconds.
    pub elapsed_nanos: u64,
}

/// Latency percentiles over every completed request (nearest-rank).
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyStats {
    /// Completed requests measured.
    pub count: u64,
    /// 50th percentile, nanoseconds.
    pub p50_nanos: u64,
    /// 95th percentile, nanoseconds.
    pub p95_nanos: u64,
    /// 99th percentile, nanoseconds.
    pub p99_nanos: u64,
}

/// A point-in-time snapshot of one shard's counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    /// Requests routed to this shard.
    pub requests: u64,
    /// Requests that found their baseline already warm.
    pub hits: u64,
    /// Entries evicted by the budget path.
    pub evictions: u64,
    /// Admissions declined to protect hot entries.
    pub declined: u64,
    /// Accounted entries currently held.
    pub entries: u64,
    /// Accounted bytes currently held.
    pub bytes: u64,
    /// Jobs currently queued on the shard's serve worker.
    pub depth: u64,
    /// High-water mark of the shard's queue depth.
    pub depth_max: u64,
}

/// Pipelining counters over every serve worker: how much of each
/// request's latency was queueing vs compute, and how large the
/// coalesced verify batches ran.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Total nanoseconds compute jobs spent queued before a worker
    /// picked them up.
    pub queue_wait_nanos: u64,
    /// Total nanoseconds workers spent computing responses.
    pub compute_nanos: u64,
    /// Same-fingerprint verify groups of exactly one request.
    pub coalesced_k1: u64,
    /// Verify groups coalesced at 2–4 lanes.
    pub coalesced_k2_4: u64,
    /// Verify groups coalesced at 5–16 lanes.
    pub coalesced_k5_16: u64,
}

/// A point-in-time snapshot of the whole store.
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// The configured byte budget.
    pub budget_bytes: u64,
    /// Accounted bytes across all shards (≤ `budget_bytes`, always).
    pub bytes: u64,
    /// Requests served.
    pub requests: u64,
    /// Requests whose baseline was already warm.
    pub hits: u64,
    /// Entries evicted by the budget path, summed over shards.
    pub evictions: u64,
    /// Declined admissions, summed over shards.
    pub declined: u64,
    /// Request-latency percentiles over all shards.
    pub latency: LatencyStats,
    /// Pipelining counters (queue-wait/compute split, coalescing).
    pub pipeline: PipelineStats,
    /// Per-shard counters.
    pub shards: Vec<ShardStats>,
}

impl StoreStats {
    /// Hit rate over all requests, in [0, 1] (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// The warm artifact store: `S` sharded engines behind one byte
/// budget. See the module docs for the sharding/budget/LRU rules.
#[derive(Debug)]
pub struct ArtifactStore {
    shards: Vec<StoreShard>,
    budget: u64,
    hot_touches: u64,
    /// Accounted bytes across all shards (CAS-reserved, never above
    /// `budget`).
    used: AtomicU64,
    /// Global LRU clock, advanced once per request.
    tick: AtomicU64,
    /// Queue-wait nanoseconds summed over every compute job.
    queue_wait_nanos: AtomicU64,
    /// Compute nanoseconds summed over every compute job.
    compute_nanos: AtomicU64,
    /// Coalesced-verify-group size histogram: K=1 / 2–4 / 5–16+.
    coalesced: [AtomicU64; 3],
}

impl ArtifactStore {
    /// A store of `opts.shards` warm engines over `base` (each shard's
    /// engine owns a clone; per-request configs may still override the
    /// searchable knobs).
    ///
    /// # Errors
    ///
    /// [`CorepartError::Config`] when `base` is invalid or `shards`
    /// is 0.
    pub fn new(base: SystemConfig, opts: &StoreOptions) -> Result<Self, CorepartError> {
        if opts.shards == 0 {
            return Err(CorepartError::Config {
                message: "artifact store needs at least one shard".into(),
            });
        }
        let mut shards = Vec::with_capacity(opts.shards);
        for _ in 0..opts.shards {
            shards.push(StoreShard {
                engine: Engine::new(base.clone())?,
                meta: Mutex::new(HashMap::new()),
                results: Mutex::new(HashMap::new()),
                latencies: Mutex::new(Vec::new()),
                requests: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                declined: AtomicU64::new(0),
                depth: AtomicU64::new(0),
                depth_max: AtomicU64::new(0),
            });
        }
        Ok(ArtifactStore {
            shards,
            budget: opts.budget_bytes,
            hot_touches: opts.hot_touches.max(1),
            used: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            queue_wait_nanos: AtomicU64::new(0),
            compute_nanos: AtomicU64::new(0),
            coalesced: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
        })
    }

    /// The number of fingerprint shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a fingerprint routes to.
    pub fn shard_of(&self, fingerprint: u64) -> usize {
        (fingerprint % self.shards.len() as u64) as usize
    }

    /// The base configuration every shard engine was built over.
    pub fn base_config(&self) -> &SystemConfig {
        self.shards[0].engine.config()
    }

    /// Direct access to the warm engine of `fingerprint`'s shard,
    /// *without* settling the byte ledger — the serve worker's
    /// coalescing prewarm runs batched verifications through it, and
    /// the solo requests that follow settle whatever the prewarm
    /// published (same worker thread, so no settle is ever skipped).
    pub fn shard_engine(&self, fingerprint: u64) -> &Engine {
        &self.shards[self.shard_of(fingerprint)].engine
    }

    /// Records one compute job entering shard `shard`'s worker queue.
    pub fn note_enqueued(&self, shard: usize) {
        let s = &self.shards[shard];
        let depth = s.depth.fetch_add(1, Ordering::Relaxed) + 1;
        s.depth_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records one compute job leaving shard `shard`'s worker queue.
    pub fn note_dequeued(&self, shard: usize) {
        self.shards[shard].depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records one drained same-fingerprint verify group of `group`
    /// requests in the coalescing histogram.
    pub fn note_coalesced(&self, group: usize) {
        let bucket = match group {
            0 | 1 => 0,
            2..=4 => 1,
            _ => 2,
        };
        self.coalesced[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one compute job's queue-wait vs compute latency split.
    pub fn note_request_split(&self, queue_nanos: u64, compute_nanos: u64) {
        self.queue_wait_nanos
            .fetch_add(queue_nanos, Ordering::Relaxed);
        self.compute_nanos
            .fetch_add(compute_nanos, Ordering::Relaxed);
    }

    /// The routing fingerprint of an `(application, workload)` pair —
    /// identity only, no config knobs, so every configuration of one
    /// app lands on the same shard and shares its artifacts.
    pub fn fingerprint(app: &Application, workload: &Workload) -> u64 {
        crate::engine::fnv64(&crate::engine::session_identity(app, workload))
    }

    /// Runs `f` against the warm engine of `fingerprint`'s shard, then
    /// settles the byte ledger: new pool entries are measured and
    /// admitted (or declined), grown entries re-measured, and every
    /// entry whose key starts with `identity` (see
    /// `corepart::engine`'s session identity) is touched for LRU/heat.
    ///
    /// Runs on the caller's thread — the serve layer provides the
    /// one-worker-per-shard discipline; in-process callers (tests,
    /// benches) may call from anywhere, racing requests settle under
    /// the shard ledger lock.
    ///
    /// # Errors
    ///
    /// Whatever `f` returns; the ledger is settled either way (a failed
    /// preparation is memoized by the engine and accounted like any
    /// other entry).
    pub fn with_engine<R>(
        &self,
        fingerprint: u64,
        identity: &str,
        f: impl FnOnce(&Engine) -> Result<R, CorepartError>,
    ) -> (Result<R, CorepartError>, RequestStats) {
        let started = Instant::now();
        let shard_idx = self.shard_of(fingerprint);
        let shard = &self.shards[shard_idx];

        let store_hit = {
            let meta = shard.meta.lock().expect("shard ledger poisoned");
            meta.keys()
                .any(|k| k.kind == ArtifactKind::Baseline && k.key.starts_with(identity))
        };

        let result = f(&shard.engine);
        self.settle(shard, identity);

        let elapsed_nanos = started.elapsed().as_nanos() as u64;
        shard
            .latencies
            .lock()
            .expect("latency ledger poisoned")
            .push(elapsed_nanos);
        shard.requests.fetch_add(1, Ordering::Relaxed);
        if store_hit {
            shard.hits.fetch_add(1, Ordering::Relaxed);
        }
        (
            result,
            RequestStats {
                shard: shard_idx,
                store_hit,
                elapsed_nanos,
            },
        )
    }

    /// Runs `f` like [`ArtifactStore::with_engine`], memoizing the
    /// deterministic `String` half of its output under `request_key`
    /// ([`ArtifactKind::Result`] in the byte ledger — same budget, LRU
    /// and admission rules as every other artifact). A later call with
    /// the same `request_key` returns the memoized text without
    /// touching the engine; its second output is `None` then, since no
    /// fresh computation produced one.
    ///
    /// Sound because every response `result` is a pure function of the
    /// full request against the store's base configuration —
    /// `request_key` must encode all of it (the serve layer derives it
    /// from the session identity plus every request knob).
    ///
    /// # Errors
    ///
    /// Whatever `f` returns; errors are not memoized here (the engine
    /// pools already memoize failed stage artifacts).
    pub fn with_result<T>(
        &self,
        fingerprint: u64,
        identity: &str,
        request_key: &str,
        f: impl FnOnce(&Engine) -> Result<(String, T), CorepartError>,
    ) -> (Result<(String, Option<T>), CorepartError>, RequestStats) {
        let started = Instant::now();
        let shard_idx = self.shard_of(fingerprint);
        let shard = &self.shards[shard_idx];
        let ekey = EntryKey {
            kind: ArtifactKind::Result,
            key: request_key.to_owned(),
        };

        let memoized = {
            let results = shard.results.lock().expect("result pool poisoned");
            results.get(request_key).cloned()
        };
        if let Some(text) = memoized {
            let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
            {
                let mut meta = shard.meta.lock().expect("shard ledger poisoned");
                if let Some(entry) = meta.get_mut(&ekey) {
                    entry.tick = tick;
                    entry.touches += 1;
                }
            }
            let elapsed_nanos = started.elapsed().as_nanos() as u64;
            shard
                .latencies
                .lock()
                .expect("latency ledger poisoned")
                .push(elapsed_nanos);
            shard.requests.fetch_add(1, Ordering::Relaxed);
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return (
                Ok((text, None)),
                RequestStats {
                    shard: shard_idx,
                    store_hit: true,
                    elapsed_nanos,
                },
            );
        }

        let (outcome, stats) = self.with_engine(fingerprint, identity, f);
        let outcome = outcome.map(|(text, extra)| {
            self.admit_result(shard, &ekey, &text);
            (text, Some(extra))
        });
        (outcome, stats)
    }

    /// Admits one freshly computed result payload to the ledger (or
    /// declines it when only hot entries could make room).
    fn admit_result(&self, shard: &StoreShard, ekey: &EntryKey, text: &str) {
        /// Map/ledger bookkeeping charge per memoized result.
        const RESULT_OVERHEAD: u64 = 64;
        let bytes = (ekey.key.len() + text.len()) as u64 + RESULT_OVERHEAD;
        let tick = self.tick.load(Ordering::Relaxed);
        let mut meta = shard.meta.lock().expect("shard ledger poisoned");
        if meta.contains_key(ekey) {
            // A racing identical request already admitted it.
            return;
        }
        if self.reserve_or_evict(shard, &mut meta, bytes, ekey, false) {
            meta.insert(
                ekey.clone(),
                EntryMeta {
                    bytes,
                    tick,
                    touches: 1,
                },
            );
            shard
                .results
                .lock()
                .expect("result pool poisoned")
                .insert(ekey.key.clone(), text.to_owned());
        } else {
            shard.declined.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Reconciles one shard's ledger against its engine pools after a
    /// request: admission, growth, touches, budget enforcement.
    fn settle(&self, shard: &StoreShard, identity: &str) {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut meta = shard.meta.lock().expect("shard ledger poisoned");
        for kind in ArtifactKind::ALL {
            for key in shard.engine.pool_keys(kind) {
                let touched = key.starts_with(identity);
                let ekey = EntryKey { kind, key };
                match meta.get(&ekey).cloned() {
                    Some(mut entry) => {
                        if touched {
                            entry.tick = tick;
                            entry.touches += 1;
                        }
                        if kind.grows() {
                            match shard.engine.artifact_bytes(kind, &ekey.key) {
                                Some(now) if now > entry.bytes => {
                                    let hot = entry.touches >= self.hot_touches;
                                    let delta = now - entry.bytes;
                                    if self.reserve_or_evict(shard, &mut meta, delta, &ekey, hot) {
                                        entry.bytes = now;
                                    } else {
                                        // The entry outgrew what the
                                        // budget can host: drop it
                                        // entirely (releases its old
                                        // reservation; the delta was
                                        // never reserved).
                                        self.evict_entry(shard, &mut meta, &ekey);
                                        continue;
                                    }
                                }
                                Some(now) if now < entry.bytes => {
                                    self.used.fetch_sub(entry.bytes - now, Ordering::Relaxed);
                                    entry.bytes = now;
                                }
                                _ => {}
                            }
                        }
                        meta.insert(ekey, entry);
                    }
                    None => {
                        // New entry. Still-computing entries report no
                        // size yet; they are settled by the request
                        // that completes them.
                        let Some(bytes) = shard.engine.artifact_bytes(kind, &ekey.key) else {
                            continue;
                        };
                        if self.reserve_or_evict(shard, &mut meta, bytes, &ekey, false) {
                            meta.insert(
                                ekey,
                                EntryMeta {
                                    bytes,
                                    tick,
                                    touches: u64::from(touched),
                                },
                            );
                        } else {
                            // Admission declined: the artifact was
                            // computed and served, but is not worth a
                            // hot entry's seat.
                            shard.engine.evict_artifact(kind, &ekey.key);
                            shard.declined.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
    }

    /// CAS-reserves `need` bytes, evicting this shard's LRU entries
    /// (cold first; hot ones only when `allow_hot`) until the
    /// reservation fits. `protect` is never chosen as a victim. Returns
    /// whether the reservation succeeded; on failure nothing is
    /// reserved (but evictions performed along the way stand).
    fn reserve_or_evict(
        &self,
        shard: &StoreShard,
        meta: &mut HashMap<EntryKey, EntryMeta>,
        need: u64,
        protect: &EntryKey,
        allow_hot: bool,
    ) -> bool {
        loop {
            if self.try_reserve(need) {
                return true;
            }
            let Some(victim) = pick_victim(meta, Some(protect), allow_hot, self.hot_touches) else {
                return false;
            };
            self.evict_entry(shard, meta, &victim);
        }
    }

    /// Reserves `need` bytes iff the total stays within budget.
    fn try_reserve(&self, need: u64) -> bool {
        let mut used = self.used.load(Ordering::Relaxed);
        loop {
            if used.saturating_add(need) > self.budget {
                return false;
            }
            match self.used.compare_exchange_weak(
                used,
                used + need,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => used = actual,
            }
        }
    }

    /// Drops one accounted entry: pool, ledger, byte reservation.
    fn evict_entry(
        &self,
        shard: &StoreShard,
        meta: &mut HashMap<EntryKey, EntryMeta>,
        key: &EntryKey,
    ) {
        if let Some(entry) = meta.remove(key) {
            if key.kind == ArtifactKind::Result {
                shard
                    .results
                    .lock()
                    .expect("result pool poisoned")
                    .remove(&key.key);
            } else {
                shard.engine.evict_artifact(key.kind, &key.key);
            }
            self.used.fetch_sub(entry.bytes, Ordering::Relaxed);
            shard.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time snapshot of hit rates, evictions, occupancy and
    /// latency percentiles.
    pub fn stats(&self) -> StoreStats {
        let mut out = StoreStats {
            budget_bytes: self.budget,
            ..StoreStats::default()
        };
        let mut all_latencies = Vec::new();
        for shard in &self.shards {
            let (entries, bytes) = {
                let meta = shard.meta.lock().expect("shard ledger poisoned");
                (
                    meta.len() as u64,
                    meta.values().map(|e| e.bytes).sum::<u64>(),
                )
            };
            let s = ShardStats {
                requests: shard.requests.load(Ordering::Relaxed),
                hits: shard.hits.load(Ordering::Relaxed),
                evictions: shard.evictions.load(Ordering::Relaxed),
                declined: shard.declined.load(Ordering::Relaxed),
                entries,
                bytes,
                depth: shard.depth.load(Ordering::Relaxed),
                depth_max: shard.depth_max.load(Ordering::Relaxed),
            };
            out.requests += s.requests;
            out.hits += s.hits;
            out.evictions += s.evictions;
            out.declined += s.declined;
            out.bytes += s.bytes;
            out.shards.push(s);
            all_latencies.extend_from_slice(&shard.latencies.lock().expect("latency ledger"));
        }
        out.latency = latency_stats(&mut all_latencies);
        out.pipeline = PipelineStats {
            queue_wait_nanos: self.queue_wait_nanos.load(Ordering::Relaxed),
            compute_nanos: self.compute_nanos.load(Ordering::Relaxed),
            coalesced_k1: self.coalesced[0].load(Ordering::Relaxed),
            coalesced_k2_4: self.coalesced[1].load(Ordering::Relaxed),
            coalesced_k5_16: self.coalesced[2].load(Ordering::Relaxed),
        };
        out
    }
}

/// Deterministic victim selection: the least-recently-used *cold*
/// entry first (touches below `hot_touches`); hot entries only when
/// `allow_hot`. Ties on the LRU tick — e.g. two entries admitted by
/// one request — break by `(kind, key)`, never by hash-map iteration
/// order.
fn pick_victim(
    meta: &HashMap<EntryKey, EntryMeta>,
    protect: Option<&EntryKey>,
    allow_hot: bool,
    hot_touches: u64,
) -> Option<EntryKey> {
    let candidate = |hot_pass: bool| {
        meta.iter()
            .filter(|(k, _)| Some(*k) != protect)
            .filter(|(_, e)| (e.touches >= hot_touches) == hot_pass)
            .min_by(|(ka, ea), (kb, eb)| ea.tick.cmp(&eb.tick).then_with(|| ka.cmp(kb)))
            .map(|(k, _)| k.clone())
    };
    candidate(false).or_else(|| if allow_hot { candidate(true) } else { None })
}

/// Nearest-rank percentiles; sorts `samples` in place.
fn latency_stats(samples: &mut [u64]) -> LatencyStats {
    if samples.is_empty() {
        return LatencyStats::default();
    }
    samples.sort_unstable();
    let rank = |p: u64| {
        let n = samples.len() as u64;
        let idx = (p * n).div_ceil(100).max(1) - 1;
        samples[idx.min(n - 1) as usize]
    };
    LatencyStats {
        count: samples.len() as u64,
        p50_nanos: rank(50),
        p95_nanos: rank(95),
        p99_nanos: rank(99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta_of(entries: &[(&str, ArtifactKind, u64, u64)]) -> HashMap<EntryKey, EntryMeta> {
        entries
            .iter()
            .map(|&(key, kind, tick, touches)| {
                (
                    EntryKey {
                        kind,
                        key: key.to_owned(),
                    },
                    EntryMeta {
                        bytes: 100,
                        tick,
                        touches,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn victim_is_lru_cold_with_deterministic_tie_break() {
        // Two cold entries share the oldest tick: the (kind, key) order
        // decides, independent of hash-map iteration order.
        let meta = meta_of(&[
            ("b", ArtifactKind::Baseline, 1, 1),
            ("a", ArtifactKind::Baseline, 1, 1),
            ("c", ArtifactKind::Baseline, 2, 1),
        ]);
        for _ in 0..8 {
            let v = pick_victim(&meta, None, false, 2).unwrap();
            assert_eq!((v.kind, v.key.as_str()), (ArtifactKind::Baseline, "a"));
        }
        // Same tick, different kinds: ledger order (Prepared < Baseline
        // < Schedule) breaks the tie.
        let meta = meta_of(&[
            ("x", ArtifactKind::Schedule, 5, 0),
            ("x", ArtifactKind::Prepared, 5, 0),
        ]);
        let v = pick_victim(&meta, None, false, 2).unwrap();
        assert_eq!(v.kind, ArtifactKind::Prepared);
    }

    #[test]
    fn hot_entries_survive_cold_pressure() {
        // The hot entry is older (tick 1) than the cold one (tick 9):
        // plain LRU would evict it first, admission control does not.
        let meta = meta_of(&[
            ("hot", ArtifactKind::Baseline, 1, 5),
            ("cold", ArtifactKind::Baseline, 9, 1),
        ]);
        let v = pick_victim(&meta, None, false, 2).unwrap();
        assert_eq!(v.key, "cold");
        // With only hot entries left, a cold admission finds no victim…
        let meta = meta_of(&[("hot", ArtifactKind::Baseline, 1, 5)]);
        assert!(pick_victim(&meta, None, false, 2).is_none());
        // …while a hot requester may reclaim from its peers.
        let v = pick_victim(&meta, None, true, 2).unwrap();
        assert_eq!(v.key, "hot");
    }

    #[test]
    fn protected_entry_is_never_the_victim() {
        let meta = meta_of(&[("only", ArtifactKind::Baseline, 1, 0)]);
        let protect = EntryKey {
            kind: ArtifactKind::Baseline,
            key: "only".to_owned(),
        };
        assert!(pick_victim(&meta, Some(&protect), true, 2).is_none());
    }

    #[test]
    fn latency_percentiles_nearest_rank() {
        let mut empty: [u64; 0] = [];
        assert_eq!(latency_stats(&mut empty).count, 0);
        let mut one = [7u64];
        let l = latency_stats(&mut one);
        assert_eq!((l.p50_nanos, l.p95_nanos, l.p99_nanos), (7, 7, 7));
        let mut hundred: Vec<u64> = (1..=100).rev().collect();
        let l = latency_stats(&mut hundred);
        assert_eq!(l.count, 100);
        assert_eq!((l.p50_nanos, l.p95_nanos, l.p99_nanos), (50, 95, 99));
    }

    #[test]
    fn budget_reservation_is_a_hard_ceiling() {
        let store = ArtifactStore::new(
            SystemConfig::new(),
            &StoreOptions {
                shards: 1,
                budget_bytes: 1000,
                hot_touches: 2,
            },
        )
        .unwrap();
        assert!(store.try_reserve(600));
        assert!(!store.try_reserve(600), "601..1200 exceeds the budget");
        assert!(store.try_reserve(400));
        assert!(!store.try_reserve(1));
        store.used.fetch_sub(500, Ordering::Relaxed);
        assert!(store.try_reserve(500));
    }
}
