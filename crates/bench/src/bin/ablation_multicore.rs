//! Extension experiment **E3** — one shared ASIC core vs several
//! tailored cores.
//!
//! The paper's flow synthesizes one datapath for all chosen clusters
//! ("ASIC core(s)" in §1 notwithstanding). When clusters have
//! dissimilar operation mixes, the shared datapath clocks idle units
//! during every cluster's execution — §3.1's wasted energy, inside the
//! ASIC. This experiment runs the greedy split search on every paper
//! application and reports whether distributing the clusters over
//! multiple tailored cores pays.
//!
//! ```text
//! cargo run --release -p corepart-bench --bin ablation_multicore
//! ```

use corepart::engine::Engine;
use corepart::multicore::split_search;
use corepart::partition::Partitioner;
use corepart::prepare::Workload;
use corepart::system::SystemConfig;
use corepart_bench::SEED;
use corepart_workloads::all;

fn main() {
    let config = SystemConfig::new();
    println!("E3: single shared ASIC core vs greedy multi-core split\n");
    println!(
        "{:<8} {:>7} {:>14} {:>10} {:>12} | per-core (clusters@set)",
        "app", "cores", "total energy", "saving%", "HW cells"
    );
    for w in all() {
        let app = w.app().expect("bundled workload lowers");
        let workload = Workload::from_arrays(w.arrays(SEED));
        let engine = Engine::new(config.clone()).expect("engine");
        let session = engine.session(&app, &workload);
        let partitioner = Partitioner::new(&session).expect("initial run");
        match split_search(&partitioner).expect("split search") {
            Some((mc, detail)) => {
                let per_core: Vec<String> = detail
                    .cores
                    .iter()
                    .map(|c| {
                        format!(
                            "{}@{}(U_R {:.2})",
                            c.partition.clusters.len(),
                            c.partition.set.name(),
                            c.u_r
                        )
                    })
                    .collect();
                let saving = detail
                    .metrics
                    .energy_saving_vs(partitioner.initial())
                    .unwrap_or(0.0);
                println!(
                    "{:<8} {:>7} {:>14} {:>10.1} {:>12} | {}",
                    w.name,
                    mc.cores.len(),
                    format!("{}", detail.metrics.total_energy()),
                    saving,
                    detail.metrics.geq.cells(),
                    per_core.join(", "),
                );
            }
            None => println!("{:<8} (no partition found)", w.name),
        }
    }
    println!(
        "\nReading: a split beyond one core appears exactly where the chosen\n\
         clusters' operation mixes diverge; homogeneous partitions stay on\n\
         one shared datapath (the paper's configuration)."
    );
}
