//! Baseline partitioners for comparison.
//!
//! The related work the paper positions against (§2) partitions for
//! *performance* under a cost budget, not for power. This module
//! provides:
//!
//! * [`performance_partition`] — a speedup-greedy partitioner in the
//!   spirit of the classic approaches ([4–9] in the paper): maximize
//!   cycle reduction subject to a hardware budget, energy ignored.
//! * [`random_partition`] — a seeded random choice, the sanity floor.
//! * [`best_single_verified`] — an oracle that fully verifies *every*
//!   single-cluster candidate and returns the true best; used to
//!   measure how much the estimate-driven search loses.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use corepart_tech::units::GateEq;

use crate::error::CorepartError;
use crate::evaluate::{Partition, PartitionDetail};
use crate::parallel::par_map;
use crate::partition::{PartitionOutcome, Partitioner, SearchStats};

/// Speedup-greedy baseline: picks the single (cluster, set) pair with
/// the largest verified cycle reduction whose hardware stays within
/// `geq_budget`, ignoring energy entirely.
///
/// # Errors
///
/// Simulation failures (infeasible sets are skipped).
pub fn performance_partition(
    partitioner: &Partitioner<'_>,
    config: &crate::system::SystemConfig,
    geq_budget: GateEq,
) -> Result<PartitionOutcome, CorepartError> {
    let candidates = partitioner.candidates();
    let mut search = SearchStats {
        candidates: candidates.len(),
        ..SearchStats::default()
    };
    let initial_cycles = partitioner.initial().total_cycles();

    // Verify the whole grid in parallel (each verification replays the
    // captured trace, memoized per hardware-block set), then fold in
    // grid order — identical winner and tie-breaks to the sequential
    // scan.
    let grid: Vec<Partition> = candidates
        .iter()
        .flat_map(|cand| {
            config
                .resource_sets
                .iter()
                .map(|set| Partition::single(cand.cluster, set.clone()))
        })
        .collect();
    search.estimated += grid.len();
    let results = par_map(&grid, partitioner.threads(), |_, partition| {
        partitioner.evaluate(partition)
    });

    let mut best: Option<(Partition, PartitionDetail)> = None;
    for (partition, result) in grid.into_iter().zip(results) {
        match result {
            Ok(detail) => {
                search.verifications += 1;
                if partitioner.replay_engine().is_some() {
                    search.replayed += 1;
                }
                if detail.metrics.geq > geq_budget {
                    continue;
                }
                if detail.metrics.total_cycles() >= initial_cycles {
                    continue;
                }
                let better = best
                    .as_ref()
                    .map(|(_, b)| detail.metrics.total_cycles() < b.metrics.total_cycles())
                    .unwrap_or(true);
                if better {
                    best = Some((partition, detail));
                }
            }
            Err(CorepartError::Sched(_)) => search.infeasible += 1,
            Err(other) => return Err(other),
        }
    }

    Ok(PartitionOutcome {
        initial: partitioner.initial().clone(),
        best,
        search,
    })
}

/// Random baseline: a uniformly random feasible (cluster, set) pair.
///
/// Deterministic for a given `seed`. Returns `Ok(None)` when no
/// candidate is feasible.
///
/// # Errors
///
/// Simulation failures other than infeasibility.
pub fn random_partition(
    partitioner: &Partitioner<'_>,
    config: &crate::system::SystemConfig,
    seed: u64,
) -> Result<Option<(Partition, PartitionDetail)>, CorepartError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let candidates = partitioner.candidates();
    for (ci, _) in candidates.iter().enumerate() {
        for (si, _) in config.resource_sets.iter().enumerate() {
            pairs.push((ci, si));
        }
    }
    pairs.shuffle(&mut rng);
    for (ci, si) in pairs {
        let partition = Partition::single(candidates[ci].cluster, config.resource_sets[si].clone());
        match partitioner.evaluate(&partition) {
            Ok(detail) => return Ok(Some((partition, detail))),
            Err(CorepartError::Sched(_)) => continue,
            Err(other) => return Err(other),
        }
    }
    Ok(None)
}

/// Oracle: verifies every single-cluster candidate × set and returns
/// the one with the lowest total energy.
///
/// # Errors
///
/// Simulation failures other than infeasibility.
pub fn best_single_verified(
    partitioner: &Partitioner<'_>,
    config: &crate::system::SystemConfig,
) -> Result<Option<(Partition, PartitionDetail)>, CorepartError> {
    let grid: Vec<Partition> = partitioner
        .candidates()
        .iter()
        .flat_map(|cand| {
            config
                .resource_sets
                .iter()
                .map(|set| Partition::single(cand.cluster, set.clone()))
        })
        .collect();
    let results = par_map(&grid, partitioner.threads(), |_, partition| {
        partitioner.evaluate(partition)
    });
    let mut best: Option<(Partition, PartitionDetail)> = None;
    for (partition, result) in grid.into_iter().zip(results) {
        match result {
            Ok(detail) => {
                let better = best
                    .as_ref()
                    .map(|(_, b)| {
                        detail.metrics.total_energy().joules() < b.metrics.total_energy().joules()
                    })
                    .unwrap_or(true);
                if better {
                    best = Some((partition, detail));
                }
            }
            Err(CorepartError::Sched(_)) => continue,
            Err(other) => return Err(other),
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::prepare::Workload;
    use crate::system::SystemConfig;
    use corepart_ir::cdfg::Application;
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;

    const DSP: &str = r#"app dsp; var x[256]; var y[256]; var s = 0;
        func main() {
            for (var i = 1; i < 255; i = i + 1) {
                y[i] = (x[i - 1] * 3 + x[i] * 5 + x[i + 1] * 3) >> 4;
            }
            for (var j = 0; j < 256; j = j + 1) { s = s + y[j]; }
            return s;
        }"#;

    fn setup() -> (Engine, Application, Workload) {
        let app = lower(&parse(DSP).unwrap()).unwrap();
        let workload = Workload::from_arrays([(
            "x",
            (0..256)
                .map(|i| (i * 31 + 7) % 255 - 128)
                .collect::<Vec<i64>>(),
        )]);
        (Engine::new(SystemConfig::new()).unwrap(), app, workload)
    }

    #[test]
    fn performance_baseline_improves_cycles() {
        let (engine, app, workload) = setup();
        let session = engine.session(&app, &workload);
        let partitioner = Partitioner::new(&session).unwrap();
        let outcome =
            performance_partition(&partitioner, session.config(), GateEq::new(20_000)).unwrap();
        let (_, detail) = outcome.best.expect("perf baseline finds something");
        assert!(detail.metrics.total_cycles() < outcome.initial.total_cycles());
        assert!(detail.metrics.geq <= GateEq::new(20_000));
    }

    #[test]
    fn our_partitioner_never_loses_on_energy_vs_perf_baseline() {
        let (engine, app, workload) = setup();
        let session = engine.session(&app, &workload);
        let partitioner = Partitioner::new(&session).unwrap();
        let ours = partitioner.run().unwrap();
        let perf =
            performance_partition(&partitioner, session.config(), GateEq::new(20_000)).unwrap();
        let ours_e = ours.best.as_ref().unwrap().1.metrics.total_energy();
        let perf_e = perf.best.as_ref().unwrap().1.metrics.total_energy();
        // Energy-driven must be at least as good on energy (within the
        // estimate-vs-verify slack; allow 10%).
        assert!(
            ours_e.joules() <= perf_e.joules() * 1.10,
            "ours {ours_e} vs perf {perf_e}"
        );
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let (engine, app, workload) = setup();
        let session = engine.session(&app, &workload);
        let partitioner = Partitioner::new(&session).unwrap();
        let a = random_partition(&partitioner, session.config(), 42)
            .unwrap()
            .unwrap();
        let b = random_partition(&partitioner, session.config(), 42)
            .unwrap()
            .unwrap();
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn oracle_at_least_as_good_as_any_single() {
        let (engine, app, workload) = setup();
        let session = engine.session(&app, &workload);
        let partitioner = Partitioner::new(&session).unwrap();
        let oracle = best_single_verified(&partitioner, session.config())
            .unwrap()
            .unwrap();
        let rand = random_partition(&partitioner, session.config(), 7)
            .unwrap()
            .unwrap();
        assert!(
            oracle.1.metrics.total_energy().joules()
                <= rand.1.metrics.total_energy().joules() + 1e-15
        );
    }
}
