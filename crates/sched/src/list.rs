//! ASAP/ALAP analysis and resource-constrained list scheduling —
//! `do_list_schedule(c_i, rs_i)` of Fig. 1 line 8.
//!
//! "A simple list schedule is performed on the current cluster in order
//! to prepare the following step" (§3.2). Priority is mobility
//! (ALAP − ASAP): zero-mobility operations sit on the critical path and
//! go first, the classic list-scheduling heuristic.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use corepart_tech::resource::{OpClass, ResourceKind, ResourceLibrary, ResourceSet};

use crate::dfg::BlockDfg;

/// Scheduling failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// No resource in the designer's set can execute this class.
    NoResource {
        /// The unexecutable class.
        class: OpClass,
        /// The resource set's name.
        set: String,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NoResource { class, set } => write!(
                f,
                "resource set `{set}` has no resource able to execute {class} operations"
            ),
        }
    }
}

impl Error for SchedError {}

/// Assignment of one operation in the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSlot {
    /// Start control step.
    pub step: u64,
    /// Executing resource kind.
    pub kind: ResourceKind,
    /// Occupancy in control steps.
    pub latency: u64,
}

/// The schedule of one basic block on the candidate datapath.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSchedule {
    /// Per-instruction slots (same indexing as the block's `insts`).
    pub slots: Vec<OpSlot>,
    /// Schedule length in control steps (all ops completed).
    pub length: u64,
}

impl BlockSchedule {
    /// An empty schedule (empty block): zero length.
    pub fn empty() -> Self {
        BlockSchedule {
            slots: Vec::new(),
            length: 0,
        }
    }

    /// Maximum concurrent instances of `kind` required by this
    /// schedule (accounting multi-cycle occupancy).
    pub fn peak_usage(&self, kind: ResourceKind) -> u32 {
        let mut peak = 0u32;
        for t in 0..self.length {
            let busy = self
                .slots
                .iter()
                .filter(|s| s.kind == kind && s.step <= t && t < s.step + s.latency)
                .count() as u32;
            peak = peak.max(busy);
        }
        peak
    }
}

/// ASAP start times (unconstrained resources, earliest-latency kinds).
pub fn asap(dfg: &BlockDfg, lib: &ResourceLibrary) -> Vec<u64> {
    let lat = min_latencies(dfg, lib);
    let mut start = vec![0u64; dfg.len()];
    for i in 0..dfg.len() {
        for &p in &dfg.preds[i] {
            start[i] = start[i].max(start[p] + lat[p]);
        }
    }
    start
}

/// ALAP start times against the ASAP-critical-path bound.
pub fn alap(dfg: &BlockDfg, lib: &ResourceLibrary) -> Vec<u64> {
    let lat = min_latencies(dfg, lib);
    let asap_start = asap(dfg, lib);
    let total: u64 = (0..dfg.len())
        .map(|i| asap_start[i] + lat[i])
        .max()
        .unwrap_or(0);
    let mut finish = vec![total; dfg.len()];
    for i in (0..dfg.len()).rev() {
        for &s in &dfg.succs[i] {
            finish[i] = finish[i].min(finish[s] - lat[s]);
        }
    }
    (0..dfg.len()).map(|i| finish[i] - lat[i]).collect()
}

fn min_latencies(dfg: &BlockDfg, lib: &ResourceLibrary) -> Vec<u64> {
    dfg.classes
        .iter()
        .map(|&c| {
            lib.candidates_for(c)
                .iter()
                .map(|&k| lib.expect_spec(k).latency())
                .min()
                .unwrap_or(1)
        })
        .collect()
}

/// Scheduling options.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SchedOptions {
    /// Operator chaining: dependent single-cycle operations may share a
    /// control step when their combined combinational delay fits the
    /// datapath clock period (the classic HLS latency optimization; the
    /// paper's "simple list schedule" does not chain, so the default is
    /// off).
    pub chaining: bool,
}

/// List-schedules one block under the designer's resource set.
///
/// # Errors
///
/// [`SchedError::NoResource`] when an operation class cannot execute on
/// any resource present in `set`.
pub fn list_schedule(
    dfg: &BlockDfg,
    set: &ResourceSet,
    lib: &ResourceLibrary,
) -> Result<BlockSchedule, SchedError> {
    list_schedule_opts(dfg, set, lib, SchedOptions::default())
}

/// List scheduling with explicit [`SchedOptions`].
///
/// # Errors
///
/// [`SchedError::NoResource`] as for [`list_schedule`].
pub fn list_schedule_opts(
    dfg: &BlockDfg,
    set: &ResourceSet,
    lib: &ResourceLibrary,
    options: SchedOptions,
) -> Result<BlockSchedule, SchedError> {
    if dfg.is_empty() {
        return Ok(BlockSchedule::empty());
    }
    // Feasibility: every class must have a candidate with capacity.
    for &class in &dfg.classes {
        let ok = lib.candidates_for(class).iter().any(|&k| set.count(k) > 0);
        if !ok {
            return Err(SchedError::NoResource {
                class,
                set: set.name().to_owned(),
            });
        }
    }

    let asap_t = asap(dfg, lib);
    let alap_t = alap(dfg, lib);
    let mobility: Vec<u64> = (0..dfg.len())
        .map(|i| alap_t[i].saturating_sub(asap_t[i]))
        .collect();

    let n = dfg.len();
    let mut slots: Vec<Option<OpSlot>> = vec![None; n];
    let mut finish: Vec<u64> = vec![u64::MAX; n];
    // Combinational depth (ns) at which each op's result settles within
    // its control step — the chaining budget bookkeeping.
    let mut chain_depth: Vec<f64> = vec![0.0; n];
    let mut remaining = n;
    // In-flight occupancy: (kind -> Vec<finish_step>).
    let mut busy: BTreeMap<ResourceKind, Vec<u64>> = BTreeMap::new();
    let mut t: u64 = 0;

    // The datapath clock period: the slowest resource the designer put
    // in the set bounds the step length chaining must fit into.
    let period_ns = set
        .iter()
        .map(|(k, _)| lib.expect_spec(k).t_cyc().nanos())
        .fold(0.0f64, f64::max);

    while remaining > 0 {
        // Release completed occupancies.
        for fs in busy.values_mut() {
            fs.retain(|&f| f > t);
        }
        // With chaining, an op scheduled this step can enable its
        // same-step successors — iterate to a fixpoint within the step.
        loop {
            let mut scheduled_any = false;
            // Ready ops: unscheduled, every pred either completed by t
            // or (chaining) a single-cycle op placed earlier in step t.
            let mut ready: Vec<usize> = (0..n)
                .filter(|&i| {
                    slots[i].is_none()
                        && dfg.preds[i].iter().all(|&p| {
                            (finish[p] != u64::MAX && finish[p] <= t)
                                || (options.chaining
                                    && slots[p]
                                        .map(|s| s.step == t && s.latency == 1)
                                        .unwrap_or(false))
                        })
                })
                .collect();
            ready.sort_by_key(|&i| (mobility[i], i));

            for i in ready {
                let class = dfg.classes[i];
                // Smallest candidate with a free instance this step.
                let chosen = lib.candidates_for(class).into_iter().find(|&k| {
                    set.count(k) > 0
                        && (busy.get(&k).map(|v| v.len()).unwrap_or(0) as u32) < set.count(k)
                });
                let Some(kind) = chosen else { continue };
                let spec = lib.expect_spec(kind);
                let latency = spec.latency();

                // Chain-depth feasibility.
                let mut depth_in = 0.0f64;
                let mut feasible = true;
                for &p in &dfg.preds[i] {
                    if finish[p] != u64::MAX && finish[p] <= t {
                        continue; // registered input, depth 0
                    }
                    // Same-step chained predecessor.
                    if latency > 1 {
                        // Multi-cycle units latch their inputs at the
                        // step boundary — they cannot chain.
                        feasible = false;
                        break;
                    }
                    depth_in = depth_in.max(chain_depth[p]);
                }
                if !feasible {
                    continue;
                }
                let depth = depth_in + spec.t_cyc().nanos();
                if options.chaining && depth > period_ns + 1e-9 {
                    continue; // would violate the clock period
                }

                slots[i] = Some(OpSlot {
                    step: t,
                    kind,
                    latency,
                });
                finish[i] = t + latency;
                chain_depth[i] = depth;
                busy.entry(kind).or_default().push(t + latency);
                remaining -= 1;
                scheduled_any = true;
            }
            if !scheduled_any || !options.chaining {
                break;
            }
        }
        t += 1;
        debug_assert!(
            t < 1_000_000,
            "list scheduler failed to make progress (cyclic DFG?)"
        );
    }

    let length = finish.iter().copied().max().unwrap_or(0);
    Ok(BlockSchedule {
        slots: slots.into_iter().map(|s| s.expect("scheduled")).collect(),
        length,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use corepart_ir::cdfg::Application;
    use corepart_ir::lower::lower;
    use corepart_ir::op::BlockId;
    use corepart_ir::parser::parse;
    use corepart_tech::resource::ResourceKind;

    fn dfg_of(src: &str) -> BlockDfg {
        let app: Application = lower(&parse(src).unwrap()).unwrap();
        let bid = (0..app.blocks().len() as u32)
            .map(BlockId)
            .max_by_key(|&b| app.block(b).insts.len())
            .unwrap();
        BlockDfg::build(&app, bid)
    }

    fn lib() -> ResourceLibrary {
        ResourceLibrary::cmos6()
    }

    #[test]
    fn asap_respects_chains() {
        let dfg = dfg_of("app t; var g = 1; func main() { g = ((g + 1) * 2) + 3; }");
        let lib = lib();
        let a = asap(&dfg, &lib);
        // Start times must be non-decreasing along every edge.
        for i in 0..dfg.len() {
            for &p in &dfg.preds[i] {
                assert!(a[i] > a[p], "ASAP start of {i} not after pred {p}");
            }
        }
    }

    #[test]
    fn alap_not_before_asap() {
        let dfg =
            dfg_of("app t; var g = 1; var h = 2; func main() { g = g * h + (h << 2) - (g & h); }");
        let lib = lib();
        let a = asap(&dfg, &lib);
        let l = alap(&dfg, &lib);
        for i in 0..dfg.len() {
            assert!(l[i] >= a[i], "op {i}: alap {} < asap {}", l[i], a[i]);
        }
    }

    #[test]
    fn schedule_respects_dependencies() {
        let dfg =
            dfg_of("app t; var a[8]; var g = 1; func main() { a[g] = a[g - 1] * 2 + a[g + 1]; }");
        let set = ResourceSet::default_family()[2].clone(); // m-dsp
        let s = list_schedule(&dfg, &set, &lib()).unwrap();
        for i in 0..dfg.len() {
            for &p in &dfg.preds[i] {
                assert!(
                    s.slots[i].step >= s.slots[p].step + s.slots[p].latency,
                    "op {i} starts before pred {p} finishes"
                );
            }
        }
    }

    #[test]
    fn schedule_respects_capacity() {
        let dfg = dfg_of(
            "app t; var g=1; var h=2; var i=3; var j=4; var o=0;
             func main() { o = g*h + h*i + i*j + j*g + g*i + h*j; }",
        );
        let set = ResourceSet::builder("one-mul")
            .with(ResourceKind::Alu, 2)
            .with(ResourceKind::Multiplier, 1)
            .with(ResourceKind::MemPort, 1)
            .build();
        let s = list_schedule(&dfg, &set, &lib()).unwrap();
        assert!(s.peak_usage(ResourceKind::Multiplier) <= 1);
        assert!(s.peak_usage(ResourceKind::Alu) <= 2);
    }

    #[test]
    fn more_resources_never_lengthen() {
        let dfg = dfg_of(
            "app t; var a[16]; func main() { a[8] = a[0]*a[1] + a[2]*a[3] + a[4]*a[5] + a[6]*a[7]; }",
        );
        let family = ResourceSet::default_family();
        let lib = lib();
        let mut prev = u64::MAX;
        for set in &family[2..] {
            // only sets that include a multiplier
            let s = list_schedule(&dfg, set, &lib).unwrap();
            assert!(
                s.length <= prev,
                "set {} lengthened schedule: {} > {prev}",
                set.name(),
                s.length
            );
            prev = s.length;
        }
    }

    #[test]
    fn missing_resource_is_error() {
        let dfg = dfg_of("app t; var g = 7; func main() { g = g / 3; }");
        let set = ResourceSet::builder("no-div")
            .with(ResourceKind::Alu, 1)
            .with(ResourceKind::MemPort, 1)
            .build();
        let err = list_schedule(&dfg, &set, &lib()).unwrap_err();
        assert!(matches!(err, SchedError::NoResource { .. }));
        assert!(err.to_string().contains("no-div"));
    }

    #[test]
    fn empty_block_schedules_empty() {
        let dfg = BlockDfg {
            block: BlockId(0),
            classes: vec![],
            preds: vec![],
            succs: vec![],
        };
        let set = ResourceSet::default_family()[0].clone();
        let s = list_schedule(&dfg, &set, &lib()).unwrap();
        assert_eq!(s.length, 0);
        assert!(s.slots.is_empty());
    }

    #[test]
    fn chaining_shortens_dependency_chains() {
        // A comparator chain: each comparison settles in 12.5 ns, so
        // two fit the 25 ns step (the memory port pins the period).
        // Adders at 15 ns deliberately do NOT chain pairwise — that is
        // covered by `chaining_respects_clock_period`.
        let dfg = dfg_of("app t; var g = 1; func main() { g = ((((g < 9) < 8) < 7) < 6) < 5; }");
        let lib = lib();
        let set = ResourceSet::builder("cmps")
            .with(ResourceKind::Comparator, 4)
            .with(ResourceKind::Alu, 1)
            .with(ResourceKind::MemPort, 1)
            .build();
        let plain = list_schedule_opts(&dfg, &set, &lib, SchedOptions::default()).unwrap();
        let chained =
            list_schedule_opts(&dfg, &set, &lib, SchedOptions { chaining: true }).unwrap();
        assert!(
            chained.length < plain.length,
            "chaining {} vs plain {}",
            chained.length,
            plain.length
        );
        // Dependencies still hold in the chained sense: a consumer is
        // in the same step or later than each producer.
        for i in 0..dfg.len() {
            for &p in &dfg.preds[i] {
                assert!(chained.slots[i].step >= chained.slots[p].step);
            }
        }
    }

    #[test]
    fn chaining_respects_clock_period() {
        // Two dependent 15 ns adds exceed the 25 ns period: chaining
        // must NOT pack them into one step.
        let dfg = dfg_of("app t; var g = 1; func main() { g = (g + 1) + 2; }");
        let lib = lib();
        let set = ResourceSet::builder("adders")
            .with(ResourceKind::Adder, 2)
            .with(ResourceKind::Alu, 1) // the copy into `g` needs a Move unit
            .with(ResourceKind::MemPort, 1)
            .build();
        let s = list_schedule_opts(&dfg, &set, &lib, SchedOptions { chaining: true }).unwrap();
        let adds: Vec<&OpSlot> = s
            .slots
            .iter()
            .filter(|sl| sl.kind == ResourceKind::Adder)
            .collect();
        assert_eq!(adds.len(), 2);
        assert_ne!(adds[0].step, adds[1].step, "15+15 ns cannot fit 25 ns");
    }

    #[test]
    fn chaining_never_chains_into_multicycle_ops() {
        let dfg = dfg_of("app t; var g = 2; func main() { g = (g + 1) * 3; }");
        let lib = lib();
        let set = ResourceSet::default_family()[2].clone();
        let s = list_schedule_opts(&dfg, &set, &lib, SchedOptions { chaining: true }).unwrap();
        // The multiply must start strictly after its (chained or not)
        // add completes its step.
        let mul = s
            .slots
            .iter()
            .position(|sl| sl.kind == ResourceKind::Multiplier)
            .expect("multiply scheduled");
        for &p in &dfg.preds[mul] {
            assert!(
                s.slots[mul].step >= s.slots[p].step + s.slots[p].latency,
                "multiply chained illegally"
            );
        }
    }

    #[test]
    fn default_options_match_plain_schedule() {
        let dfg =
            dfg_of("app t; var a[8]; var g = 1; func main() { a[g] = a[g - 1] * 2 + a[g + 1]; }");
        let set = ResourceSet::default_family()[2].clone();
        let lib = lib();
        let plain = list_schedule(&dfg, &set, &lib).unwrap();
        let opt = list_schedule_opts(&dfg, &set, &lib, SchedOptions::default()).unwrap();
        assert_eq!(plain, opt);
    }

    #[test]
    fn multi_cycle_ops_occupy_resources() {
        // Two multiplies on one multiplier: second starts after first's
        // 2-cycle occupancy ends.
        let dfg = dfg_of("app t; var g=3; var h=5; var o=0; func main() { o = g*g + h*h; }");
        let set = ResourceSet::builder("tiny")
            .with(ResourceKind::Alu, 1)
            .with(ResourceKind::Multiplier, 1)
            .with(ResourceKind::MemPort, 1)
            .build();
        let s = list_schedule(&dfg, &set, &lib()).unwrap();
        let muls: Vec<&OpSlot> = s
            .slots
            .iter()
            .filter(|sl| sl.kind == ResourceKind::Multiplier)
            .collect();
        assert_eq!(muls.len(), 2);
        let (a, b) = (muls[0], muls[1]);
        let (first, second) = if a.step <= b.step { (a, b) } else { (b, a) };
        assert!(second.step >= first.step + first.latency);
    }
}
