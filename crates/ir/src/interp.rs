//! Profiling interpreter for [`Application`]s.
//!
//! The paper obtains `#ex_times` — how often each control step's source
//! region executes — "through profiling" (§3.4, footnote 14), and its
//! gate-level energy verification needs data-dependent switching
//! activity. This interpreter provides both: it executes the CDFG
//! directly on concrete inputs, counting block executions and
//! accumulating per-instruction operand *toggle* statistics (Hamming
//! distance between consecutive operand values), which the
//! `corepart-sched` switching-energy estimator consumes.

use std::collections::HashMap;

use crate::cdfg::Application;
use crate::error::IrError;
use crate::op::{BlockId, Inst, Operand, Terminator, VarId};

/// Per-instruction activity statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpActivity {
    /// How many times the instruction executed.
    pub execs: u64,
    /// Total Hamming distance between consecutive input operand values.
    pub input_toggles: u64,
    /// Total Hamming distance between consecutive result values.
    pub output_toggles: u64,
}

impl OpActivity {
    /// Mean input toggles per execution (0 when never executed).
    pub fn avg_input_toggles(&self) -> f64 {
        if self.execs == 0 {
            0.0
        } else {
            self.input_toggles as f64 / self.execs as f64
        }
    }

    /// Mean output toggles per execution (0 when never executed).
    pub fn avg_output_toggles(&self) -> f64 {
        if self.execs == 0 {
            0.0
        } else {
            self.output_toggles as f64 / self.execs as f64
        }
    }
}

/// The result of one profiled run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecProfile {
    /// Executions of each block, indexed by [`BlockId`].
    pub block_counts: Vec<u64>,
    /// Total executed instructions (plus one per block visit).
    pub steps: u64,
    /// Array loads executed.
    pub loads: u64,
    /// Array stores executed.
    pub stores: u64,
    /// Divisions/remainders with a zero divisor (evaluate to 0).
    pub div_by_zero: u64,
    /// Per-instruction activity, mirroring `blocks[b].insts[i]`.
    pub activity: Vec<Vec<OpActivity>>,
    /// `main`'s return value, if it returned one.
    pub return_value: Option<i64>,
}

impl ExecProfile {
    /// Executions of one block.
    pub fn count(&self, b: BlockId) -> u64 {
        self.block_counts[b.0 as usize]
    }

    /// Total executions of all blocks in `blocks` (e.g. a cluster).
    pub fn region_count(&self, blocks: &[BlockId]) -> u64 {
        blocks.iter().map(|&b| self.count(b)).sum()
    }

    /// How many times a region is *entered* — the execution count of its
    /// entry block. For a cluster this is the paper's per-invocation
    /// multiplier of the bus-transfer scheme (§3.3 a–d).
    pub fn invocations(&self, entry: BlockId) -> u64 {
        self.count(entry)
    }

    /// Dynamic instruction count within `blocks`.
    pub fn region_insts(&self, blocks: &[BlockId]) -> u64 {
        blocks
            .iter()
            .map(|&b| self.count(b) * self.activity[b.0 as usize].len() as u64)
            .sum()
    }
}

/// An interpreter bound to one application.
///
/// ```
/// use corepart_ir::{interp::Interpreter, lower::lower, parser::parse};
///
/// let prog = parse(
///     "app t; var a[4]; func main() { a[3] = a[0] + a[1]; return a[3]; }",
/// )?;
/// let app = lower(&prog)?;
/// let mut interp = Interpreter::new(&app);
/// interp.set_array("a", &[10, 20, 0, 0])?;
/// let profile = interp.run(10_000)?;
/// assert_eq!(profile.return_value, Some(30));
/// assert_eq!(interp.array("a")?[3], 30);
/// # Ok::<(), corepart_ir::error::IrError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Interpreter<'a> {
    app: &'a Application,
    vars: Vec<i64>,
    mem: Vec<i64>,
    array_index: HashMap<String, usize>,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter with zeroed memory and variables.
    pub fn new(app: &'a Application) -> Self {
        let array_index = app
            .arrays()
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name.clone(), i))
            .collect();
        Interpreter {
            app,
            vars: vec![0; app.vars().len()],
            mem: vec![0; app.memory_words() as usize],
            array_index,
        }
    }

    /// The application being interpreted.
    pub fn app(&self) -> &Application {
        self.app
    }

    /// Sets the contents of a named array (input data).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Interp`] when the array does not exist or
    /// `data` is longer than the array.
    pub fn set_array(&mut self, name: &str, data: &[i64]) -> Result<(), IrError> {
        let &idx = self.array_index.get(name).ok_or_else(|| IrError::Interp {
            message: format!("no array named `{name}`"),
        })?;
        let info = &self.app.arrays()[idx];
        if data.len() > info.len as usize {
            return Err(IrError::Interp {
                message: format!(
                    "array `{name}` holds {} words, {} given",
                    info.len,
                    data.len()
                ),
            });
        }
        let base = info.base_word as usize;
        self.mem[base..base + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads the contents of a named array (e.g. to check outputs).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Interp`] when the array does not exist.
    pub fn array(&self, name: &str) -> Result<&[i64], IrError> {
        let &idx = self.array_index.get(name).ok_or_else(|| IrError::Interp {
            message: format!("no array named `{name}`"),
        })?;
        let info = &self.app.arrays()[idx];
        let base = info.base_word as usize;
        Ok(&self.mem[base..base + info.len as usize])
    }

    /// Reads the current value of a named variable.
    pub fn var(&self, name: &str) -> Option<i64> {
        let idx = self
            .app
            .vars()
            .iter()
            .position(|v| v.name.as_deref() == Some(name))?;
        Some(self.vars[idx])
    }

    fn value(&self, op: Operand) -> i64 {
        match op {
            Operand::Var(v) => self.vars[v.0 as usize],
            Operand::Const(c) => c,
        }
    }

    /// Runs the application from its entry, profiling as it goes.
    ///
    /// Variables are reset (globals to their initializers); memory is
    /// kept, so call [`Interpreter::set_array`] first to provide inputs.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Interp`] when `max_steps` is exceeded (likely
    /// a non-terminating program) or an array index is out of bounds.
    pub fn run(&mut self, max_steps: u64) -> Result<ExecProfile, IrError> {
        self.vars.iter_mut().for_each(|v| *v = 0);
        for &(v, init) in self.app.globals_init() {
            self.vars[v.0 as usize] = init;
        }

        let blocks = self.app.blocks();
        let mut profile = ExecProfile {
            block_counts: vec![0; blocks.len()],
            steps: 0,
            loads: 0,
            stores: 0,
            div_by_zero: 0,
            activity: blocks
                .iter()
                .map(|b| vec![OpActivity::default(); b.insts.len()])
                .collect(),
            return_value: None,
        };
        // Last-seen operand values per instruction for toggle counting.
        let mut last_inputs: Vec<Vec<(i64, i64)>> = blocks
            .iter()
            .map(|b| vec![(0i64, 0i64); b.insts.len()])
            .collect();
        let mut last_outputs: Vec<Vec<i64>> =
            blocks.iter().map(|b| vec![0i64; b.insts.len()]).collect();

        let mut cur = self.app.entry();
        loop {
            profile.block_counts[cur.0 as usize] += 1;
            profile.steps += 1;
            if profile.steps > max_steps {
                return Err(IrError::Interp {
                    message: format!("exceeded {max_steps} steps (non-terminating program?)"),
                });
            }
            let bi = cur.0 as usize;
            for (ii, inst) in self.app.block(cur).insts.iter().enumerate() {
                profile.steps += 1;
                if profile.steps > max_steps {
                    return Err(IrError::Interp {
                        message: format!("exceeded {max_steps} steps (non-terminating program?)"),
                    });
                }
                let (in1, in2, out): (i64, i64, i64) = match inst {
                    Inst::Const { dst, value } => {
                        self.vars[dst.0 as usize] = *value;
                        (0, 0, *value)
                    }
                    Inst::Copy { dst, src } => {
                        let v = self.value(*src);
                        self.vars[dst.0 as usize] = v;
                        (v, 0, v)
                    }
                    Inst::Unary { dst, op, src } => {
                        let a = self.value(*src);
                        let r = op.eval(a);
                        self.vars[dst.0 as usize] = r;
                        (a, 0, r)
                    }
                    Inst::Binary { dst, op, lhs, rhs } => {
                        let a = self.value(*lhs);
                        let b = self.value(*rhs);
                        if matches!(op, crate::op::BinOp::Div | crate::op::BinOp::Rem) && b == 0 {
                            profile.div_by_zero += 1;
                        }
                        let r = op.eval(a, b);
                        self.vars[dst.0 as usize] = r;
                        (a, b, r)
                    }
                    Inst::Load { dst, array, index } => {
                        let idx = self.value(*index);
                        let addr = self.check_addr(*array, idx)?;
                        let v = self.mem[addr];
                        self.vars[dst.0 as usize] = v;
                        profile.loads += 1;
                        (idx, 0, v)
                    }
                    Inst::Store {
                        array,
                        index,
                        value,
                    } => {
                        let idx = self.value(*index);
                        let v = self.value(*value);
                        let addr = self.check_addr(*array, idx)?;
                        self.mem[addr] = v;
                        profile.stores += 1;
                        (idx, v, v)
                    }
                    Inst::Call { .. } => {
                        return Err(IrError::Interp {
                            message: "Call instructions must be inlined before interpretation"
                                .into(),
                        });
                    }
                };
                let act = &mut profile.activity[bi][ii];
                act.execs += 1;
                let (l1, l2) = last_inputs[bi][ii];
                act.input_toggles += hamming(l1, in1) + hamming(l2, in2);
                act.output_toggles += hamming(last_outputs[bi][ii], out);
                last_inputs[bi][ii] = (in1, in2);
                last_outputs[bi][ii] = out;
            }
            match &self.app.block(cur).term {
                Terminator::Jump(b) => cur = *b,
                Terminator::Branch {
                    cond,
                    then_block,
                    else_block,
                } => {
                    cur = if self.value(*cond) != 0 {
                        *then_block
                    } else {
                        *else_block
                    };
                }
                Terminator::Return(op) => {
                    profile.return_value = op.map(|o| self.value(o));
                    return Ok(profile);
                }
            }
        }
    }

    fn check_addr(&self, array: crate::op::ArrayId, idx: i64) -> Result<usize, IrError> {
        let info = self.app.array(array);
        if idx < 0 || idx as u64 >= u64::from(info.len) {
            return Err(IrError::Interp {
                message: format!(
                    "index {idx} out of bounds for array `{}` of length {}",
                    info.name, info.len
                ),
            });
        }
        Ok(info.base_word as usize + idx as usize)
    }
}

fn hamming(a: i64, b: i64) -> u64 {
    u64::from((a ^ b).count_ones())
}

#[allow(dead_code)]
fn _unused_var_id(_: VarId) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse;

    fn app(src: &str) -> Application {
        lower(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn runs_arithmetic() {
        let a = app("app t; func main() { var x = 6; var y = 7; return x * y; }");
        let p = Interpreter::new(&a).run(1000).unwrap();
        assert_eq!(p.return_value, Some(42));
    }

    #[test]
    fn loop_counts_blocks() {
        let a = app(
            "app t; var acc = 0; func main() { for (var i = 0; i < 10; i = i + 1) { acc = acc + i; } return acc; }",
        );
        let p = Interpreter::new(&a).run(10_000).unwrap();
        assert_eq!(p.return_value, Some(45));
        // The loop body block executed exactly 10 times.
        let loop_node = a.structure().iter().find(|n| n.is_loop()).unwrap();
        let body_counts: Vec<u64> = loop_node.blocks().iter().map(|&b| p.count(b)).collect();
        assert!(body_counts.contains(&10), "{body_counts:?}");
        // Header ran 11 times (10 taken + 1 exit).
        assert!(body_counts.contains(&11), "{body_counts:?}");
    }

    #[test]
    fn arrays_io() {
        let a = app(
            "app t; var x[4]; var y[4]; func main() { for (var i = 0; i < 4; i = i + 1) { y[i] = x[i] * 2; } }",
        );
        let mut it = Interpreter::new(&a);
        it.set_array("x", &[1, 2, 3, 4]).unwrap();
        let p = it.run(10_000).unwrap();
        assert_eq!(it.array("y").unwrap(), &[2, 4, 6, 8]);
        assert_eq!(p.loads, 4);
        assert_eq!(p.stores, 4);
    }

    #[test]
    fn globals_initialized_each_run() {
        let a = app("app t; var g = 5; func main() { g = g + 1; return g; }");
        let mut it = Interpreter::new(&a);
        assert_eq!(it.run(100).unwrap().return_value, Some(6));
        // Re-running resets g to 5 again.
        assert_eq!(it.run(100).unwrap().return_value, Some(6));
    }

    #[test]
    fn function_calls_execute() {
        let a = app(r#"app t;
            func square(x) { return x * x; }
            func main() { return square(3) + square(4); }"#);
        let p = Interpreter::new(&a).run(1000).unwrap();
        assert_eq!(p.return_value, Some(25));
    }

    #[test]
    fn conditional_both_arms() {
        let a = app(r#"app t; var out[2];
            func main() {
                for (var i = 0; i < 2; i = i + 1) {
                    if (i == 0) { out[i] = 10; } else { out[i] = 20; }
                }
            }"#);
        let mut it = Interpreter::new(&a);
        it.run(1000).unwrap();
        assert_eq!(it.array("out").unwrap(), &[10, 20]);
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let a = app("app t; var g = 1; func main() { while (g > 0) { g = 1; } }");
        let err = Interpreter::new(&a).run(500).unwrap_err();
        assert!(err.to_string().contains("exceeded"));
    }

    #[test]
    fn out_of_bounds_is_error() {
        let a = app("app t; var b[2]; func main() { b[5] = 1; }");
        let err = Interpreter::new(&a).run(100).unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn div_by_zero_counted_not_fatal() {
        let a = app("app t; var z = 0; func main() { var x = 7 / z; return x; }");
        let p = Interpreter::new(&a).run(100).unwrap();
        assert_eq!(p.return_value, Some(0));
        assert_eq!(p.div_by_zero, 1);
    }

    #[test]
    fn activity_counts_toggles() {
        // Alternating data maximizes toggles; constant data minimizes.
        let a = app(
            "app t; var x[8]; var acc = 0; func main() { for (var i = 0; i < 8; i = i + 1) { acc = acc + x[i]; } return acc; }",
        );
        let mut hot = Interpreter::new(&a);
        hot.set_array("x", &[0, -1, 0, -1, 0, -1, 0, -1]).unwrap();
        let p_hot = hot.run(10_000).unwrap();
        let mut cold = Interpreter::new(&a);
        cold.set_array("x", &[0, 0, 0, 0, 0, 0, 0, 0]).unwrap();
        let p_cold = cold.run(10_000).unwrap();
        let toggles = |p: &ExecProfile| -> u64 {
            p.activity
                .iter()
                .flatten()
                .map(|a| a.input_toggles + a.output_toggles)
                .sum()
        };
        assert!(toggles(&p_hot) > toggles(&p_cold));
        assert_eq!(p_hot.return_value, Some(-4));
    }

    #[test]
    fn region_helpers() {
        let a = app(
            "app t; var acc = 0; func main() { for (var i = 0; i < 5; i = i + 1) { acc = acc + 1; } }",
        );
        let p = Interpreter::new(&a).run(1000).unwrap();
        let loop_node = a.structure().iter().find(|n| n.is_loop()).unwrap();
        let region = loop_node.blocks();
        assert!(p.region_count(region) > 5);
        assert!(p.region_insts(region) >= 10);
        assert_eq!(p.invocations(region[0]), 6); // header: 5 taken + 1 exit
    }

    #[test]
    fn set_array_validates() {
        let a = app("app t; var b[2]; func main() { }");
        let mut it = Interpreter::new(&a);
        assert!(it.set_array("nope", &[1]).is_err());
        assert!(it.set_array("b", &[1, 2, 3]).is_err());
        assert!(it.set_array("b", &[1]).is_ok());
        assert!(it.array("nope").is_err());
    }

    #[test]
    fn var_lookup() {
        let a = app("app t; var g = 3; func main() { g = 9; }");
        let mut it = Interpreter::new(&a);
        it.run(100).unwrap();
        assert_eq!(it.var("g"), Some(9));
        assert_eq!(it.var("missing"), None);
    }
}
