//! Offline subset of the `criterion` 0.5 API.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the slice of criterion its benches use: [`Criterion`],
//! [`Bencher::iter`], benchmark groups with
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It is a plain wall-clock harness: each benchmark runs a short
//! warm-up, then `sample_size` timed iterations, and prints the
//! minimum, median, and mean per-iteration time. There is no
//! statistical analysis, outlier rejection, plotting, or baseline
//! comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Times one benchmark routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly, timing each call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Short warm-up so lazy initialisation and cache effects don't
        // land in the first sample.
        let warmup = Instant::now();
        while warmup.elapsed() < Duration::from_millis(50) {
            std::hint::black_box(routine());
        }
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{name:<40} min {:>12} median {:>12} mean {:>12} ({} samples)",
        format!("{min:.2?}"),
        format!("{median:.2?}"),
        format!("{mean:.2?}"),
        sorted.len()
    );
}

/// The benchmark harness: registers and runs benchmarks.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Defines and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(name, &b.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A named set of benchmarks sharing a group prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` against one `input`, labelled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.text);
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            samples: Vec::new(),
        };
        f(&mut b, input);
        report(&label, &b.samples);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Only a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Re-export used by generated code; identical to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples_and_returns() {
        let mut calls = 0u32;
        Criterion::default()
            .sample_size(5)
            .bench_function("smoke", |b| {
                b.iter(|| {
                    calls += 1;
                    calls
                })
            });
        // Warm-up plus 5 timed samples.
        assert!(calls >= 5);
    }

    #[test]
    fn group_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 4).text, "f/4");
        assert_eq!(BenchmarkId::from_parameter(16).text, "16");
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(1), &1usize, |b, &n| {
            b.iter(|| n + 1)
        });
        group.finish();
    }
}
