//! Extension experiment **E2** — the partitioner across the DSP
//! micro-kernel spectrum.
//!
//! The paper evaluates six whole applications; this sweep runs the same
//! flow over seven classic kernels with distinct computational
//! signatures (MAC-bound, recurrence-bound, shift/logic-bound,
//! control-bound, butterfly) to map where low-power partitioning pays
//! off and where the algorithm correctly declines:
//!
//! * `fir` / `dot` / `matmul` / `fft` — regular MAC kernels: large
//!   savings expected.
//! * `iir` — serial recurrence: savings with little or negative
//!   speedup (the `trick` signature).
//! * `crc` — bit-serial shifts/xors: the barrel shifter datapath's
//!   moment.
//! * `hist` — data-dependent control: the partitioner should find
//!   little or nothing.
//!
//! ```text
//! cargo run --release -p corepart-bench --bin kernel_sweep
//! ```

use corepart::flow::DesignFlow;
use corepart::prepare::Workload;
use corepart::system::SystemConfig;
use corepart_bench::SEED;
use corepart_workloads::kernels::default_suite;

fn main() {
    println!("E2: partitioning the DSP micro-kernel suite\n");
    println!(
        "{:<8} {:>10} {:>8} {:>10} {:>8} {:>8} {:>12}",
        "kernel", "saving%", "chg%", "HW cells", "U_R", "U_uP", "set"
    );
    for k in default_suite(SEED) {
        let flow = DesignFlow::with_config(SystemConfig::new());
        let result = flow
            .run_source(&k.source, Workload::from_arrays(k.arrays.clone()))
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        match &result.outcome.best {
            Some((partition, detail)) => println!(
                "{:<8} {:>10.1} {:>8.1} {:>10} {:>8.3} {:>8.3} {:>12}",
                k.name,
                result.outcome.energy_saving_percent().unwrap_or(0.0),
                result.outcome.time_change_percent().unwrap_or(0.0),
                detail.metrics.geq.cells(),
                detail.u_r,
                detail.u_up,
                partition.set.name(),
            ),
            None => println!(
                "{:<8} {:>10} {:>8} {:>10} {:>8} {:>8} {:>12}",
                k.name, "--", "--", "--", "--", "--", "(none)"
            ),
        }
    }
}
