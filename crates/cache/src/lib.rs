//! # corepart-cache
//!
//! Trace-driven cache, main-memory and bus substrate of `corepart` — the
//! reconstruction of the paper's WARTS-style trace tool + cache profiler
//! + analytical energy models (§3.5, §4).
//!
//! * [`config`] — cache geometry/policy configuration (the knobs §1 says
//!   must be re-tuned per partition).
//! * [`cache`] — a set-associative, LRU/FIFO/random, write-back or
//!   write-through cache simulator.
//! * [`hierarchy`] — I-cache + D-cache + main memory with per-event
//!   energy accounting and µP stall cycles.
//!
//! ## Example
//!
//! ```
//! use corepart_cache::config::CacheConfig;
//! use corepart_cache::hierarchy::Hierarchy;
//! use corepart_tech::process::CmosProcess;
//!
//! let mut h = Hierarchy::new(
//!     CacheConfig::default_icache(),
//!     CacheConfig::default_dcache(),
//!     &CmosProcess::cmos6(),
//!     1 << 20,
//! );
//! for i in 0..1000u32 {
//!     h.ifetch(0x0010_0000 + (i % 32) * 4);
//! }
//! let report = h.report();
//! assert!(report.icache.miss_ratio() < 0.05);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod config;
pub mod hierarchy;

pub use cache::{AccessOutcome, Cache, CacheSnapshot, CacheStats};
pub use config::{CacheConfig, Replacement, WritePolicy};
pub use hierarchy::{Hierarchy, HierarchyReport, HierarchySnapshot, MemEvent};
