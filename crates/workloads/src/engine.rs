//! `engine` — an engine-control algorithm.
//!
//! A closed-loop spark/fuel controller: table interpolation of the base
//! ignition advance, per-cylinder knock correction, and an exhaust
//! feedback integrator. Control-dominated with a moderate arithmetic
//! core — the paper's smallest saving (≈31 %) with a tiny ASIC core.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Control iterations (engine revolutions simulated).
pub const STEPS: usize = 220;
/// Cylinders.
pub const CYL: usize = 6;

/// The behavioral source.
pub const SOURCE: &str = r#"
app engine;

const STEPS = 220;
const CYL = 6;
const MAP_N = 16;

var rpm_trace[220];
var load_trace[220];
var knock[6];
var advance_map[16];
var fuel_map[16];
var out_adv[220];
var out_fuel[220];

func main() {
    var lambda = 0;
    for (var t = 0; t < STEPS; t = t + 1) {
        var rpm = rpm_trace[t];
        var load = load_trace[t];

        // Map lookup with linear interpolation (rpm in [600, 6600)).
        var idx = (rpm - 600) >> 8;
        if (idx < 0) { idx = 0; }
        if (idx > MAP_N - 2) { idx = MAP_N - 2; }
        var frac = (rpm - 600) & 255;
        var a0 = advance_map[idx];
        var a1 = advance_map[idx + 1];
        var base_adv = a0 + (((a1 - a0) * frac) >> 8);
        var f0 = fuel_map[idx];
        var f1 = fuel_map[idx + 1];
        var base_fuel = f0 + (((f1 - f0) * frac) >> 8);

        // Per-cylinder knock retard (hot-ish arithmetic inner loop).
        var retard = 0;
        for (var c = 0; c < CYL; c = c + 1) {
            var k = knock[c];
            retard = retard + ((k * load) >> 10);
            knock[c] = (k * 15) >> 4;
        }

        // Lambda feedback integrator with anti-windup.
        var err = load - (base_fuel >> 2);
        lambda = lambda + (err >> 3);
        if (lambda > 512) { lambda = 512; }
        if (lambda < -512) { lambda = -512; }

        var adv = base_adv - retard;
        if (adv < 0) { adv = 0; }
        out_adv[t] = adv;
        out_fuel[t] = base_fuel + (lambda >> 2);
    }
    return lambda;
}
"#;

/// Deterministic traces: an rpm sweep with load transients and initial
/// knock energy.
pub fn arrays(seed: u64) -> Vec<(String, Vec<i64>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rpm: Vec<i64> = (0..STEPS)
        .map(|t| 800 + (t as i64 * 25) % 5400 + rng.gen_range(-40..40))
        .collect();
    let load: Vec<i64> = (0..STEPS)
        .map(|t| 200 + ((t as i64 * 7) % 600) + rng.gen_range(-20..20))
        .collect();
    let knock: Vec<i64> = (0..CYL).map(|_| rng.gen_range(0..900)).collect();
    let advance_map: Vec<i64> = (0..16).map(|i| 10 + i * 2).collect();
    let fuel_map: Vec<i64> = (0..16).map(|i| 400 + i * 55).collect();
    vec![
        ("rpm_trace".to_owned(), rpm),
        ("load_trace".to_owned(), load),
        ("knock".to_owned(), knock),
        ("advance_map".to_owned(), advance_map),
        ("fuel_map".to_owned(), fuel_map),
    ]
}
