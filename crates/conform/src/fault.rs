//! Fault-injection scenarios.
//!
//! Each scenario damages one layer of the spine on purpose and asserts
//! the *documented* degradation — and nothing else:
//!
//! * **cap-overflow** — with `trace_cap_bytes` 0 or too small for the
//!   run, the capture is discarded and every verification falls back
//!   to direct simulation, **bit-identically**
//!   ([`corepart::system::SystemConfig::trace_cap_bytes`]);
//! * **corrupt-trace** — a capture whose bytes were damaged fails its
//!   fingerprint validation and replay refuses it with
//!   [`SimError::TraceCorrupt`] — it must never panic and never return
//!   statistics;
//! * **truncated-trace** — a capture whose tail was cut *and*
//!   re-fingerprinted (so validation alone cannot see the damage) is
//!   still rejected by replay's event-conservation check;
//! * **batch-corrupt** — a batched replay over a damaged capture fails
//!   the *whole batch* with [`SimError::TraceCorrupt`]: no panic and
//!   no partial lane results, even when some lanes alone would have
//!   replayed cleanly;
//! * **shard-corrupt** — the same wholesale rejection through the
//!   *threaded, stretch-sharded* walk, where the damage (a truncated
//!   tail) manifests beyond the first shard: every earlier shard round
//!   replays cleanly, and the batch must still fail as one
//!   [`SimError::TraceCorrupt`] with no partial statistics;
//! * **cache-evict** — recomputing an evicted schedule-cache entry
//!   reproduces the cached [`ScheduledCluster`] exactly;
//! * **cache-poison** — a deliberately wrong cache entry is returned
//!   verbatim by the cache (caches are authoritative), and the
//!   evict-and-recompute differential detects the divergence.
//!
//! All hooks live behind the `conform` feature of `corepart-isa` and
//! `corepart-sched`; production code cannot reach them.

use std::panic::{catch_unwind, AssertUnwindSafe};

use corepart::engine::Engine;
use corepart::error::CorepartError;
use corepart::evaluate::{evaluate_initial_captured, Partition};
use corepart::flow::DesignFlow;
use corepart::partition::{schedule_key, Partitioner};
use corepart::prepare::Workload;
use corepart::verify::{replay_batch, replay_batch_with, replay_run, BatchOptions};
use corepart_ir::cdfg::Application;
use corepart_ir::op::BlockId;
use corepart_isa::simulator::SimError;
use corepart_sched::cache::ScheduledCluster;

use crate::gen::GenApp;
use crate::oracle::{base_config, lower_app, Violation};

/// Runs every fault scenario on one generated application.
pub fn check_app(app: &GenApp) -> Vec<Violation> {
    let lowered = match lower_app(app) {
        Ok(a) => a,
        Err(e) => {
            return vec![Violation {
                oracle: "generate",
                detail: format!("generated app does not lower: {e}"),
            }]
        }
    };
    let workload = Workload::from_arrays(app.workload_arrays());
    check_lowered(&lowered, &workload)
}

/// The fault battery over an already-lowered application.
pub fn check_lowered(app: &Application, workload: &Workload) -> Vec<Violation> {
    let mut violations = Vec::new();
    violations.extend(cap_overflow(app, workload));
    violations.extend(trace_damage(app, workload));
    violations.extend(cache_damage(app, workload));
    violations
}

fn err(oracle: &'static str, detail: impl Into<String>) -> Violation {
    Violation {
        oracle,
        detail: detail.into(),
    }
}

/// Scenario: trace caps of 0 (capture disabled) and 64 bytes (any real
/// run overflows) must both yield the exact outcome of the default
/// cap — the fallback to direct simulation is bit-identical.
fn cap_overflow(app: &Application, workload: &Workload) -> Vec<Violation> {
    let mut violations = Vec::new();
    let base = base_config();
    let reference =
        match DesignFlow::with_config(base.clone()).run_app(app.clone(), workload.clone()) {
            Ok(r) => r.outcome,
            Err(e) => return vec![err("error", format!("reference flow: {e}"))],
        };
    for cap in [0usize, 64] {
        match DesignFlow::with_config(base.clone().with_trace_cap(cap))
            .run_app(app.clone(), workload.clone())
        {
            Ok(result) => {
                if result.outcome != reference {
                    violations.push(err(
                        "cap-overflow",
                        format!("trace_cap_bytes = {cap} changed the search outcome"),
                    ));
                }
            }
            Err(e) => violations.push(err(
                "cap-overflow",
                format!("trace_cap_bytes = {cap} flow errored instead of falling back: {e}"),
            )),
        }
    }
    violations
}

/// Scenarios: corrupted and truncated captures must be rejected with
/// [`SimError::TraceCorrupt`] — never a panic, never statistics.
fn trace_damage(app: &Application, workload: &Workload) -> Vec<Violation> {
    let mut violations = Vec::new();
    let engine = match Engine::new(base_config()) {
        Ok(e) => e,
        Err(e) => return vec![err("error", format!("engine build: {e}"))],
    };
    let session = engine.session(app, workload);
    let (prepared, config) = match session.prepared() {
        Ok(p) => (p, session.config()),
        Err(e) => return vec![err("error", format!("prepare: {e}"))],
    };
    let trace = match evaluate_initial_captured(prepared, config, usize::MAX) {
        Ok((_, _, Some(trace))) => trace,
        Ok((_, _, None)) => {
            return vec![err(
                "corrupt-trace",
                "uncapped capture unexpectedly absent".to_string(),
            )]
        }
        Err(e) => return vec![err("error", format!("captured evaluation: {e}"))],
    };
    let hw_blocks = std::collections::HashSet::new();

    // Corrupt one byte of whichever stream has one.
    let mut corrupted = trace.clone();
    if !corrupted.corrupt_byte(true, 0) && !corrupted.corrupt_byte(false, 0) {
        violations.push(err(
            "corrupt-trace",
            "capture has no bytes to corrupt".to_string(),
        ));
    } else {
        if corrupted.validate().is_ok() {
            violations.push(err(
                "corrupt-trace",
                "corrupted capture passed fingerprint validation".to_string(),
            ));
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            replay_run(prepared, config, &corrupted, &hw_blocks)
        }));
        match outcome {
            Err(_) => violations.push(err(
                "corrupt-trace",
                "replay of a corrupted capture panicked".to_string(),
            )),
            Ok(Ok(_)) => violations.push(err(
                "corrupt-trace",
                "replay of a corrupted capture produced statistics".to_string(),
            )),
            Ok(Err(SimError::TraceCorrupt { .. })) => {}
            Ok(Err(other)) => violations.push(err(
                "corrupt-trace",
                format!("replay failed with {other} instead of TraceCorrupt"),
            )),
        }
    }

    // Truncate the pc stream and re-stamp the fingerprint, so only the
    // replay-side event-conservation check can notice.
    let mut truncated = trace.clone();
    let removed = truncated.truncate_pcs(3);
    truncated.refingerprint();
    if removed == 0 {
        violations.push(err(
            "truncated-trace",
            "capture has no pc bytes to truncate".to_string(),
        ));
    } else {
        if let Err(e) = truncated.validate() {
            violations.push(err(
                "truncated-trace",
                format!("re-fingerprinted truncation failed validation early: {e}"),
            ));
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            replay_run(prepared, config, &truncated, &hw_blocks)
        }));
        match outcome {
            Err(_) => violations.push(err(
                "truncated-trace",
                "replay of a truncated capture panicked".to_string(),
            )),
            Ok(Ok(_)) => violations.push(err(
                "truncated-trace",
                "replay of a truncated capture produced statistics".to_string(),
            )),
            Ok(Err(SimError::TraceCorrupt { .. })) => {
                // Also pin the error's path into the library error
                // type: it must arrive as CorepartError::Sim, not get
                // swallowed.
                let wrapped = CorepartError::from(SimError::TraceCorrupt {
                    detail: "conformance probe".to_string(),
                });
                if !wrapped.to_string().contains("corrupt") {
                    violations.push(err(
                        "truncated-trace",
                        format!("TraceCorrupt loses its message through CorepartError: {wrapped}"),
                    ));
                }
            }
            Ok(Err(other)) => violations.push(err(
                "truncated-trace",
                format!("replay failed with {other} instead of TraceCorrupt"),
            )),
        }

        // The batched kernel must reject the damaged capture wholesale:
        // one typed error for the whole batch, never partial lanes —
        // even though the all-software lane alone replays cleanly on an
        // undamaged trace.
        let all_blocks: std::collections::HashSet<BlockId> = (0..prepared.app.blocks().len())
            .map(|b| BlockId(b as u32))
            .collect();
        let candidates = vec![hw_blocks.clone(), all_blocks];
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            replay_batch(prepared, config, &truncated, &candidates)
        }));
        match outcome {
            Err(_) => violations.push(err(
                "batch-corrupt",
                "batched replay of a truncated capture panicked".to_string(),
            )),
            Ok(Ok(_)) => violations.push(err(
                "batch-corrupt",
                "batched replay of a truncated capture produced lane results".to_string(),
            )),
            Ok(Err(SimError::TraceCorrupt { .. })) => {}
            Ok(Err(other)) => violations.push(err(
                "batch-corrupt",
                format!("batched replay failed with {other} instead of TraceCorrupt"),
            )),
        }

        // And through the threaded, stretch-sharded walk: the truncated
        // tail means every shard round up to the last replays cleanly —
        // the damage sits in a non-first shard — yet the whole batch
        // must fail as one TraceCorrupt, with no partial lane results.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            replay_batch_with(
                prepared,
                config,
                &truncated,
                &candidates,
                BatchOptions {
                    threads: 2,
                    shard_events: 1,
                },
            )
        }));
        match outcome {
            Err(_) => violations.push(err(
                "shard-corrupt",
                "sharded replay of a truncated capture panicked".to_string(),
            )),
            Ok(Ok(_)) => violations.push(err(
                "shard-corrupt",
                "sharded replay of a truncated capture produced lane results".to_string(),
            )),
            Ok(Err(SimError::TraceCorrupt { .. })) => {}
            Ok(Err(other)) => violations.push(err(
                "shard-corrupt",
                format!("sharded replay failed with {other} instead of TraceCorrupt"),
            )),
        }
    }

    violations
}

/// Scenarios: schedule-cache eviction must recompute the identical
/// [`ScheduledCluster`]; a poisoned entry is served verbatim and the
/// evict-and-recompute differential must expose it.
fn cache_damage(app: &Application, workload: &Workload) -> Vec<Violation> {
    let mut violations = Vec::new();
    let engine = match Engine::new(base_config()) {
        Ok(e) => e,
        Err(e) => return vec![err("error", format!("engine build: {e}"))],
    };
    let session = engine.session(app, workload);
    let partitioner = match Partitioner::new(&session) {
        Ok(p) => p,
        Err(e) => return vec![err("error", format!("partitioner: {e}"))],
    };

    // Collect feasible (cluster, resource set) partitions with their
    // schedules; we need one to evict and ideally a second, different
    // schedule to poison with.
    let mut feasible: Vec<(Partition, std::sync::Arc<ScheduledCluster>)> = Vec::new();
    'outer: for candidate in partitioner.candidates() {
        for set_index in 0.. {
            let Ok(set) = partitioner.config().resource_set(set_index) else {
                break;
            };
            let partition = Partition::single(candidate.cluster, set.clone());
            if let Ok(scheduled) = partitioner.scheduled(&partition) {
                feasible.push((partition, scheduled));
                if feasible.len() >= 2 {
                    break 'outer;
                }
                break; // one set per cluster is enough
            }
        }
    }
    let Some((partition, original)) = feasible.first().cloned() else {
        // Nothing schedulable (e.g. a straight-line app with no
        // clusters): the scenario does not apply.
        return violations;
    };

    // Evict, recompute, compare.
    let key = schedule_key(&partition);
    if !partitioner.schedule_cache().evict(&key) {
        violations.push(err(
            "cache-evict",
            "schedule entry missing from cache right after scheduling".to_string(),
        ));
    }
    match partitioner.scheduled(&partition) {
        Ok(recomputed) => {
            if *recomputed != *original {
                violations.push(err(
                    "cache-evict",
                    "recomputed schedule differs from the evicted cache entry".to_string(),
                ));
            }
        }
        Err(e) => violations.push(err(
            "cache-evict",
            format!("recompute after eviction failed: {e}"),
        )),
    }

    // Poison with a *different* schedule and check the differential
    // detects it.
    if let Some((_, other)) = feasible.get(1) {
        if **other != *original {
            partitioner
                .schedule_cache()
                .poison(key.clone(), (**other).clone());
            match partitioner.scheduled(&partition) {
                Ok(served) => {
                    if *served != **other {
                        violations.push(err(
                            "cache-poison",
                            "cache did not serve the poisoned entry verbatim".to_string(),
                        ));
                    }
                    if *served == *original {
                        violations.push(err(
                            "cache-poison",
                            "poisoned entry indistinguishable from the real schedule \
                             (differential cannot detect poisoning)"
                                .to_string(),
                        ));
                    }
                }
                Err(e) => violations.push(err(
                    "cache-poison",
                    format!("lookup of poisoned entry failed: {e}"),
                )),
            }
            // Heal the cache and confirm the recompute restores truth.
            partitioner.schedule_cache().evict(&key);
            match partitioner.scheduled(&partition) {
                Ok(healed) => {
                    if *healed != *original {
                        violations.push(err(
                            "cache-poison",
                            "recompute after healing a poisoned entry diverged".to_string(),
                        ));
                    }
                }
                Err(e) => violations.push(err(
                    "cache-poison",
                    format!("recompute after healing failed: {e}"),
                )),
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn fixed_seeds_survive_fault_injection() {
        for seed in [1, 5] {
            let app = generate(seed);
            let violations = check_app(&app);
            assert!(
                violations.is_empty(),
                "seed {seed} violated: {violations:?}\n{}",
                app.source()
            );
        }
    }
}
