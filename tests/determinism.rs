//! Determinism guarantees of the parallel, memoizing search engine.
//!
//! The engine promises bit-identical results for every thread count
//! ([`SystemConfig::threads`]): the estimate grid and the growth
//! rounds are parallel maps folded sequentially in candidate order,
//! and the schedule cache computes each key exactly once. These tests
//! pin that promise on the six paper workloads, on a full exploration
//! sweep, and — property-style — on the memoized schedule results
//! themselves.
//!
//! The same promise extends to the trace-replay verification engine:
//! replaying the captured reference trace under any hardware-block set
//! must reproduce the direct simulation's [`RunStats`] and
//! [`HierarchyReport`] bit for bit, and a search that falls back to
//! direct simulation (capture over cap) must produce the identical
//! outcome.

use std::collections::HashSet;
use std::sync::Arc;

use proptest::prelude::*;

use corepart::cache::hierarchy::Hierarchy;
use corepart::cache::HierarchyReport;
use corepart::engine::Engine;
use corepart::explore::{explore, hardware_weight_sweep};
use corepart::ir::lower::lower;
use corepart::ir::op::BlockId;
use corepart::ir::parser::parse;
use corepart::isa::simulator::{MemSink, RunStats, SimConfig, Simulator};
use corepart::partition::{Partitioner, ScheduleKey};
use corepart::prepare::{prepare, PreparedApp, Workload};
use corepart::sched::binding::{bind, schedule_cluster, utilization};
use corepart::sched::cache::{ScheduleCache, ScheduledCluster};
use corepart::system::SystemConfig;
use corepart::verify::{replay_batch, replay_batch_with, replay_run, BatchOptions};
use corepart_workloads::{all, by_name};

struct HierarchyMemSink<'a>(&'a mut Hierarchy);

impl MemSink for HierarchyMemSink<'_> {
    fn ifetch(&mut self, addr: u32) {
        self.0.ifetch(addr);
    }
    fn read(&mut self, addr: u32) {
        self.0.dread(addr);
    }
    fn write(&mut self, addr: u32) {
        self.0.dwrite(addr);
    }
}

/// Direct (non-replay) partitioned simulation: fresh interpreter, fresh
/// hierarchy, arrays re-initialized — the reference the replay engine
/// must match bit for bit.
fn direct_partitioned(
    prepared: &PreparedApp,
    config: &SystemConfig,
    hw: &HashSet<BlockId>,
) -> (RunStats, HierarchyReport) {
    let mut hierarchy = Hierarchy::new(
        config.icache.clone(),
        config.dcache.clone(),
        &config.process,
        config.memory_bytes,
    );
    let mut sim =
        Simulator::with_energy_table(&prepared.prog, &prepared.app, config.energy_table.clone());
    for (name, data) in &prepared.workload.arrays {
        sim.set_array(name, data).expect("workload array");
    }
    let stats = sim
        .run(
            &SimConfig::partitioned(config.max_cycles, hw.clone()),
            &mut HierarchyMemSink(&mut hierarchy),
        )
        .expect("direct simulation");
    (stats, hierarchy.report())
}

#[test]
fn parallel_search_matches_sequential_on_all_six_workloads() {
    for w in all() {
        let app = w.app().expect("workload lowers");
        let workload = Workload::from_arrays(w.arrays(1));
        // Two isolated engines: the thread knob is not part of any
        // stage fingerprint, so sessions on a shared engine would also
        // share the schedule cache and the second search would see the
        // first one's entries — this test wants two cold searches.
        let search = |threads: usize| {
            let engine = Engine::new(SystemConfig::new().with_threads(threads)).expect("engine");
            let session = engine.session(&app, &workload);
            Partitioner::new(&session).expect("initial run").run()
        };
        let sequential = search(1).expect("sequential search");
        let parallel = search(4).expect("parallel search");

        // PartitionOutcome equality covers the initial metrics, the
        // chosen partition + its verified detail, and the search
        // statistics (wall times excluded by design).
        assert_eq!(sequential, parallel, "outcome diverged on `{}`", w.name);
        assert_eq!(
            sequential.search.cache_hits, parallel.search.cache_hits,
            "cache hits diverged on `{}`",
            w.name
        );
        assert_eq!(
            sequential.search.cache_misses, parallel.search.cache_misses,
            "cache misses diverged on `{}`",
            w.name
        );
    }
}

#[test]
fn exploration_sweep_is_thread_count_invariant() {
    let w = by_name("digs").expect("digs exists");
    let app = w.app().expect("lowers");
    let workload = Workload::from_arrays(w.arrays(1));
    let weights = [0.0, 0.1, 0.2, 0.5, 1.0, 2.0];

    let sweep = |threads: usize| {
        let configs = hardware_weight_sweep(&weights, &SystemConfig::new().with_threads(threads));
        explore(&app, &workload, &configs).expect("sweep runs")
    };
    let sequential = sweep(1);
    let parallel = sweep(3);

    // DesignPoint is PartialEq over raw f64s: bit-identical or bust.
    assert_eq!(sequential.points, parallel.points);
    assert_eq!(
        sequential
            .pareto_frontier()
            .iter()
            .map(|p| p.label.clone())
            .collect::<Vec<_>>(),
        parallel
            .pareto_frontier()
            .iter()
            .map(|p| p.label.clone())
            .collect::<Vec<_>>(),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Memoized schedule results equal freshly computed ones for any
    /// cluster subset and any resource set, and repeat lookups are
    /// served from the cache.
    #[test]
    fn memoized_schedules_equal_fresh_computation(
        picks in prop::collection::vec(0usize..64, 1..5),
        set_index in 0usize..5,
    ) {
        let w = by_name("trick").expect("trick exists");
        let config = SystemConfig::new();
        let prepared = prepare(
            w.app().expect("lowers"),
            Workload::from_arrays(w.arrays(1)),
            &config,
        )
        .expect("prepares");

        // Map the raw picks onto actual cluster ids, dedup, sort —
        // the canonical partition order.
        let cluster_ids: Vec<_> = prepared.chain.iter().map(|c| c.id).collect();
        let mut clusters: Vec<_> = picks
            .iter()
            .map(|&p| cluster_ids[p % cluster_ids.len()])
            .collect();
        clusters.sort();
        clusters.dedup();
        let set = &config.resource_sets[set_index % config.resource_sets.len()];

        let mut blocks = Vec::new();
        for &cid in &clusters {
            blocks.extend(prepared.chain.cluster(cid).blocks.iter().copied());
        }

        let cache: Arc<ScheduleCache<ScheduleKey>> = Arc::new(ScheduleCache::new());
        let key: ScheduleKey = (clusters.clone(), set.name().to_owned(), set.iter().collect());
        let compute = || {
            let sched = schedule_cluster(&prepared.app, &blocks, set, &config.library)?;
            let binding = bind(&sched, &config.library);
            let util = utilization(&sched, &binding, &prepared.profile, &config.library);
            Ok(ScheduledCluster { sched, binding, util })
        };

        let fresh = compute();
        let cached_first = cache.get_or_compute(key.clone(), compute);
        let cached_again = cache.get_or_compute(key, || unreachable!("must be cached"));

        match (fresh, cached_first, cached_again) {
            (Ok(fresh), Ok(first), Ok(again)) => {
                prop_assert_eq!(&fresh, &*first);
                prop_assert!(Arc::ptr_eq(&first, &again));
                prop_assert_eq!(cache.misses(), 1);
                prop_assert_eq!(cache.hits(), 1);
            }
            (Err(fresh_err), Err(first_err), Err(again_err)) => {
                // Infeasibility must be cached faithfully too.
                prop_assert_eq!(&fresh_err, &first_err);
                prop_assert_eq!(&first_err, &again_err);
            }
            other => prop_assert!(false, "cache/fresh disagreement: {:?}", other),
        }
    }
}

#[test]
fn replay_matches_direct_simulation_on_all_six_workloads() {
    // Fixed regression case per paper workload: the hardware-block set
    // of the top pre-selected cluster, verified once by direct
    // simulation and once by replaying the captured reference trace.
    for w in all() {
        let app = w.app().expect("workload lowers");
        let workload = Workload::from_arrays(w.arrays(1));
        let factory = Engine::new(SystemConfig::new()).expect("engine");
        let session = factory.session(&app, &workload);
        let config = session.config();
        let prepared = session.prepared().expect("workload prepares");
        let partitioner = Partitioner::new(&session).expect("initial run");
        let engine = partitioner
            .replay_engine()
            .expect("every paper workload fits the default trace cap");

        let top = partitioner
            .candidates()
            .first()
            .cloned()
            .expect("pre-selection keeps a candidate");
        let hw: HashSet<BlockId> = prepared
            .chain
            .cluster(top.cluster)
            .blocks
            .iter()
            .copied()
            .collect();

        let (direct_stats, direct_report) = direct_partitioned(prepared, config, &hw);
        let replayed = replay_run(prepared, config, engine.trace(), &hw).expect("replay");
        assert_eq!(
            direct_stats, replayed.stats,
            "RunStats diverged on `{}`",
            w.name
        );
        assert_eq!(
            direct_report, replayed.report,
            "HierarchyReport diverged on `{}`",
            w.name
        );
    }
}

#[test]
fn batched_replay_matches_sequential_on_fixed_candidate_sets() {
    // Fixed regression case on two paper workloads: the batched kernel
    // must reproduce the one-candidate replay path lane for lane —
    // empty set, every single-cluster set, and the union of all.
    for name in ["digs", "MPG"] {
        let w = by_name(name).expect("workload exists");
        let app = w.app().expect("lowers");
        let workload = Workload::from_arrays(w.arrays(1));
        let factory = Engine::new(SystemConfig::new()).expect("engine");
        let session = factory.session(&app, &workload);
        let config = session.config();
        let prepared = session.prepared().expect("prepares");
        let partitioner = Partitioner::new(&session).expect("initial run");
        let engine = partitioner
            .replay_engine()
            .expect("paper workload fits the default trace cap");
        let trace = engine.trace();

        let mut candidates: Vec<HashSet<BlockId>> = vec![HashSet::new()];
        let mut union: HashSet<BlockId> = HashSet::new();
        for cluster in prepared.chain.iter() {
            let hw: HashSet<BlockId> = cluster.blocks.iter().copied().collect();
            union.extend(hw.iter().copied());
            candidates.push(hw);
        }
        candidates.push(union);

        let batched = replay_batch(prepared, config, trace, &candidates).expect("batched replay");
        assert_eq!(batched.len(), candidates.len());
        for (hw, got) in candidates.iter().zip(&batched) {
            let sequential = replay_run(prepared, config, trace, hw).expect("sequential replay");
            assert_eq!(&sequential, got, "batched lane diverged on `{name}`");
        }
    }
}

#[test]
fn verification_reuses_estimate_phase_schedule_cache_on_mpg() {
    // The verification path builds the same `ScheduleKey` the estimate
    // phase used, so the winner's schedule trio must be a cache hit —
    // this used to report `cache_hits: 0` on all six workloads.
    let w = by_name("MPG").expect("MPG exists");
    let app = w.app().expect("lowers");
    let workload = Workload::from_arrays(w.arrays(1));
    let engine = Engine::new(SystemConfig::new()).expect("engine");
    let session = engine.session(&app, &workload);
    let partitioner = Partitioner::new(&session).expect("initial run");
    let outcome = partitioner.run().expect("search");
    assert!(outcome.best.is_some(), "mpg finds a partition");
    assert!(
        outcome.search.cache_hits > 0,
        "verification must hit the estimate phase's schedule-cache entry, got {:?}",
        outcome.search
    );
    assert_eq!(outcome.search.replayed, 1, "one replayed verification");
}

#[test]
fn tiny_trace_cap_falls_back_to_identical_direct_search() {
    // A 16-byte cap discards every capture; the search silently falls
    // back to direct simulation and must produce the same outcome.
    let w = by_name("digs").expect("digs exists");
    let app = w.app().expect("lowers");
    let workload = Workload::from_arrays(w.arrays(1));
    // Isolated engines — outcome equality includes the schedule-cache
    // hit/miss counters, so both searches must start cold. The trace
    // cap is part of the baseline fingerprint, so the capped session
    // genuinely has no replay engine to fall back on.
    let replay_engine = Engine::new(SystemConfig::new()).expect("engine");
    let replay_session = replay_engine.session(&app, &workload);
    let fallback_engine = Engine::new(SystemConfig::new().with_trace_cap(16)).expect("engine");
    let fallback_session = fallback_engine.session(&app, &workload);

    let with_replay = Partitioner::new(&replay_session).expect("initial run");
    assert!(with_replay.replay_engine().is_some());
    let without_replay = Partitioner::new(&fallback_session).expect("initial run");
    assert!(
        without_replay.replay_engine().is_none(),
        "16-byte cap overflows"
    );

    let replayed = with_replay.run().expect("replayed search");
    let direct = without_replay.run().expect("direct search");
    assert_eq!(replayed, direct);
    assert!(replayed.search.replayed > 0);
    assert_eq!(direct.search.replayed, 0);
}

const REPLAY_PROGRAMS: [&str; 3] = [
    r#"app p0; var a[32]; var s = 0;
    func main() {
        for (var i = 0; i < 32; i = i + 1) { a[i] = a[i] * 3 + i; }
        for (var j = 0; j < 32; j = j + 1) { s = s + a[j]; }
        return s;
    }"#,
    r#"app p1; var x[24]; var y[24]; var t = 0;
    func main() {
        for (var i = 1; i < 23; i = i + 1) {
            y[i] = (x[i - 1] + x[i] * 2 + x[i + 1]) >> 2;
        }
        for (var j = 0; j < 24; j = j + 1) {
            if (y[j] > 4) { t = t + y[j]; } else { t = t - 1; }
        }
        return t;
    }"#,
    r#"app p2; var b[16]; var acc = 1;
    func main() {
        for (var i = 0; i < 16; i = i + 1) {
            b[i] = (b[i] ^ (i << 2)) & 255;
            while (b[i] > 9) { b[i] = b[i] - 7; }
        }
        for (var j = 0; j < 16; j = j + 1) { acc = acc + b[j] * b[j]; }
        return acc;
    }"#,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replaying the captured trace under an arbitrary hardware-block
    /// subset reproduces the direct partitioned simulation bit for bit
    /// — `RunStats` and `HierarchyReport` alike — on random small
    /// programs with random inputs.
    #[test]
    fn replay_is_bit_identical_for_random_hw_subsets(
        program in 0usize..3,
        seed in 0i64..1000,
        mask in prop::collection::vec(any::<bool>(), 64..65),
    ) {
        let config = SystemConfig::new();
        let app = lower(&parse(REPLAY_PROGRAMS[program]).expect("parses")).expect("lowers");
        let array = app.arrays().first().map(|a| a.name.clone()).expect("has an array");
        let len = app.arrays().first().map(|a| a.len).expect("array length");
        let input: Vec<i64> = (0..len as i64).map(|i| (i * 7 + seed) % 19 - 9).collect();
        let prepared = prepare(
            app,
            Workload::from_arrays([(array.as_str(), input)]),
            &config,
        )
        .expect("prepares");

        let hw: HashSet<BlockId> = (0..prepared.app.blocks().len())
            .filter(|&b| mask[b % mask.len()])
            .map(|b| BlockId(b as u32))
            .collect();

        let (_, _, trace) =
            corepart::evaluate::evaluate_initial_captured(&prepared, &config, usize::MAX)
                .expect("initial run");
        let trace = trace.expect("tiny program fits");

        let (direct_stats, direct_report) = direct_partitioned(&prepared, &config, &hw);
        let replayed = replay_run(&prepared, &config, &trace, &hw).expect("replay");
        prop_assert_eq!(&direct_stats, &replayed.stats);
        prop_assert_eq!(&direct_report, &replayed.report);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The batched replay kernel is bit-identical (`==` on
    /// [`VerifiedRun`](corepart::verify::VerifiedRun)) to the
    /// one-candidate replay for any K random hardware-block subsets of
    /// a paper workload — shared decode and interleaved accounting
    /// must not perturb a single f64 in any lane.
    #[test]
    fn batched_replay_is_bit_identical_for_random_k_subsets(
        workload_pick in 0usize..2,
        masks in prop::collection::vec(
            prop::collection::vec(any::<bool>(), 16..17),
            1..6,
        ),
    ) {
        let name = ["digs", "trick"][workload_pick];
        let w = by_name(name).expect("workload exists");
        let config = SystemConfig::new();
        let prepared = prepare(
            w.app().expect("lowers"),
            Workload::from_arrays(w.arrays(1)),
            &config,
        )
        .expect("prepares");

        let candidates: Vec<HashSet<BlockId>> = masks
            .iter()
            .map(|mask| {
                (0..prepared.app.blocks().len())
                    .filter(|&b| mask[b % mask.len()])
                    .map(|b| BlockId(b as u32))
                    .collect()
            })
            .collect();

        let (_, _, trace) =
            corepart::evaluate::evaluate_initial_captured(&prepared, &config, usize::MAX)
                .expect("initial run");
        let trace = trace.expect("paper workload fits");

        let batched = replay_batch(&prepared, &config, &trace, &candidates).expect("batch");
        prop_assert_eq!(batched.len(), candidates.len());
        for (hw, got) in candidates.iter().zip(&batched) {
            let sequential = replay_run(&prepared, &config, &trace, hw).expect("sequential");
            prop_assert_eq!(&sequential, got);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The stretch-sharded, lane-grouped batch walk is bit-identical
    /// to the one-candidate replay for every thread count and shard
    /// granularity, on every paper workload: threading changes the
    /// schedule of the walk, never a single f64 in any lane.
    #[test]
    fn threaded_batched_replay_is_bit_identical_on_all_workloads(
        workload_pick in 0usize..6,
        threads_pick in 0usize..4,
        shard_pick in 0usize..4,
        masks in prop::collection::vec(
            prop::collection::vec(any::<bool>(), 16..17),
            1..6,
        ),
    ) {
        let threads = [1usize, 2, 4, 8][threads_pick];
        let shard_events = [0u64, 1, 97, 4096][shard_pick];
        let workloads = all();
        let w = &workloads[workload_pick % workloads.len()];
        let config = SystemConfig::new();
        let prepared = prepare(
            w.app().expect("lowers"),
            Workload::from_arrays(w.arrays(1)),
            &config,
        )
        .expect("prepares");

        let candidates: Vec<HashSet<BlockId>> = masks
            .iter()
            .map(|mask| {
                (0..prepared.app.blocks().len())
                    .filter(|&b| mask[b % mask.len()])
                    .map(|b| BlockId(b as u32))
                    .collect()
            })
            .collect();

        let (_, _, trace) =
            corepart::evaluate::evaluate_initial_captured(&prepared, &config, usize::MAX)
                .expect("initial run");
        let trace = trace.expect("paper workload fits");

        let opts = BatchOptions { threads, shard_events };
        let batched =
            replay_batch_with(&prepared, &config, &trace, &candidates, opts).expect("batch");
        prop_assert_eq!(batched.len(), candidates.len());
        for (hw, got) in candidates.iter().zip(&batched) {
            let sequential = replay_run(&prepared, &config, &trace, hw).expect("sequential");
            prop_assert_eq!(&sequential, got);
        }
    }
}

#[test]
fn shard_boundary_mid_loop_is_bit_identical() {
    // Fixed regression case: `shard_events: 1` forces a shard cut
    // after every stretch — in particular in the middle of each loop
    // body — so the hierarchy snapshot/resume carry is exercised at
    // every possible boundary, with a single lane (K = 1) so nothing
    // can hide behind lane grouping.
    let w = by_name("digs").expect("digs exists");
    let config = SystemConfig::new();
    let prepared = prepare(
        w.app().expect("lowers"),
        Workload::from_arrays(w.arrays(1)),
        &config,
    )
    .expect("prepares");
    let (_, _, trace) =
        corepart::evaluate::evaluate_initial_captured(&prepared, &config, usize::MAX)
            .expect("initial run");
    let trace = trace.expect("digs fits");

    let hot = prepared
        .chain
        .iter()
        .find(|c| c.is_loop())
        .expect("digs has a loop cluster");
    let hw: HashSet<BlockId> = hot.blocks.iter().copied().collect();
    let sequential = replay_run(&prepared, &config, &trace, &hw).expect("sequential");

    for threads in [1usize, 2] {
        let opts = BatchOptions {
            threads,
            shard_events: 1,
        };
        let sharded =
            replay_batch_with(&prepared, &config, &trace, std::slice::from_ref(&hw), opts)
                .expect("sharded replay");
        assert_eq!(sharded.len(), 1);
        assert_eq!(sequential, sharded[0], "threads={threads}");
    }
}
