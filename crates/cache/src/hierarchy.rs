//! The memory hierarchy: instruction cache, data cache and main memory
//! with per-event energy accounting.
//!
//! This is the trace-driven reconstruction of the paper's cache/memory
//! models (§3.5: "analytical models for main memory energy consumption
//! and caches are fed with the output of a cache profiler that itself is
//! preceded by a trace tool"). The µP-side reference stream drives it;
//! every event (hit, fill, write-back, write-through, memory word) is
//! charged with the analytical energies of `corepart-tech`.

use std::fmt;

use corepart_tech::energy::{CacheEnergyModel, MemoryEnergyModel};
use corepart_tech::process::CmosProcess;
use corepart_tech::units::{Cycles, Energy};

use crate::cache::{Cache, CacheSnapshot, CacheStats};
use crate::config::CacheConfig;

/// Energy and stall report of a hierarchy run.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyReport {
    /// Instruction-cache energy.
    pub icache_energy: Energy,
    /// Data-cache energy.
    pub dcache_energy: Energy,
    /// Main-memory energy (fills, write-backs, write-throughs, direct
    /// accesses).
    pub mem_energy: Energy,
    /// µP stall cycles caused by misses.
    pub stall_cycles: Cycles,
    /// Instruction-cache statistics.
    pub icache: CacheStats,
    /// Data-cache statistics.
    pub dcache: CacheStats,
    /// Words read from main memory.
    pub mem_reads: u64,
    /// Words written to main memory.
    pub mem_writes: u64,
}

impl HierarchyReport {
    /// Total energy of all memory-side cores.
    pub fn total_energy(&self) -> Energy {
        self.icache_energy + self.dcache_energy + self.mem_energy
    }
}

impl fmt::Display for HierarchyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "i$ {} | d$ {} | mem {} | {} stall cycles",
            self.icache_energy, self.dcache_energy, self.mem_energy, self.stall_cycles
        )
    }
}

/// One recorded µP-side memory reference, replayable through
/// [`Hierarchy::apply`]. The three variants mirror the three
/// `MemSink` callbacks the live simulation drives (instruction fetch,
/// data read, data write).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEvent {
    /// An instruction fetch from the address.
    IFetch(u32),
    /// A data read from the address.
    Read(u32),
    /// A data write to the address.
    Write(u32),
}

/// A copy of a [`Hierarchy`]'s mutable state — both cache snapshots
/// plus the energy/stall/traffic accumulators — detached from the
/// analytical models (which are pure functions of the construction
/// parameters and need not travel). The shard-boundary carry of the
/// stretch-sharded batched replay: a shard round restores it into a
/// freshly built hierarchy, replays its stretch range, and snapshots
/// again for the next round, possibly on a different thread.
#[derive(Debug, Clone)]
pub struct HierarchySnapshot {
    icache: CacheSnapshot,
    dcache: CacheSnapshot,
    i_energy: Energy,
    d_energy: Energy,
    mem_energy: Energy,
    stall_cycles: u64,
    mem_reads: u64,
    mem_writes: u64,
}

/// The simulated hierarchy.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    icache: Cache,
    dcache: Cache,
    i_model: CacheEnergyModel,
    d_model: CacheEnergyModel,
    mem_model: MemoryEnergyModel,
    i_energy: Energy,
    d_energy: Energy,
    mem_energy: Energy,
    stall_cycles: u64,
    mem_reads: u64,
    mem_writes: u64,
}

impl Hierarchy {
    /// Builds a hierarchy for the given cache geometries, deriving all
    /// energy models analytically from `process` and the main-memory
    /// size.
    pub fn new(
        icache: CacheConfig,
        dcache: CacheConfig,
        process: &CmosProcess,
        memory_bytes: usize,
    ) -> Self {
        let i_model = CacheEnergyModel::analytical(
            process,
            icache.size_bytes(),
            icache.line_bytes(),
            icache.associativity(),
        );
        let d_model = CacheEnergyModel::analytical(
            process,
            dcache.size_bytes(),
            dcache.line_bytes(),
            dcache.associativity(),
        );
        let mem_model = MemoryEnergyModel::analytical(process, memory_bytes);
        Hierarchy {
            icache: Cache::new(icache),
            dcache: Cache::new(dcache),
            i_model,
            d_model,
            mem_model,
            i_energy: Energy::ZERO,
            d_energy: Energy::ZERO,
            mem_energy: Energy::ZERO,
            stall_cycles: 0,
            mem_reads: 0,
            mem_writes: 0,
        }
    }

    /// Captures the mutable state of the whole hierarchy (see
    /// [`HierarchySnapshot`]).
    pub fn snapshot(&self) -> HierarchySnapshot {
        HierarchySnapshot {
            icache: self.icache.snapshot(),
            dcache: self.dcache.snapshot(),
            i_energy: self.i_energy,
            d_energy: self.d_energy,
            mem_energy: self.mem_energy,
            stall_cycles: self.stall_cycles,
            mem_reads: self.mem_reads,
            mem_writes: self.mem_writes,
        }
    }

    /// Resumes from a snapshot taken on a hierarchy built with the
    /// same cache geometries, process and memory size. The energy
    /// models are pure functions of the construction parameters, so a
    /// freshly built hierarchy restored from a snapshot continues the
    /// interrupted run **bit for bit** — every later event charges the
    /// same `f64`s onto the same accumulator values.
    ///
    /// # Panics
    ///
    /// When a cache snapshot's geometry does not match (see
    /// [`Cache::restore`]).
    pub fn restore(&mut self, snapshot: &HierarchySnapshot) {
        self.icache.restore(&snapshot.icache);
        self.dcache.restore(&snapshot.dcache);
        self.i_energy = snapshot.i_energy;
        self.d_energy = snapshot.d_energy;
        self.mem_energy = snapshot.mem_energy;
        self.stall_cycles = snapshot.stall_cycles;
        self.mem_reads = snapshot.mem_reads;
        self.mem_writes = snapshot.mem_writes;
    }

    /// Clears all state and counters.
    pub fn reset(&mut self) {
        self.icache.reset();
        self.dcache.reset();
        self.i_energy = Energy::ZERO;
        self.d_energy = Energy::ZERO;
        self.mem_energy = Energy::ZERO;
        self.stall_cycles = 0;
        self.mem_reads = 0;
        self.mem_writes = 0;
    }

    /// An instruction fetch.
    #[inline]
    pub fn ifetch(&mut self, addr: u32) {
        let out = self.icache.read(addr);
        if out.hit {
            self.i_energy += self.i_model.read_hit();
        } else {
            self.i_energy += self.i_model.tag_probe();
            if out.filled {
                self.i_energy += self.i_model.line_fill();
                let words = self.icache.config().line_words() as u64;
                self.mem_energy += self.mem_model.read_word() * words;
                self.mem_reads += words;
                self.stall_cycles += self.icache.config().miss_penalty();
            }
            if out.prefetched {
                // Prefetch fills overlap execution: energy but no stall.
                self.i_energy += self.i_model.line_fill();
                let words = self.icache.config().line_words() as u64;
                self.mem_energy += self.mem_model.read_word() * words;
                self.mem_reads += words;
            }
        }
    }

    /// A data read.
    #[inline]
    pub fn dread(&mut self, addr: u32) {
        let out = self.dcache.read(addr);
        if out.hit {
            self.d_energy += self.d_model.read_hit();
        } else {
            self.d_energy += self.d_model.tag_probe();
            if out.filled {
                self.d_energy += self.d_model.line_fill();
                let words = self.dcache.config().line_words() as u64;
                self.mem_energy += self.mem_model.read_word() * words;
                self.mem_reads += words;
                self.stall_cycles += self.dcache.config().miss_penalty();
            }
            if out.wrote_back {
                self.charge_writeback();
            }
        }
    }

    /// A data write.
    #[inline]
    pub fn dwrite(&mut self, addr: u32) {
        let out = self.dcache.write(addr);
        if out.hit {
            self.d_energy += self.d_model.write_hit();
            if out.next_level_write {
                // Write-through word.
                self.mem_energy += self.mem_model.write_word();
                self.mem_writes += 1;
            }
        } else {
            self.d_energy += self.d_model.tag_probe();
            if out.filled {
                self.d_energy += self.d_model.line_fill();
                let words = self.dcache.config().line_words() as u64;
                self.mem_energy += self.mem_model.read_word() * words;
                self.mem_reads += words;
                self.stall_cycles += self.dcache.config().miss_penalty();
                if out.wrote_back {
                    self.charge_writeback();
                }
            } else if out.next_level_write {
                // Write-through, no allocate: one word to memory.
                self.mem_energy += self.mem_model.write_word();
                self.mem_writes += 1;
            }
        }
    }

    /// Attempts `count` consecutive word fetches (`addr`, `addr + 4`,
    /// …) as one batch. Succeeds — returning `true` — only when every
    /// touched i-cache line is already resident, in which case each
    /// fetch is a guaranteed hit: the i-cache state advances exactly as
    /// `count` [`Hierarchy::ifetch`] calls would and the hit energy is
    /// added once per fetch, in order, to the i-cache accumulator. No
    /// shared-accumulator event (memory energy, stalls) can fire on a
    /// hit, so the batch is bit-identical to the call-by-call sequence.
    /// On `false` nothing was touched.
    #[inline]
    pub fn ifetch_run_hits(&mut self, addr: u32, count: u32) -> bool {
        if count == 0 {
            return true;
        }
        let line_bytes = self.icache.config().line_bytes() as u32;
        let end = addr + 4 * count;
        let mut probe = addr;
        while probe < end {
            if !self.icache.line_resident(probe) {
                return false;
            }
            probe = (probe & !(line_bytes - 1)) + line_bytes;
        }
        let hit_energy = self.i_model.read_hit();
        let mut at = addr;
        while at < end {
            let line_end = ((at & !(line_bytes - 1)) + line_bytes).min(end);
            let words = ((line_end - at) / 4) as u64;
            self.icache.read_hits_same_line(at, words);
            for _ in 0..words {
                self.i_energy += hit_energy;
            }
            at = line_end;
        }
        true
    }

    fn charge_writeback(&mut self) {
        self.d_energy += self.d_model.line_writeback();
        let words = self.dcache.config().line_words() as u64;
        self.mem_energy += self.mem_model.write_word() * words;
        self.mem_writes += words;
        self.stall_cycles += self.dcache.config().miss_penalty();
    }

    /// A word read straight from main memory, bypassing the caches —
    /// how the ASIC core reaches the shared memory (Fig. 2 a).
    pub fn direct_read(&mut self) {
        self.mem_energy += self.mem_model.read_word();
        self.mem_reads += 1;
    }

    /// A word written straight to main memory, bypassing the caches.
    pub fn direct_write(&mut self) {
        self.mem_energy += self.mem_model.write_word();
        self.mem_writes += 1;
    }

    /// Feeds one recorded reference into the hierarchy — the replay
    /// entry point of the trace engine. `apply` dispatches to the same
    /// [`Hierarchy::ifetch`]/[`Hierarchy::dread`]/[`Hierarchy::dwrite`]
    /// the live simulation drives, so replaying a captured stream in
    /// order reproduces the [`HierarchyReport`] bit for bit.
    pub fn apply(&mut self, event: MemEvent) {
        match event {
            MemEvent::IFetch(addr) => self.ifetch(addr),
            MemEvent::Read(addr) => self.dread(addr),
            MemEvent::Write(addr) => self.dwrite(addr),
        }
    }

    /// Replays a whole reference stream through [`Hierarchy::apply`].
    pub fn replay<I: IntoIterator<Item = MemEvent>>(&mut self, events: I) {
        for event in events {
            self.apply(event);
        }
    }

    /// The accumulated report.
    pub fn report(&self) -> HierarchyReport {
        HierarchyReport {
            icache_energy: self.i_energy,
            dcache_energy: self.d_energy,
            mem_energy: self.mem_energy,
            stall_cycles: Cycles::new(self.stall_cycles),
            icache: self.icache.stats(),
            dcache: self.dcache.stats(),
            mem_reads: self.mem_reads,
            mem_writes: self.mem_writes,
        }
    }

    /// The instruction cache (for inspection).
    pub fn icache(&self) -> &Cache {
        &self.icache
    }

    /// The data cache (for inspection).
    pub fn dcache(&self) -> &Cache {
        &self.dcache
    }

    /// The main-memory energy model in use.
    pub fn memory_model(&self) -> &MemoryEnergyModel {
        &self.mem_model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> Hierarchy {
        Hierarchy::new(
            CacheConfig::default_icache(),
            CacheConfig::default_dcache(),
            &CmosProcess::cmos6(),
            1 << 20,
        )
    }

    #[test]
    fn tight_loop_ifetches_mostly_hit() {
        let mut h = hierarchy();
        // 16 instructions fetched 1000 times.
        for _ in 0..1000 {
            for i in 0..16u32 {
                h.ifetch(0x0010_0000 + i * 4);
            }
        }
        let r = h.report();
        assert!(r.icache.miss_ratio() < 0.01);
        assert!(r.icache_energy.joules() > 0.0);
        // Only the cold fills touched memory.
        assert_eq!(r.icache.fills, 4);
    }

    #[test]
    fn streaming_data_misses_cost_memory_energy() {
        let mut h = hierarchy();
        for i in 0..4096u32 {
            h.dread(0x1000 + i * 64); // one access per line, always miss
        }
        let r = h.report();
        assert!(r.dcache.miss_ratio() > 0.99);
        assert!(r.mem_energy > r.dcache_energy);
        assert!(r.stall_cycles.count() > 0);
        assert_eq!(r.mem_reads, 4096 * 4); // 4 words per 16B line
    }

    #[test]
    fn writeback_traffic_counted() {
        let mut h = hierarchy();
        // Dirty a line, then conflict-evict it (direct-mapped 8kB).
        h.dwrite(0x1000);
        h.dread(0x1000 + 8 * 1024);
        let r = h.report();
        assert_eq!(r.dcache.writebacks, 1);
        assert!(r.mem_writes >= 4);
    }

    #[test]
    fn direct_accesses_bypass_caches() {
        let mut h = hierarchy();
        for _ in 0..10 {
            h.direct_read();
            h.direct_write();
        }
        let r = h.report();
        assert_eq!(r.dcache.accesses(), 0);
        assert_eq!(r.mem_reads, 10);
        assert_eq!(r.mem_writes, 10);
        assert!(r.mem_energy.joules() > 0.0);
        assert_eq!(r.dcache_energy, Energy::ZERO);
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = hierarchy();
        h.ifetch(0x0010_0000);
        h.dwrite(0x1000);
        h.reset();
        let r = h.report();
        assert_eq!(r.total_energy(), Energy::ZERO);
        assert_eq!(r.icache.accesses(), 0);
        assert_eq!(r.stall_cycles, Cycles::ZERO);
    }

    #[test]
    fn report_totals_add_up() {
        let mut h = hierarchy();
        for i in 0..256u32 {
            h.ifetch(0x0010_0000 + (i % 64) * 4);
            h.dread(0x1000 + (i % 32) * 4);
            if i % 4 == 0 {
                h.dwrite(0x2000 + i * 4);
            }
        }
        let r = h.report();
        let sum = r.icache_energy + r.dcache_energy + r.mem_energy;
        assert!((r.total_energy().joules() - sum.joules()).abs() < 1e-18);
        let disp = format!("{r}");
        assert!(disp.contains("i$"));
    }

    #[test]
    fn replayed_events_match_live_calls() {
        let mut live = hierarchy();
        let mut events = Vec::new();
        for i in 0..512u32 {
            live.ifetch(0x0010_0000 + (i % 128) * 4);
            events.push(MemEvent::IFetch(0x0010_0000 + (i % 128) * 4));
            if i % 3 == 0 {
                live.dread(0x1000 + (i % 64) * 4);
                events.push(MemEvent::Read(0x1000 + (i % 64) * 4));
            }
            if i % 7 == 0 {
                live.dwrite(0x2000 + i * 4);
                events.push(MemEvent::Write(0x2000 + i * 4));
            }
        }
        let mut replayed = hierarchy();
        replayed.replay(events);
        assert_eq!(live.report(), replayed.report());
    }

    #[test]
    fn snapshot_restore_resumes_bit_exactly() {
        // Reference: one uninterrupted run.
        let mut whole = hierarchy();
        let drive = |h: &mut Hierarchy, lo: u32, hi: u32| {
            for i in lo..hi {
                h.ifetch(0x0010_0000 + (i % 96) * 4);
                if i % 3 == 0 {
                    h.dread(0x1000 + (i % 48) * 4);
                }
                if i % 5 == 0 {
                    h.dwrite(0x2000 + i * 4);
                }
            }
        };
        drive(&mut whole, 0, 700);

        // Split run: snapshot at an arbitrary boundary, resume into a
        // FRESH hierarchy (the models are rebuilt, the state restored)
        // — the shard-round handoff of the threaded batch driver.
        let mut first = hierarchy();
        drive(&mut first, 0, 311);
        let carry = first.snapshot();
        let mut second = hierarchy();
        second.restore(&carry);
        drive(&mut second, 311, 700);

        assert_eq!(whole.report(), second.report());
        // Even the replacement/MRU internals travelled: further
        // traffic stays identical too.
        drive(&mut whole, 700, 900);
        drive(&mut second, 700, 900);
        assert_eq!(whole.report(), second.report());
    }

    #[test]
    fn snapshot_restore_preserves_bulk_fetch_decisions() {
        let mut live = hierarchy();
        for i in 0..32u32 {
            live.ifetch(0x0010_0000 + i * 4);
        }
        let carry = live.snapshot();
        let mut resumed = hierarchy();
        resumed.restore(&carry);
        // The resident-line set travelled: the resumed hierarchy
        // accepts exactly the bulk runs the live one accepts.
        assert_eq!(
            live.ifetch_run_hits(0x0010_0000, 32),
            resumed.ifetch_run_hits(0x0010_0000, 32)
        );
        assert_eq!(
            live.ifetch_run_hits(0x0020_0000, 8),
            resumed.ifetch_run_hits(0x0020_0000, 8)
        );
        assert_eq!(live.report(), resumed.report());
    }

    #[test]
    #[should_panic(expected = "snapshot geometry")]
    fn restore_rejects_mismatched_geometry() {
        let small = Cache::new(CacheConfig::default_dcache().with_size(4 * 1024).unwrap());
        let mut big = Cache::new(CacheConfig::default_dcache().with_size(32 * 1024).unwrap());
        big.restore(&small.snapshot());
    }

    #[test]
    fn smaller_cache_misses_more_on_large_working_set() {
        let run = |kb: usize| {
            let cfg = CacheConfig::default_dcache().with_size(kb * 1024).unwrap();
            let mut h = Hierarchy::new(
                CacheConfig::default_icache(),
                cfg,
                &CmosProcess::cmos6(),
                1 << 20,
            );
            for _ in 0..8 {
                for i in 0..(16 * 1024 / 4) as u32 {
                    h.dread(0x1000 + i * 4);
                }
            }
            h.report().dcache.miss_ratio()
        };
        assert!(run(4) > run(32));
    }
}
