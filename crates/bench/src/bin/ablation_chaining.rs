//! Extension experiment **E4** — operator chaining in the ASIC
//! schedule.
//!
//! The paper's "simple list schedule" (Fig. 1 line 8) registers every
//! operation result at a step boundary. Classic HLS chaining lets
//! dependent fast operations (comparators, moves) share a control step
//! when their combined combinational delay fits the clock period,
//! shortening the schedule and raising the utilization of the slow
//! units. This experiment re-schedules every application's hot cluster
//! with chaining on and reports the change in static length, `U_R` and
//! the ASIC-energy estimate.
//!
//! ```text
//! cargo run --release -p corepart-bench --bin ablation_chaining
//! ```

use corepart::engine::Engine;
use corepart::partition::Partitioner;
use corepart::prepare::Workload;
use corepart::system::SystemConfig;
use corepart_bench::SEED;
use corepart_sched::binding::{bind, utilization, ClusterSchedule};
use corepart_sched::dfg::BlockDfg;
use corepart_sched::energy::estimate_energy;
use corepart_sched::list::{list_schedule_opts, SchedOptions};
use corepart_workloads::all;

fn main() {
    let config = SystemConfig::new();
    println!("E4: operator chaining in the hot cluster's schedule (m-dsp set)\n");
    println!(
        "{:<8} {:<9} {:>8} {:>8} {:>14}",
        "app", "chaining", "length", "U_R", "E_R estimate"
    );
    for w in all() {
        let app = w.app().expect("bundled workload lowers");
        let workload = Workload::from_arrays(w.arrays(SEED));
        let engine = Engine::new(config.clone()).expect("engine");
        let session = engine.session(&app, &workload);
        let prepared = session.prepared().expect("bundled workload prepares");
        let partitioner = Partitioner::new(&session).expect("initial run");
        let Some(top) = partitioner.candidates().into_iter().next() else {
            println!("{:<8} (no candidates)\n", w.name);
            continue;
        };
        let blocks = prepared.chain.cluster(top.cluster).blocks.clone();
        let set = &config.resource_sets[2];

        for (label, chaining) in [("off", false), ("on", true)] {
            let schedules: Result<Vec<_>, _> = blocks
                .iter()
                .map(|&b| {
                    let dfg = BlockDfg::build(&prepared.app, b);
                    list_schedule_opts(&dfg, set, &config.library, SchedOptions { chaining })
                })
                .collect();
            match schedules {
                Ok(schedules) => {
                    let sched = ClusterSchedule {
                        blocks: blocks.clone(),
                        schedules,
                        set_name: set.name().to_owned(),
                    };
                    let binding = bind(&sched, &config.library);
                    let util = utilization(&sched, &binding, &prepared.profile, &config.library);
                    let e = estimate_energy(&util, &binding, &config.library);
                    println!(
                        "{:<8} {:<9} {:>8} {:>8.3} {:>14}",
                        w.name,
                        label,
                        sched.static_length(),
                        util.u_r,
                        format!("{e}"),
                    );
                }
                Err(e) => println!("{:<8} {:<9} infeasible: {e}", w.name, label),
            }
        }
        println!();
    }
}
