//! Table-1 and Figure-6 style reporting.
//!
//! [`Table1`] renders the paper's result table: one "I"(nitial) and one
//! "P"(artitioned) row per application with the per-core energy
//! breakdown, savings, execution cycles and time change.
//! [`figure6`] renders the bar-series of Figure 6 (energy saving %
//! and execution-time change % per application) as aligned text.

use std::fmt;

use corepart_tech::units::Energy;

use crate::partition::PartitionOutcome;
use crate::system::DesignMetrics;

/// One application's entry in the results table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Entry {
    /// Application name.
    pub app: String,
    /// The initial design.
    pub initial: DesignMetrics,
    /// The partitioned design, when one was found.
    pub partitioned: Option<DesignMetrics>,
}

impl Table1Entry {
    /// Builds an entry from a partitioning outcome.
    pub fn from_outcome(app: impl Into<String>, outcome: &PartitionOutcome) -> Self {
        Table1Entry {
            app: app.into(),
            initial: outcome.initial.clone(),
            partitioned: outcome.best.as_ref().map(|(_, d)| d.metrics.clone()),
        }
    }

    /// Energy saving in percent (None without a partition).
    pub fn saving_percent(&self) -> Option<f64> {
        self.partitioned
            .as_ref()
            .and_then(|p| p.energy_saving_vs(&self.initial))
    }

    /// Execution-time change in percent (negative = faster).
    pub fn time_change_percent(&self) -> Option<f64> {
        self.partitioned
            .as_ref()
            .and_then(|p| p.time_change_vs(&self.initial))
    }
}

/// The full results table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table1 {
    entries: Vec<Table1Entry>,
}

impl Table1 {
    /// An empty table.
    pub fn new() -> Self {
        Table1::default()
    }

    /// Adds one application's entry.
    pub fn push(&mut self, entry: Table1Entry) {
        self.entries.push(entry);
    }

    /// The entries.
    pub fn entries(&self) -> &[Table1Entry] {
        &self.entries
    }
}

fn fmt_energy(e: Energy) -> String {
    format!("{e:.3}")
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<8} {:>1} | {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8} | {:>13} {:>13} {:>13} {:>8}",
            "App.", "", "i-cache", "d-cache", "mem", "uP core", "ASIC core", "total",
            "Sav%", "uP cyc", "ASIC cyc", "total cyc", "Chg%"
        )?;
        writeln!(f, "{}", "-".repeat(172))?;
        for e in &self.entries {
            let i = &e.initial;
            writeln!(
                f,
                "{:<8} {:>1} | {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8} | {:>13} {:>13} {:>13} {:>8}",
                e.app,
                "I",
                fmt_energy(i.icache),
                fmt_energy(i.dcache),
                fmt_energy(i.mem + i.bus),
                fmt_energy(i.up_core),
                "n/a",
                fmt_energy(i.total_energy()),
                e.saving_percent()
                    .map(|s| format!("{:.2}", -s))
                    .unwrap_or_else(|| "--".into()),
                i.up_cycles.to_string(),
                "n/a",
                i.total_cycles().to_string(),
                e.time_change_percent()
                    .map(|c| format!("{c:.2}"))
                    .unwrap_or_else(|| "--".into()),
            )?;
            match &e.partitioned {
                Some(p) => {
                    writeln!(
                        f,
                        "{:<8} {:>1} | {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8} | {:>13} {:>13} {:>13} {:>8}",
                        "",
                        "P",
                        fmt_energy(p.icache),
                        fmt_energy(p.dcache),
                        fmt_energy(p.mem + p.bus),
                        fmt_energy(p.up_core),
                        p.asic_core.map(fmt_energy).unwrap_or_else(|| "n/a".into()),
                        fmt_energy(p.total_energy()),
                        "",
                        p.up_cycles.to_string(),
                        p.asic_cycles.to_string(),
                        p.total_cycles().to_string(),
                        "",
                    )?;
                }
                None => {
                    writeln!(
                        f,
                        "{:<8} {:>1} | {:>136}",
                        "", "P", "(no partition beat the initial design)"
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// One bar pair of Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure6Point {
    /// Application name.
    pub app: String,
    /// Energy saving in percent (positive = saved).
    pub energy_saving: f64,
    /// Execution-time change in percent (negative = faster).
    pub time_change: f64,
}

/// Extracts the Figure-6 series from table entries (skipping apps with
/// no partition).
pub fn figure6(table: &Table1) -> Vec<Figure6Point> {
    table
        .entries()
        .iter()
        .filter_map(|e| {
            Some(Figure6Point {
                app: e.app.clone(),
                energy_saving: e.saving_percent()?,
                time_change: e.time_change_percent()?,
            })
        })
        .collect()
}

/// Renders the Figure-6 series as a horizontal text bar chart.
pub fn render_figure6(points: &[Figure6Point]) -> String {
    let mut out = String::new();
    out.push_str("Figure 6: energy savings and change of total execution time\n");
    out.push_str("  (#: energy saving %, =: exec-time change %; left of | is negative)\n\n");
    let scale = 0.5; // chars per percent
    for p in points {
        let bar = |v: f64, c: char| -> String {
            let len = (v.abs() * scale).round() as usize;
            let bar: String = std::iter::repeat_n(c, len.min(80)).collect();
            if v < 0.0 {
                format!("{bar:>40}|{:<40}", "")
            } else {
                format!("{:>40}|{bar:<40}", "")
            }
        };
        out.push_str(&format!(
            "{:<8} energy {:+7.2}% {}\n",
            p.app,
            p.energy_saving,
            bar(p.energy_saving, '#')
        ));
        out.push_str(&format!(
            "{:<8} time   {:+7.2}% {}\n",
            "",
            p.time_change,
            bar(p.time_change, '=')
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use corepart_tech::units::{Cycles, GateEq};

    fn metrics(up_uj: f64, asic_uj: Option<f64>, upc: u64, ac: u64) -> DesignMetrics {
        DesignMetrics {
            icache: Energy::from_microjoules(100.0),
            dcache: Energy::from_microjoules(20.0),
            mem: Energy::from_microjoules(30.0),
            bus: Energy::ZERO,
            up_core: Energy::from_microjoules(up_uj),
            asic_core: asic_uj.map(Energy::from_microjoules),
            up_cycles: Cycles::new(upc),
            asic_cycles: Cycles::new(ac),
            geq: GateEq::new(9_000),
            icache_miss_ratio: 0.01,
            dcache_miss_ratio: 0.02,
        }
    }

    fn entry(name: &str) -> Table1Entry {
        Table1Entry {
            app: name.into(),
            initial: metrics(500.0, None, 40_000, 0),
            partitioned: Some(metrics(100.0, Some(30.0), 20_000, 5_000)),
        }
    }

    #[test]
    fn table_renders_both_rows() {
        let mut t = Table1::new();
        t.push(entry("3d"));
        let s = t.to_string();
        assert!(s.contains("3d"));
        assert!(s.contains(" I "));
        assert!(s.contains(" P "));
        assert!(s.contains("n/a"));
        // Savings column: (650-280)/650 = 56.9% -> printed as -56.9x.
        assert!(s.contains("-56.9"), "{s}");
    }

    #[test]
    fn table_handles_missing_partition() {
        let mut t = Table1::new();
        t.push(Table1Entry {
            app: "trick".into(),
            initial: metrics(500.0, None, 40_000, 0),
            partitioned: None,
        });
        let s = t.to_string();
        assert!(s.contains("no partition"));
    }

    #[test]
    fn figure6_extraction_and_render() {
        let mut t = Table1::new();
        t.push(entry("mpg"));
        let pts = figure6(&t);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].energy_saving > 0.0);
        assert!(pts[0].time_change < 0.0);
        let chart = render_figure6(&pts);
        assert!(chart.contains("mpg"));
        assert!(chart.contains('#'));
        assert!(chart.contains('='));
    }

    #[test]
    fn entry_percentages() {
        let e = entry("x");
        let s = e.saving_percent().unwrap();
        assert!((s - (650.0 - 280.0) / 650.0 * 100.0).abs() < 0.01);
        let c = e.time_change_percent().unwrap();
        assert!((c - (25_000.0 - 40_000.0) / 40_000.0 * 100.0).abs() < 0.01);
    }
}
