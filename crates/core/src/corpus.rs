//! Corpus-scale exploration: run the full partition/explore flow over
//! an unbounded, deterministic stream of applications.
//!
//! The paper validates on six fixed workloads; this module turns the
//! flow into a *workload factory* consumer. A corpus run maps a
//! deterministic entry provider (`index → application`) over a sharded
//! work queue — entries are evaluated chunk by chunk, in parallel
//! within a chunk via [`par_map`] — and folds every chunk into
//!
//! * one compact **columnar results file** (fixed column order,
//!   byte-stable for a given provider/configuration — see
//!   [`CorpusRow`]),
//! * an incremental **global 3D Pareto frontier** over every explored
//!   design point, maintained by [`ParetoAccumulator`] and pinned
//!   bit-identical to a one-shot [`Exploration::pareto_frontier`] over
//!   the concatenated point set,
//! * **per-feature statistics** (energy saving vs. loop depth, array
//!   footprint, cluster count, hardware-block count) from
//!   [`feature_stats`].
//!
//! Completed chunks are appended to an on-disk **journal** as they
//! finish, so an interrupted run — a kill, a
//! `--limit`, a deliberate [`CorpusOptions::interrupt_after_chunks`] —
//! resumes from the last completed chunk instead of restarting: on
//! resume the journal's chunk records are replayed into the aggregates
//! (row parsing round-trips every `f64` bit-exactly through the
//! shortest-roundtrip rendering), and only the missing chunks are
//! computed. The final columnar file of an interrupted-and-resumed run
//! is byte-identical to an uninterrupted one.
//!
//! Entries are evaluated through one shared [`Engine`] per chunk, so
//! corpus entries reuse the engine's compute-once artifact pools —
//! in particular the schedule cache, which is keyed by resource
//! library and therefore shared across *different* generated
//! applications whose clusters schedule identically.

use std::collections::BTreeMap;
use std::fs;
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::path::Path;

use corepart_ir::ast::{Program, Stmt};
use corepart_ir::cdfg::Application;

use crate::engine::Engine;
use crate::error::CorepartError;
use crate::explore::{DesignPoint, Exploration};
use crate::json::{parse_json, JsonValue};
use crate::parallel::{par_map, resolve_threads};
use crate::partition::Partitioner;
use crate::prepare::Workload;
use crate::serve::{ComputeKind, ComputeRequest, CorpusMeta};
use crate::system::SystemConfig;
use corepart_tech::units::GateEq;

/// Data-word size assumed by the array-footprint feature (the ISS is a
/// 32-bit machine; one declared element occupies one word).
const WORD_BYTES: u64 = 4;

// ---------------------------------------------------------------------
// Source features
// ---------------------------------------------------------------------

/// Structural features of one corpus entry, extracted from its parsed
/// source — the axes the per-feature statistics bucket savings over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SourceFeatures {
    /// Maximum loop-nest depth across all functions.
    pub loop_depth: u32,
    /// Total declared array footprint in bytes.
    pub array_bytes: u64,
    /// Total statement count across all function bodies (recursive).
    pub stmts: u32,
}

/// Extracts [`SourceFeatures`] from a parsed program.
pub fn source_features(program: &Program) -> SourceFeatures {
    fn walk(stmts: &[Stmt], depth: u32, max_depth: &mut u32, count: &mut u32) {
        for s in stmts {
            *count += 1;
            match s {
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    walk(then_body, depth, max_depth, count);
                    walk(else_body, depth, max_depth, count);
                }
                Stmt::While { body, .. } | Stmt::For { body, .. } => {
                    *max_depth = (*max_depth).max(depth + 1);
                    walk(body, depth + 1, max_depth, count);
                }
                _ => {}
            }
        }
    }
    let mut loop_depth = 0;
    let mut stmts = 0;
    for f in &program.funcs {
        walk(&f.body, 0, &mut loop_depth, &mut stmts);
    }
    SourceFeatures {
        loop_depth,
        array_bytes: program
            .arrays
            .iter()
            .map(|a| u64::from(a.len) * WORD_BYTES)
            .sum(),
        stmts,
    }
}

// ---------------------------------------------------------------------
// Entries and options
// ---------------------------------------------------------------------

/// One corpus entry, as produced by a provider: a lowered application
/// plus the metadata the results file records.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The entry's position in the corpus (== the provider argument).
    pub index: u64,
    /// The deterministic per-entry seed (0 for file-backed corpora).
    pub seed: u64,
    /// The entry name (sanitized into one results-file cell).
    pub name: String,
    /// The raw BDL source text. The distributed client ships it
    /// verbatim to the serve daemon, which re-parses and re-lowers it —
    /// so both sides derive features and applications from the same
    /// bytes.
    pub source: String,
    /// The lowered application.
    pub app: Application,
    /// The workload every evaluation runs under.
    pub workload: Workload,
    /// Structural features of the source.
    pub features: SourceFeatures,
}

/// Corpus-run configuration.
#[derive(Debug, Clone)]
pub struct CorpusOptions {
    /// The base system configuration (searches run with `threads = 1`
    /// inside the chunk-parallel map; the base thread count is
    /// ignored).
    pub base: SystemConfig,
    /// Objective hardware weights explored per entry (the `G` sweep);
    /// each contributes one design point to the global frontier.
    pub g_sweep: Vec<f64>,
    /// Entries per journal chunk (the resume granularity).
    pub chunk: usize,
    /// Worker threads for the within-chunk parallel map (0 = auto).
    pub threads: usize,
    /// Stop after at least this many freshly evaluated entries
    /// (rounded up to a chunk boundary); the journal keeps the run
    /// resumable.
    pub limit: Option<u64>,
    /// Deterministic interrupt: stop after this many freshly computed
    /// chunks (testing/CI hook for kill-and-resume coverage).
    pub interrupt_after_chunks: Option<usize>,
    /// Provider identity recorded in (and checked against) the
    /// journal header, e.g. `"gen seed=7"`.
    pub provider_tag: String,
}

impl CorpusOptions {
    /// Options with the default `G` sweep and chunk size.
    pub fn new(base: SystemConfig) -> Self {
        CorpusOptions {
            base,
            g_sweep: vec![0.0, 0.2, 1.0],
            chunk: 32,
            threads: 0,
            limit: None,
            interrupt_after_chunks: None,
            provider_tag: "unnamed".into(),
        }
    }

    fn validate(&self, count: u64) -> Result<(), CorepartError> {
        if count == 0 {
            return Err(CorepartError::Config {
                message: "corpus needs at least one entry".into(),
            });
        }
        if self.chunk == 0 {
            return Err(CorepartError::Config {
                message: "corpus chunk size must be at least 1".into(),
            });
        }
        if self.g_sweep.is_empty() {
            return Err(CorepartError::Config {
                message: "corpus needs at least one objective weight".into(),
            });
        }
        self.base.validate()
    }

    /// The journal parameter line: everything a resumed run must agree
    /// on. Thread count and limits are deliberately excluded — they
    /// change wall time, never results.
    fn params(&self, count: u64) -> String {
        format!(
            "count={count} chunk={} gsweep={:?} provider={} config={:016x}",
            self.chunk,
            self.g_sweep,
            sanitize(&self.provider_tag),
            fingerprint64(format!("{:?}", self.base).as_bytes()),
        )
    }
}

/// Distributed execution: where and how to ship corpus chunks to a
/// running `corepart serve` daemon instead of evaluating in-process.
#[derive(Debug, Clone)]
pub struct RemoteOptions {
    /// The daemon's `host:port`.
    pub addr: String,
    /// Persistent connections to pipeline requests over (`0` = 1).
    /// Each chunk is split round-robin across them, all requests
    /// written before any response is read.
    pub connections: usize,
}

impl RemoteOptions {
    /// Options for one connection to `addr`.
    pub fn new(addr: &str) -> Self {
        RemoteOptions {
            addr: addr.to_owned(),
            connections: 1,
        }
    }
}

/// FNV-1a over `bytes` — the journal's configuration fingerprint.
/// Public so providers can fold their own identity (a directory
/// listing, a generator revision) into [`CorpusOptions::provider_tag`].
pub fn fingerprint64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Collapses whitespace to `_` so a value fits one tab-separated cell.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

// ---------------------------------------------------------------------
// Columnar rows
// ---------------------------------------------------------------------

/// The fixed column order of the results file (tab-separated).
pub const COLUMNS: [&str; 21] = [
    "index",
    "seed",
    "name",
    "clusters",
    "loop_clusters",
    "loop_depth",
    "array_bytes",
    "stmts",
    "candidates",
    "estimated",
    "growth_steps",
    "verifications",
    "hw_clusters",
    "hw_blocks",
    "geq_cells",
    "initial_j",
    "best_j",
    "saving_pct",
    "initial_cycles",
    "best_cycles",
    "time_pct",
];

/// The results-file magic line.
pub const COLUMNAR_MAGIC: &str = "#corpart-corpus v1";

/// One evaluated corpus entry as a results-file row. Every `f64` is
/// rendered with Rust's shortest-roundtrip formatting, so
/// [`CorpusRow::parse_line`] reconstructs it bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusRow {
    /// Corpus index.
    pub index: u64,
    /// Per-entry seed.
    pub seed: u64,
    /// Entry name.
    pub name: String,
    /// Clusters in the decomposition chain.
    pub clusters: u32,
    /// Loop-nest clusters among them.
    pub loop_clusters: u32,
    /// Maximum source loop-nest depth.
    pub loop_depth: u32,
    /// Declared array footprint in bytes.
    pub array_bytes: u64,
    /// Source statement count.
    pub stmts: u32,
    /// Clusters surviving pre-selection (best sweep config).
    pub candidates: u32,
    /// (cluster, set) pairs estimated.
    pub estimated: u32,
    /// Greedy growth steps that improved the objective.
    pub growth_steps: u32,
    /// Full verifications run.
    pub verifications: u32,
    /// Clusters moved to hardware by the chosen design (0 = none won).
    pub hw_clusters: u32,
    /// Basic blocks moved to hardware by the chosen design.
    pub hw_blocks: u32,
    /// Additional hardware of the chosen design, gate-equivalent cells.
    pub geq_cells: u64,
    /// Initial (all-software) energy, joules.
    pub initial_j: f64,
    /// Chosen-design energy, joules (== `initial_j` when nothing won).
    pub best_j: f64,
    /// Energy saving of the chosen design, percent.
    pub saving_pct: f64,
    /// Initial execution cycles.
    pub initial_cycles: u64,
    /// Chosen-design execution cycles.
    pub best_cycles: u64,
    /// Execution-time change, percent (negative = faster).
    pub time_pct: f64,
}

impl CorpusRow {
    /// Renders the row as one tab-separated line (no newline).
    pub fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.index,
            self.seed,
            sanitize(&self.name),
            self.clusters,
            self.loop_clusters,
            self.loop_depth,
            self.array_bytes,
            self.stmts,
            self.candidates,
            self.estimated,
            self.growth_steps,
            self.verifications,
            self.hw_clusters,
            self.hw_blocks,
            self.geq_cells,
            self.initial_j,
            self.best_j,
            self.saving_pct,
            self.initial_cycles,
            self.best_cycles,
            self.time_pct,
        )
    }

    /// Parses a line produced by [`CorpusRow::to_line`]. Round-trips
    /// bit-exactly (shortest-roundtrip `f64` rendering).
    pub fn parse_line(line: &str) -> Result<CorpusRow, CorepartError> {
        let cells: Vec<&str> = line.split('\t').collect();
        if cells.len() != COLUMNS.len() {
            return Err(CorepartError::Config {
                message: format!(
                    "corpus row has {} cells, expected {}: {line:?}",
                    cells.len(),
                    COLUMNS.len()
                ),
            });
        }
        fn cell<T: std::str::FromStr>(cells: &[&str], i: usize) -> Result<T, CorepartError> {
            cells[i].parse().map_err(|_| CorepartError::Config {
                message: format!("bad corpus cell `{}` for column {}", cells[i], COLUMNS[i]),
            })
        }
        Ok(CorpusRow {
            index: cell(&cells, 0)?,
            seed: cell(&cells, 1)?,
            name: cells[2].to_owned(),
            clusters: cell(&cells, 3)?,
            loop_clusters: cell(&cells, 4)?,
            loop_depth: cell(&cells, 5)?,
            array_bytes: cell(&cells, 6)?,
            stmts: cell(&cells, 7)?,
            candidates: cell(&cells, 8)?,
            estimated: cell(&cells, 9)?,
            growth_steps: cell(&cells, 10)?,
            verifications: cell(&cells, 11)?,
            hw_clusters: cell(&cells, 12)?,
            hw_blocks: cell(&cells, 13)?,
            geq_cells: cell(&cells, 14)?,
            initial_j: cell(&cells, 15)?,
            best_j: cell(&cells, 16)?,
            saving_pct: cell(&cells, 17)?,
            initial_cycles: cell(&cells, 18)?,
            best_cycles: cell(&cells, 19)?,
            time_pct: cell(&cells, 20)?,
        })
    }
}

/// Renders the full columnar results file (magic + header + rows).
pub fn render_columnar(rows: &[CorpusRow]) -> String {
    let mut out = String::new();
    out.push_str(COLUMNAR_MAGIC);
    out.push('\n');
    out.push_str(&COLUMNS.join("\t"));
    out.push('\n');
    for row in rows {
        out.push_str(&row.to_line());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Incremental Pareto aggregation
// ---------------------------------------------------------------------

/// Incrementally maintains the global 3D (energy, cycles, hardware)
/// Pareto frontier over every design point fed in so far.
///
/// Invariant (pinned by a property test): after any sequence of
/// [`ParetoAccumulator::add`] calls, [`ParetoAccumulator::frontier`]
/// equals the one-shot [`Exploration::pareto_frontier`] over the
/// concatenation of every point ever added, in concatenation order.
/// This holds because domination is transitive — a point discarded
/// against an early batch would also be discarded against the full
/// set, and the survivor that discarded it survives or is itself
/// replaced by a dominator — and because coincident points keep their
/// first-in-input representative either way.
#[derive(Debug, Clone, Default)]
pub struct ParetoAccumulator {
    points: Vec<DesignPoint>,
}

impl ParetoAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds a batch of design points into the frontier.
    pub fn add<I: IntoIterator<Item = DesignPoint>>(&mut self, batch: I) {
        self.points.extend(batch);
        let ex = Exploration {
            points: std::mem::take(&mut self.points),
        };
        // `pareto_frontier` yields survivors in input order, so the
        // compacted set keeps the concatenation order the invariant
        // depends on.
        self.points = ex.pareto_frontier().into_iter().cloned().collect();
    }

    /// The current frontier, in first-added order.
    pub fn frontier(&self) -> &[DesignPoint] {
        &self.points
    }

    /// Number of points on the current frontier.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points have been added.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

// ---------------------------------------------------------------------
// Per-feature statistics
// ---------------------------------------------------------------------

/// Mean/max energy saving over the rows sharing one feature bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureStat {
    /// The bucketed feature (`loop_depth`, `array_bytes`, `clusters`,
    /// `hw_blocks`).
    pub feature: &'static str,
    /// The bucket value (array bytes are rounded up to a power of
    /// two; the other features bucket exactly).
    pub bucket: u64,
    /// Rows in the bucket.
    pub apps: u32,
    /// Mean saving, percent.
    pub mean_saving_pct: f64,
    /// Best saving, percent.
    pub max_saving_pct: f64,
}

/// Buckets `rows` by each feature axis and reports mean/max savings
/// per bucket, in (feature, bucket) order. Sums run in row order, so
/// the statistics are deterministic for a given row set.
pub fn feature_stats(rows: &[CorpusRow]) -> Vec<FeatureStat> {
    type Axis = (&'static str, fn(&CorpusRow) -> u64);
    let axes: [Axis; 4] = [
        ("loop_depth", |r| u64::from(r.loop_depth)),
        ("array_bytes", |r| r.array_bytes.next_power_of_two()),
        ("clusters", |r| u64::from(r.clusters)),
        ("hw_blocks", |r| u64::from(r.hw_blocks)),
    ];
    let mut out = Vec::new();
    for (feature, key) in axes {
        let mut buckets: BTreeMap<u64, (u32, f64, f64)> = BTreeMap::new();
        for row in rows {
            let entry = buckets
                .entry(key(row))
                .or_insert((0, 0.0, f64::NEG_INFINITY));
            entry.0 += 1;
            entry.1 += row.saving_pct;
            entry.2 = entry.2.max(row.saving_pct);
        }
        for (bucket, (apps, sum, max)) in buckets {
            out.push(FeatureStat {
                feature,
                bucket,
                apps,
                mean_saving_pct: sum / f64::from(apps),
                max_saving_pct: max,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------

const JOURNAL_MAGIC: &str = "corpart-corpus-journal v1";

/// One completed chunk's journal record.
#[derive(Debug, Clone, PartialEq, Default)]
struct ChunkRecord {
    rows: Vec<CorpusRow>,
    points: Vec<DesignPoint>,
}

/// Renders one design point as a tagged journal line (`point\t...`).
/// Public because the serve daemon's `corpus` command ships points as
/// these exact lines, so the distributed client folds them into its
/// journal byte-identically to local evaluation.
pub fn point_to_line(p: &DesignPoint) -> String {
    format!(
        "point\t{}\t{}\t{}\t{}\t{}\t{}",
        sanitize(&p.label).replace('\t', "_"),
        p.energy.joules(),
        p.cycles.count(),
        p.geq.cells(),
        p.saving_percent,
        u8::from(p.is_initial),
    )
}

/// Parses a tagged point line produced by [`point_to_line`] — the
/// inverse the distributed client applies to server responses.
/// Round-trips every `f64` bit-exactly.
pub fn point_from_line(line: &str) -> Result<DesignPoint, CorepartError> {
    let rest = line
        .strip_prefix("point\t")
        .ok_or_else(|| CorepartError::Config {
            message: format!("not a point line: {line:?}"),
        })?;
    let cells: Vec<&str> = rest.split('\t').collect();
    point_from_cells(&cells)
}

fn point_from_cells(cells: &[&str]) -> Result<DesignPoint, CorepartError> {
    let bad = |what: &str| CorepartError::Config {
        message: format!("bad journal point {what}: {cells:?}"),
    };
    if cells.len() != 6 {
        return Err(bad("arity"));
    }
    Ok(DesignPoint {
        label: cells[0].to_owned(),
        energy: corepart_tech::units::Energy::from_joules(
            cells[1].parse().map_err(|_| bad("energy"))?,
        ),
        cycles: corepart_tech::units::Cycles::new(cells[2].parse().map_err(|_| bad("cycles"))?),
        geq: GateEq::new(cells[3].parse().map_err(|_| bad("geq"))?),
        saving_percent: cells[4].parse().map_err(|_| bad("saving"))?,
        is_initial: cells[5] == "1",
    })
}

/// The resumable on-disk journal: a line-oriented log of completed
/// chunks. A chunk is durable once its `end` line is on disk; a
/// partial trailing chunk (interrupted mid-write) is discarded on
/// resume, and the journal is rewritten to the last durable prefix
/// before appending — so an interrupted-and-resumed journal is
/// byte-identical to an uninterrupted one.
struct Journal {
    file: fs::File,
}

impl Journal {
    fn header(params: &str) -> String {
        format!("{JOURNAL_MAGIC}\nmeta\t{params}\n")
    }

    /// Starts a fresh journal, truncating any existing file.
    fn create(path: &Path, params: &str) -> Result<Journal, CorepartError> {
        let mut file = fs::File::create(path).map_err(|e| CorepartError::Config {
            message: format!("cannot create journal {}: {e}", path.display()),
        })?;
        file.write_all(Journal::header(params).as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| CorepartError::Config {
                message: format!("cannot write journal {}: {e}", path.display()),
            })?;
        Ok(Journal { file })
    }

    /// Loads the durable chunk prefix of an existing journal, then
    /// rewrites the file to exactly that prefix and reopens it for
    /// appending. Returns the completed chunks keyed by index.
    fn resume(
        path: &Path,
        params: &str,
    ) -> Result<(Journal, BTreeMap<usize, ChunkRecord>), CorepartError> {
        let text = fs::read_to_string(path).map_err(|e| CorepartError::Config {
            message: format!("cannot read journal {}: {e}", path.display()),
        })?;
        let mut lines = text.lines();
        if lines.next() != Some(JOURNAL_MAGIC) {
            return Err(CorepartError::Config {
                message: format!("{} is not a corpus journal", path.display()),
            });
        }
        let expected_meta = format!("meta\t{params}");
        match lines.next() {
            Some(meta) if meta == expected_meta => {}
            Some(meta) => {
                return Err(CorepartError::Config {
                    message: format!(
                        "journal {} was written for different parameters\n  journal: {meta}\n  \
                         run:     {expected_meta}",
                        path.display()
                    ),
                });
            }
            None => {
                return Err(CorepartError::Config {
                    message: format!("journal {} is truncated", path.display()),
                });
            }
        }

        // Any malformed line — unknown tag, row outside a chunk, a
        // partial last line cut off mid-write — ends the durable
        // prefix; everything after it is discarded.
        let mut chunks: BTreeMap<usize, ChunkRecord> = BTreeMap::new();
        let mut durable = Journal::header(params);
        let mut current: Option<(usize, ChunkRecord, String)> = None;
        'scan: for line in lines {
            let Some((tag, rest)) = line.split_once('\t') else {
                break 'scan;
            };
            match tag {
                "chunk" => {
                    if current.is_some() {
                        break 'scan;
                    }
                    let Ok(k) = rest.parse::<usize>() else {
                        break 'scan;
                    };
                    current = Some((k, ChunkRecord::default(), format!("{line}\n")));
                }
                "row" => {
                    let Some((_, record, raw)) = current.as_mut() else {
                        break 'scan;
                    };
                    let Ok(row) = CorpusRow::parse_line(rest) else {
                        break 'scan;
                    };
                    record.rows.push(row);
                    raw.push_str(line);
                    raw.push('\n');
                }
                "point" => {
                    let Some((_, record, raw)) = current.as_mut() else {
                        break 'scan;
                    };
                    let cells: Vec<&str> = rest.split('\t').collect();
                    let Ok(p) = point_from_cells(&cells) else {
                        break 'scan;
                    };
                    record.points.push(p);
                    raw.push_str(line);
                    raw.push('\n');
                }
                "end" => {
                    let matches = current
                        .as_ref()
                        .is_some_and(|(k, _, _)| rest.parse::<usize>().ok() == Some(*k));
                    if !matches {
                        break 'scan;
                    }
                    let (k, record, raw) = current.take().expect("checked above");
                    durable.push_str(&raw);
                    durable.push_str(&format!("end\t{k}\n"));
                    chunks.insert(k, record);
                }
                _ => break 'scan,
            }
        }

        fs::write(path, &durable).map_err(|e| CorepartError::Config {
            message: format!("cannot rewrite journal {}: {e}", path.display()),
        })?;
        let file = fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| CorepartError::Config {
                message: format!("cannot reopen journal {}: {e}", path.display()),
            })?;
        Ok((Journal { file }, chunks))
    }

    /// Appends one completed chunk and flushes it to disk.
    fn append_chunk(&mut self, index: usize, record: &ChunkRecord) -> Result<(), CorepartError> {
        let mut text = format!("chunk\t{index}\n");
        for row in &record.rows {
            text.push_str("row\t");
            text.push_str(&row.to_line());
            text.push('\n');
        }
        for point in &record.points {
            text.push_str(&point_to_line(point));
            text.push('\n');
        }
        text.push_str(&format!("end\t{index}\n"));
        self.file
            .write_all(text.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| CorepartError::Config {
                message: format!("cannot append to journal: {e}"),
            })
    }
}

// ---------------------------------------------------------------------
// The runner
// ---------------------------------------------------------------------

/// The result of one corpus invocation (possibly partial).
#[derive(Debug, Clone)]
pub struct CorpusOutcome {
    /// Requested corpus size.
    pub count: u64,
    /// Total chunks in the corpus.
    pub chunks: usize,
    /// Chunks completed so far (replayed + fresh).
    pub chunks_done: usize,
    /// Entries freshly evaluated by this invocation.
    pub evaluated: u64,
    /// Entries replayed from the journal.
    pub replayed: u64,
    /// Whether every chunk is complete (the results file is only
    /// written when true).
    pub finished: bool,
    /// Every processed row, in corpus order.
    pub rows: Vec<CorpusRow>,
    /// The aggregate Pareto frontier over every processed design
    /// point.
    pub frontier: Vec<DesignPoint>,
    /// Per-feature saving statistics over the processed rows.
    pub features: Vec<FeatureStat>,
}

/// Runs (or resumes) a corpus: evaluates `count` entries from
/// `provider` under `options`, journaling to `journal_path`, and —
/// once every chunk is complete — writes the columnar results file to
/// `out_path`.
///
/// With `resume`, `journal_path` must hold a journal written with
/// identical parameters; its completed chunks are replayed instead of
/// recomputed. Without `resume`, any existing journal is overwritten.
///
/// # Errors
///
/// Configuration errors (zero count/chunk, parameter mismatch on
/// resume, unreadable journal) and any provider or flow error.
pub fn run_corpus<P>(
    count: u64,
    provider: P,
    options: &CorpusOptions,
    journal_path: &Path,
    out_path: &Path,
    resume: bool,
) -> Result<CorpusOutcome, CorepartError>
where
    P: Fn(u64) -> Result<CorpusEntry, CorepartError> + Sync,
{
    run_corpus_with(
        count,
        provider,
        options,
        journal_path,
        out_path,
        resume,
        None,
    )
}

/// [`run_corpus`] with an optional remote executor: with
/// `remote = Some(..)`, chunks are shipped to a `corepart serve`
/// daemon as pipelined `corpus` requests over N persistent connections
/// instead of being evaluated in-process. The journal parameter line,
/// chunk records, TSV, and frontier are byte-identical either way (the
/// server evaluates through the same [`evaluate_corpus_entry`] and
/// ships rows/points as the exact journal lines), so a run may even be
/// interrupted locally and resumed remotely or vice versa.
///
/// # Errors
///
/// Everything [`run_corpus`] can raise, plus connection and protocol
/// failures against the daemon — raised *before* the journal is
/// touched when no connection can be established at all.
pub fn run_corpus_with<P>(
    count: u64,
    provider: P,
    options: &CorpusOptions,
    journal_path: &Path,
    out_path: &Path,
    resume: bool,
    remote: Option<&RemoteOptions>,
) -> Result<CorpusOutcome, CorepartError>
where
    P: Fn(u64) -> Result<CorpusEntry, CorepartError> + Sync,
{
    options.validate(count)?;
    if remote.is_some() && options.base.operating_point.is_some() {
        return Err(CorepartError::Config {
            message: "distributed corpus runs do not support operating-point re-weighting".into(),
        });
    }
    // Connect before creating or rewriting the journal: a dead address
    // must not disturb a resumable run on disk.
    let mut remote_conns = remote.map(RemoteCorpus::connect).transpose()?;
    let params = options.params(count);
    let (mut journal, mut done) = if resume && journal_path.exists() {
        Journal::resume(journal_path, &params)?
    } else {
        (Journal::create(journal_path, &params)?, BTreeMap::new())
    };

    let chunks = count.div_ceil(options.chunk as u64) as usize;
    let threads = resolve_threads(options.threads);
    let mut aggregate = ParetoAccumulator::new();
    let mut rows: Vec<CorpusRow> = Vec::with_capacity(count as usize);
    let mut evaluated: u64 = 0;
    let mut replayed: u64 = 0;
    let mut chunks_done = 0usize;
    let mut fresh_chunks = 0usize;
    let mut finished = true;

    for k in 0..chunks {
        let lo = k as u64 * options.chunk as u64;
        let hi = (lo + options.chunk as u64).min(count);
        let record = match done.remove(&k) {
            Some(record) => {
                let expect = (hi - lo) as usize;
                if record.rows.len() != expect {
                    return Err(CorepartError::Config {
                        message: format!(
                            "journal chunk {k} has {} rows, expected {expect}",
                            record.rows.len()
                        ),
                    });
                }
                replayed += record.rows.len() as u64;
                record
            }
            None => {
                // Stop *before* computing the next chunk once a limit
                // or deterministic interrupt is reached; the journal
                // keeps everything already done.
                if options.limit.is_some_and(|l| evaluated >= l)
                    || options
                        .interrupt_after_chunks
                        .is_some_and(|n| fresh_chunks >= n)
                {
                    finished = false;
                    break;
                }
                let entries: Vec<CorpusEntry> =
                    (lo..hi).map(&provider).collect::<Result<_, _>>()?;
                let record = match remote_conns.as_mut() {
                    Some(rc) => rc.evaluate_chunk(&entries, options)?,
                    None => evaluate_chunk(&entries, options, threads)?,
                };
                journal.append_chunk(k, &record)?;
                evaluated += record.rows.len() as u64;
                fresh_chunks += 1;
                record
            }
        };
        aggregate.add(record.points);
        rows.extend(record.rows);
        chunks_done += 1;
    }

    if finished {
        fs::write(out_path, render_columnar(&rows)).map_err(|e| CorepartError::Config {
            message: format!("cannot write results {}: {e}", out_path.display()),
        })?;
    }
    let features = feature_stats(&rows);
    Ok(CorpusOutcome {
        count,
        chunks,
        chunks_done,
        evaluated,
        replayed,
        finished,
        rows,
        frontier: aggregate.frontier().to_vec(),
        features,
    })
}

/// Evaluates one chunk of entries in parallel through a shared
/// [`Engine`] (one per chunk: bounded artifact growth, shared
/// schedule cache within the chunk).
fn evaluate_chunk(
    entries: &[CorpusEntry],
    options: &CorpusOptions,
    threads: usize,
) -> Result<ChunkRecord, CorepartError> {
    let engine = Engine::new(options.base.clone().with_threads(1))?;
    let results = par_map(entries, threads, |_, entry| {
        evaluate_corpus_entry(&engine, entry, options)
    });
    let mut record = ChunkRecord::default();
    for result in results {
        let (row, points) = result?;
        record.rows.push(row);
        record.points.extend(points);
    }
    Ok(record)
}

/// The distributed executor: N persistent connections to one serve
/// daemon, each chunk shipped as pipelined `corpus` requests (all
/// writes before any read) split round-robin across the connections.
/// Responses come back in request order per connection, so reassembly
/// into corpus order needs no buffering beyond the daemon's own
/// reorder logic.
struct RemoteCorpus {
    addr: String,
    conns: Vec<(BufReader<TcpStream>, TcpStream)>,
}

impl RemoteCorpus {
    /// Opens every connection up front, so a dead address fails the
    /// run before any journal state is touched.
    fn connect(options: &RemoteOptions) -> Result<RemoteCorpus, CorepartError> {
        let n = options.connections.max(1);
        let mut conns = Vec::with_capacity(n);
        for _ in 0..n {
            let stream = TcpStream::connect(&options.addr).map_err(|e| CorepartError::Config {
                message: format!("cannot connect to serve daemon {}: {e}", options.addr),
            })?;
            let _ = stream.set_nodelay(true);
            let writer = stream.try_clone().map_err(|e| CorepartError::Config {
                message: format!("cannot clone connection to {}: {e}", options.addr),
            })?;
            conns.push((BufReader::new(stream), writer));
        }
        Ok(RemoteCorpus {
            addr: options.addr.clone(),
            conns,
        })
    }

    /// Ships one chunk and reassembles the server's rows and points
    /// into a [`ChunkRecord`] in corpus-entry order.
    fn evaluate_chunk(
        &mut self,
        entries: &[CorpusEntry],
        options: &CorpusOptions,
    ) -> Result<ChunkRecord, CorepartError> {
        let addr = self.addr.clone();
        let net = |e: std::io::Error| CorepartError::Config {
            message: format!("serve daemon {addr}: connection failed mid-chunk: {e}"),
        };
        let mut batches: Vec<Vec<&CorpusEntry>> = vec![Vec::new(); self.conns.len()];
        for (i, entry) in entries.iter().enumerate() {
            batches[i % self.conns.len()].push(entry);
        }
        // Write phase: every request of the chunk is in flight before
        // the first response is read — the pipelining that lets one
        // client keep every store shard busy.
        for ((_, writer), batch) in self.conns.iter_mut().zip(&batches) {
            let mut text = String::new();
            for entry in batch {
                text.push_str(&corpus_request(entry, options).to_json());
                text.push('\n');
            }
            writer
                .write_all(text.as_bytes())
                .and_then(|()| writer.flush())
                .map_err(net)?;
        }
        // Read phase: per connection, responses arrive in request
        // order (corpus requests stay `ordered`).
        let mut results: Vec<Option<(CorpusRow, Vec<DesignPoint>)>> =
            entries.iter().map(|_| None).collect();
        for (c, batch) in batches.iter().enumerate() {
            for entry in batch {
                let mut line = String::new();
                let read = self.conns[c].0.read_line(&mut line).map_err(net)?;
                if read == 0 {
                    return Err(CorepartError::Config {
                        message: format!(
                            "serve daemon {addr} closed the connection mid-chunk \
                             (entry {} unanswered); re-run with --resume",
                            entry.index
                        ),
                    });
                }
                // Entries are consecutive corpus indices, so the slot
                // follows from the first entry's index.
                let pos = (entry.index - entries[0].index) as usize;
                results[pos] = Some(parse_corpus_response(line.trim_end(), entry, &addr)?);
            }
        }
        let mut record = ChunkRecord::default();
        for result in results {
            let (row, points) = result.expect("every entry was assigned a connection");
            record.rows.push(row);
            record.points.extend(points);
        }
        Ok(record)
    }
}

/// Builds the wire request for one corpus entry: source and workload
/// shipped verbatim, the searchable knobs pinned explicitly so the
/// daemon's own base configuration cannot leak into the results.
/// (`factor_g` is irrelevant — [`evaluate_corpus_entry`] overrides it
/// per sweep step; every *other* configuration axis must already match
/// between client and daemon, which the journal's config fingerprint
/// cross-checks on resume.)
fn corpus_request(entry: &CorpusEntry, options: &CorpusOptions) -> ComputeRequest {
    let mut req = ComputeRequest::new(ComputeKind::Corpus, &entry.source);
    req.id = Some(entry.index);
    req.arrays = entry.workload.arrays.clone();
    req.n_max = Some(options.base.n_max);
    req.factor_f = Some(options.base.factor_f);
    req.weights = Some(options.g_sweep.clone());
    req.corpus = Some(CorpusMeta {
        index: entry.index,
        seed: entry.seed,
        name: entry.name.clone(),
    });
    req
}

/// Parses one `corpus` response line back into the row and points
/// local evaluation would have produced — bit-exactly, because both
/// travel as the journal's own tab-separated renderings.
fn parse_corpus_response(
    line: &str,
    entry: &CorpusEntry,
    addr: &str,
) -> Result<(CorpusRow, Vec<DesignPoint>), CorepartError> {
    let bad = |what: String| CorepartError::Config {
        message: format!("serve daemon {addr}: {what}"),
    };
    let v = parse_json(line).map_err(|e| bad(format!("unparseable response: {e}")))?;
    if v.get("id").and_then(JsonValue::as_u64) != Some(entry.index) {
        return Err(bad(format!(
            "response out of order: expected id {}, got {line:?}",
            entry.index
        )));
    }
    if !matches!(v.get("ok"), Some(JsonValue::Bool(true))) {
        let kind = v
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(JsonValue::as_str)
            .unwrap_or("unknown");
        let message = v
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(JsonValue::as_str)
            .unwrap_or("");
        return Err(bad(format!(
            "entry {} ({}) rejected [{kind}]: {message}",
            entry.index, entry.name
        )));
    }
    let result = v
        .get("result")
        .ok_or_else(|| bad("response has no result".into()))?;
    let row_line = result
        .get("row")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad("corpus result has no row".into()))?;
    let row = CorpusRow::parse_line(row_line)?;
    if row.index != entry.index {
        return Err(bad(format!(
            "row index {} does not match entry {}",
            row.index, entry.index
        )));
    }
    let rendered = result
        .get("points")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| bad("corpus result has no points".into()))?;
    let mut points = Vec::with_capacity(rendered.len());
    for p in rendered {
        let text = p
            .as_str()
            .ok_or_else(|| bad("corpus points must be strings".into()))?;
        points.push(point_from_line(text)?);
    }
    Ok((row, points))
}

/// Runs the `G` sweep on one entry and reduces it to a row plus its
/// design points. The row's search/hardware columns come from the
/// sweep configuration whose chosen design has the lowest energy
/// (ties broken toward the earlier weight).
///
/// Public because the serve daemon's `corpus` command evaluates
/// through this exact function — the distributed client's byte-
/// identity to local runs rests on both paths sharing it. Only
/// `options.base` and `options.g_sweep` matter here (each sweep step
/// forces `threads = 1`); the chunk/journal knobs are the runner's.
pub fn evaluate_corpus_entry(
    engine: &Engine,
    entry: &CorpusEntry,
    options: &CorpusOptions,
) -> Result<(CorpusRow, Vec<DesignPoint>), CorepartError> {
    struct SweepResult {
        g: f64,
        energy: corepart_tech::units::Energy,
        cycles: corepart_tech::units::Cycles,
        geq: GateEq,
        hw_clusters: u32,
        hw_blocks: u32,
        candidates: u32,
        estimated: u32,
        growth_steps: u32,
        verifications: u32,
        saving_pct: f64,
        time_pct: f64,
    }

    let mut results: Vec<SweepResult> = Vec::with_capacity(options.g_sweep.len());
    let mut initial: Option<(corepart_tech::units::Energy, corepart_tech::units::Cycles)> = None;
    let mut prepared: Option<std::sync::Arc<crate::prepare::PreparedApp>> = None;
    for &g in &options.g_sweep {
        let config = options
            .base
            .clone()
            .with_factors(options.base.factor_f, g)
            .with_threads(1);
        let session = engine.session_with_config(&entry.app, &entry.workload, config)?;
        if prepared.is_none() {
            prepared = Some(session.prepared_arc()?);
        }
        let partitioner = Partitioner::new(&session)?;
        let outcome = partitioner.run()?;
        if initial.is_none() {
            initial = Some((
                outcome.initial.total_energy(),
                outcome.initial.total_cycles(),
            ));
        }
        let (energy, cycles, geq, hw_clusters, hw_blocks) = match &outcome.best {
            Some((partition, detail)) => (
                detail.metrics.total_energy(),
                detail.metrics.total_cycles(),
                detail.metrics.geq,
                partition.clusters.len() as u32,
                partitioner.hw_set_of(partition).len() as u32,
            ),
            None => (
                outcome.initial.total_energy(),
                outcome.initial.total_cycles(),
                GateEq::ZERO,
                0,
                0,
            ),
        };
        results.push(SweepResult {
            g,
            energy,
            cycles,
            geq,
            hw_clusters,
            hw_blocks,
            candidates: outcome.search.candidates as u32,
            estimated: outcome.search.estimated as u32,
            growth_steps: outcome.search.growth_steps as u32,
            verifications: outcome.search.verifications as u32,
            saving_pct: outcome.energy_saving_percent().unwrap_or(0.0),
            time_pct: outcome.time_change_percent().unwrap_or(0.0),
        });
    }
    let (initial_energy, initial_cycles) = initial.expect("g_sweep validated non-empty");

    // The per-entry design points: the all-software baseline plus one
    // point per sweep weight, exactly as `explore` would emit them.
    let mut points = Vec::with_capacity(results.len() + 1);
    points.push(DesignPoint {
        label: format!("{} initial", sanitize(&entry.name)),
        energy: initial_energy,
        cycles: initial_cycles,
        geq: GateEq::ZERO,
        saving_percent: 0.0,
        is_initial: true,
    });
    for r in &results {
        points.push(DesignPoint {
            label: format!("{} G={}", sanitize(&entry.name), r.g),
            energy: r.energy,
            cycles: r.cycles,
            geq: r.geq,
            saving_percent: r.energy.percent_saving(initial_energy).unwrap_or(0.0),
            is_initial: false,
        });
    }

    let best = results
        .iter()
        .min_by(|a, b| a.energy.joules().total_cmp(&b.energy.joules()))
        .expect("g_sweep validated non-empty");
    let prepared = prepared.expect("g_sweep validated non-empty");
    let chain = &prepared.chain;
    let row = CorpusRow {
        index: entry.index,
        seed: entry.seed,
        name: sanitize(&entry.name),
        clusters: chain.len() as u32,
        loop_clusters: chain.iter().filter(|c| c.is_loop()).count() as u32,
        loop_depth: entry.features.loop_depth,
        array_bytes: entry.features.array_bytes,
        stmts: entry.features.stmts,
        candidates: best.candidates,
        estimated: best.estimated,
        growth_steps: best.growth_steps,
        verifications: best.verifications,
        hw_clusters: best.hw_clusters,
        hw_blocks: best.hw_blocks,
        geq_cells: best.geq.cells(),
        initial_j: initial_energy.joules(),
        best_j: best.energy.joules(),
        saving_pct: best.saving_pct,
        initial_cycles: initial_cycles.count(),
        best_cycles: best.cycles.count(),
        time_pct: best.time_pct,
    };
    Ok((row, points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use corepart_ir::parser::parse;
    use corepart_tech::units::{Cycles, Energy};

    fn point(label: &str, e: f64, c: u64, g: u64) -> DesignPoint {
        DesignPoint {
            label: label.into(),
            energy: Energy::from_microjoules(e),
            cycles: Cycles::new(c),
            geq: GateEq::new(g),
            saving_percent: 0.0,
            is_initial: false,
        }
    }

    #[test]
    fn source_features_count_depth_and_footprint() {
        let program = parse(
            r#"app feat; var a[16]; var b[8];
            func main() {
                var s = 0;
                for (var i = 0; i < 4; i = i + 1) {
                    if (s < 3) {
                        for (var j = 0; j < 4; j = j + 1) { s = s + a[j]; }
                    }
                }
                return s;
            }"#,
        )
        .expect("parses");
        let f = source_features(&program);
        assert_eq!(f.loop_depth, 2);
        assert_eq!(f.array_bytes, (16 + 8) * WORD_BYTES);
        // var, for, if, inner for, inner assign, outer return = 6.
        assert_eq!(f.stmts, 6);
    }

    #[test]
    fn row_line_round_trips_bit_exactly() {
        let row = CorpusRow {
            index: 3,
            seed: 0x9e3779b97f4a7c15,
            name: "gen three".into(),
            clusters: 4,
            loop_clusters: 2,
            loop_depth: 3,
            array_bytes: 256,
            stmts: 17,
            candidates: 2,
            estimated: 10,
            growth_steps: 1,
            verifications: 3,
            hw_clusters: 1,
            hw_blocks: 5,
            geq_cells: 12_345,
            initial_j: 1.234e-5,
            best_j: 0.1 + 0.2, // deliberately non-representable
            saving_pct: -0.0,
            initial_cycles: 987_654,
            best_cycles: 123,
            time_pct: f64::MIN_POSITIVE,
        };
        let parsed = CorpusRow::parse_line(&row.to_line()).expect("round-trips");
        // `name` is sanitized on render.
        assert_eq!(parsed.name, "gen_three");
        assert_eq!(parsed.best_j.to_bits(), row.best_j.to_bits());
        assert_eq!(parsed.saving_pct.to_bits(), row.saving_pct.to_bits());
        assert_eq!(parsed.time_pct.to_bits(), row.time_pct.to_bits());
        assert_eq!(parsed.to_line(), row.to_line());
        assert!(CorpusRow::parse_line("1\t2\t3").is_err());
    }

    #[test]
    fn accumulator_matches_one_shot_frontier() {
        let all = vec![
            point("a", 10.0, 100, 0),
            point("b", 5.0, 100, 0),
            point("c", 5.0, 100, 0), // coincident with b: b kept
            point("d", 7.0, 50, 10),
            point("e", 4.0, 200, 5),
        ];
        let mut acc = ParetoAccumulator::new();
        acc.add(all[..2].to_vec());
        acc.add(all[2..4].to_vec());
        acc.add(all[4..].to_vec());
        let one_shot: Vec<DesignPoint> = Exploration { points: all }
            .pareto_frontier()
            .into_iter()
            .cloned()
            .collect();
        assert_eq!(acc.frontier(), &one_shot[..]);
        assert!(acc.frontier().iter().all(|p| p.label != "a"));
        assert!(!acc.is_empty());
        assert_eq!(acc.len(), one_shot.len());
    }

    #[test]
    fn journal_points_round_trip() {
        let p = DesignPoint {
            label: "gen7 G=0.2".into(),
            energy: Energy::from_joules(0.30000000000000004),
            cycles: Cycles::new(42),
            geq: GateEq::new(7),
            saving_percent: 33.3333333333,
            is_initial: false,
        };
        let line = point_to_line(&p);
        let cells: Vec<&str> = line.split('\t').skip(1).collect();
        let back = point_from_cells(&cells).expect("parses");
        assert_eq!(back.label, "gen7_G=0.2");
        assert_eq!(back.energy.joules().to_bits(), p.energy.joules().to_bits());
        assert_eq!(back.cycles, p.cycles);
        assert!(point_from_cells(&cells[..3]).is_err());
    }

    #[test]
    fn feature_stats_bucket_and_average() {
        let mut base = CorpusRow::parse_line(
            "0\t0\tx\t1\t1\t1\t96\t5\t1\t1\t0\t1\t1\t2\t10\t1\t0.5\t50\t100\t90\t-10",
        )
        .expect("template row");
        base.array_bytes = 96;
        let mut other = base.clone();
        other.index = 1;
        other.saving_pct = 70.0;
        other.loop_depth = 2;
        let stats = feature_stats(&[base, other]);
        let depth1 = stats
            .iter()
            .find(|s| s.feature == "loop_depth" && s.bucket == 1)
            .expect("bucket exists");
        assert_eq!(depth1.apps, 1);
        assert_eq!(depth1.mean_saving_pct, 50.0);
        let fp = stats
            .iter()
            .find(|s| s.feature == "array_bytes")
            .expect("footprint bucketed");
        assert_eq!(fp.bucket, 128, "rounded up to a power of two");
        let depth2 = stats
            .iter()
            .find(|s| s.feature == "loop_depth" && s.bucket == 2)
            .expect("bucket exists");
        assert_eq!(depth2.max_saving_pct, 70.0);
    }

    #[test]
    fn options_validation_rejects_degenerate_runs() {
        let options = CorpusOptions::new(SystemConfig::new());
        assert!(options.validate(0).is_err());
        let mut zero_chunk = options.clone();
        zero_chunk.chunk = 0;
        assert!(zero_chunk.validate(10).is_err());
        let mut no_sweep = options.clone();
        no_sweep.g_sweep.clear();
        assert!(no_sweep.validate(10).is_err());
        assert!(options.validate(10).is_ok());
    }
}
