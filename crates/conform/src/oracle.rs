//! Differential and metamorphic oracles.
//!
//! Every generated application is pushed through the full design flow
//! under a small matrix of configurations, and the results are
//! compared **bit for bit** — [`corepart::PartitionOutcome`] equality
//! compares every energy figure, cycle count and search counter
//! (wall-clock fields excluded by construction). The oracles encode
//! the spine's documented promises:
//!
//! * **shared-vs-fresh** — resolving a configuration sweep through one
//!   shared [`Engine`]'s artifact pools equals running each
//!   configuration through its own fresh [`DesignFlow`];
//! * **threads** — `threads = 1` equals `threads = N`;
//! * **replay-vs-direct** — a `trace_cap_bytes = 0` flow (every
//!   verification re-simulates) equals the default flow (every
//!   verification replays the capture);
//! * **cache-vs-uncached** — re-evaluating the winning partition with
//!   no schedule cache and no replay engine reproduces the searched
//!   [`corepart::PartitionDetail`];
//! * **stream-invariance** (metamorphic) — moving any cluster to
//!   hardware never changes the executed instruction stream: block
//!   entry counts and the return value match the all-software baseline
//!   for every hardware-block set;
//! * **batch-vs-sequential** — verifying K candidate hardware-block
//!   sets through the batched single-decode replay kernel equals K
//!   one-candidate replays, lane for lane and bit for bit;
//! * **threaded-batch-vs-sequential** — the stretch-sharded,
//!   lane-grouped (threaded) batch walk equals the same K sequential
//!   replays for every thread count and shard granularity tried: the
//!   shard-boundary hierarchy snapshot/resume carry must not perturb
//!   a single f64 in any lane;
//! * **of-monotone** (metamorphic) — the objective function is
//!   strictly increasing in `F` (energy is positive) and
//!   non-decreasing in `G` (strictly when the design carries extra
//!   hardware);
//! * **energy-sum** — [`DesignMetrics::total_energy`] is exactly the
//!   sum of its published components, in the documented order;
//! * **operating-point** (metamorphic) — an operating point never
//!   changes what executes: the initial run's `RunStats` and the full
//!   search outcome at a scaled point equal the base point's bit for
//!   bit; the scaled-point weighting of the searched design equals an
//!   independent analytic re-weighting of base-point counts bit for
//!   bit; and per node, lowering the supply within the DVFS range
//!   never raises the energy weight while the time weight factors
//!   through `CmosProcess::delay_derating` exactly.
//!
//! Any [`corepart::CorepartError`] surfacing from a *generated* (hence
//! well-formed, terminating) application is itself a violation.

use std::collections::HashSet;

use corepart::engine::Engine;
use corepart::evaluate::evaluate_partition;
use corepart::flow::DesignFlow;
use corepart::isa::simulator::RunStats;
use corepart::objective::Objective;
use corepart::partition::{PartitionOutcome, Partitioner};
use corepart::prepare::Workload;
use corepart::system::{DesignMetrics, SystemConfig};
use corepart::verify::{replay_batch, replay_batch_with, replay_run, BatchOptions};
use corepart_ir::cdfg::Application;
use corepart_ir::lower::lower;
use corepart_ir::parser::parse;
use corepart_tech::scaling::{OperatingPoint, PointWeights};
use corepart_tech::units::{Energy, GateEq};

use crate::gen::GenApp;

/// The hardware-effort weights (`G`) the configuration matrix sweeps;
/// `F` is fixed at 1.0 as in the paper's experiments.
pub const G_SWEEP: [f64; 3] = [0.0, 0.2, 1.0];

/// One oracle violation: which promise broke, and how.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The oracle that failed (a stable machine-readable name).
    pub oracle: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl Violation {
    fn new(oracle: &'static str, detail: impl Into<String>) -> Self {
        Violation {
            oracle,
            detail: detail.into(),
        }
    }
}

/// The base configuration of the matrix: the library defaults, two
/// worker threads (so the threads oracle actually crosses a
/// parallel/sequential boundary).
pub fn base_config() -> SystemConfig {
    SystemConfig::new().with_threads(2)
}

/// Outcome equality modulo cache *warmth*: a search through a shared
/// engine may find schedule-cache entries a sibling session already
/// computed, turning misses into hits. Results (initial, best) and
/// every search counter must still match bit for bit, and the **total**
/// lookup count (hits + misses) is deterministic even when the split
/// is not.
pub fn outcomes_equivalent(a: &PartitionOutcome, b: &PartitionOutcome) -> bool {
    a.initial == b.initial
        && a.best == b.best
        && a.search.candidates == b.search.candidates
        && a.search.estimated == b.search.estimated
        && a.search.rejected_by_utilization == b.search.rejected_by_utilization
        && a.search.infeasible == b.search.infeasible
        && a.search.growth_steps == b.search.growth_steps
        && a.search.verifications == b.search.verifications
        && a.search.cache_hits + a.search.cache_misses
            == b.search.cache_hits + b.search.cache_misses
}

/// Parses and lowers the generated application. A failure here is a
/// generator bug, reported as a `generate` violation by
/// [`check_app`].
pub fn lower_app(app: &GenApp) -> Result<Application, String> {
    let parsed = parse(&app.source()).map_err(|e| format!("parse: {e}"))?;
    lower(&parsed).map_err(|e| format!("lower: {e}"))
}

/// Runs every differential and metamorphic oracle on one generated
/// application. Returns the (possibly empty) list of violations;
/// never panics on a well-formed input.
pub fn check_app(app: &GenApp) -> Vec<Violation> {
    let lowered = match lower_app(app) {
        Ok(a) => a,
        Err(e) => {
            return vec![Violation::new(
                "generate",
                format!("generated app does not lower: {e}"),
            )]
        }
    };
    let workload = Workload::from_arrays(app.workload_arrays());
    check_lowered(&lowered, &workload)
}

/// The oracle battery over an already-lowered application. Split out
/// so the fault layer and tests can reuse it.
pub fn check_lowered(app: &Application, workload: &Workload) -> Vec<Violation> {
    let mut violations = Vec::new();
    let base = base_config();

    // --- Shared engine: one artifact pool, one session per G. -------
    let engine = match Engine::new(base.clone()) {
        Ok(e) => e,
        Err(e) => return vec![Violation::new("error", format!("engine build: {e}"))],
    };
    let mut shared: Vec<PartitionOutcome> = Vec::with_capacity(G_SWEEP.len());
    for g in G_SWEEP {
        let config = base.clone().with_factors(base.factor_f, g);
        let outcome = engine
            .session_with_config(app, workload, config)
            .map_err(|e| format!("session (G = {g}): {e}"))
            .and_then(|session| {
                Partitioner::new(&session)
                    .and_then(|p| p.run())
                    .map_err(|e| format!("shared search (G = {g}): {e}"))
            });
        match outcome {
            Ok(o) => shared.push(o),
            Err(e) => return vec![Violation::new("error", e)],
        }
    }

    // --- Oracle: shared-Engine sessions == fresh flows. -------------
    for (g, shared_outcome) in G_SWEEP.iter().zip(&shared) {
        let config = base.clone().with_factors(base.factor_f, *g);
        match DesignFlow::with_config(config).run_app(app.clone(), workload.clone()) {
            Ok(fresh) => {
                if !outcomes_equivalent(&fresh.outcome, shared_outcome) {
                    violations.push(Violation::new(
                        "shared-vs-fresh",
                        format!(
                            "G = {g}: fresh-engine flow diverged from shared-engine session \
                             (fresh saving {:?}%, shared {:?}%)",
                            fresh.outcome.energy_saving_percent(),
                            shared_outcome.energy_saving_percent()
                        ),
                    ));
                }
            }
            Err(e) => violations.push(Violation::new("error", format!("fresh flow: {e}"))),
        }
    }

    // --- Oracle: threads = 1 == threads = 2. -------------------------
    let mid_g = G_SWEEP[1];
    let single = base
        .clone()
        .with_factors(base.factor_f, mid_g)
        .with_threads(1);
    match DesignFlow::with_config(single).run_app(app.clone(), workload.clone()) {
        Ok(result) => {
            if !outcomes_equivalent(&result.outcome, &shared[1]) {
                violations.push(Violation::new(
                    "threads",
                    "threads = 1 search diverged from threads = 2 search".to_string(),
                ));
            }
        }
        Err(e) => violations.push(Violation::new("error", format!("threads=1 flow: {e}"))),
    }

    // --- Oracle: replay off (cap 0) == replay on. --------------------
    let no_replay = base
        .clone()
        .with_factors(base.factor_f, mid_g)
        .with_trace_cap(0);
    match DesignFlow::with_config(no_replay).run_app(app.clone(), workload.clone()) {
        Ok(result) => {
            if !outcomes_equivalent(&result.outcome, &shared[1]) {
                violations.push(Violation::new(
                    "replay-vs-direct",
                    "direct-simulation search (trace_cap_bytes = 0) diverged from \
                     replay-backed search"
                        .to_string(),
                ));
            }
        }
        Err(e) => violations.push(Violation::new("error", format!("cap-0 flow: {e}"))),
    }

    // --- Session-level oracles on the shared engine at G = 0.2. ------
    let config = base.clone().with_factors(base.factor_f, mid_g);
    let session = match engine.session_with_config(app, workload, config) {
        Ok(s) => s,
        Err(e) => {
            violations.push(Violation::new("error", format!("session reopen: {e}")));
            return violations;
        }
    };
    let partitioner = match Partitioner::new(&session) {
        Ok(p) => p,
        Err(e) => {
            violations.push(Violation::new("error", format!("partitioner: {e}")));
            return violations;
        }
    };

    // Oracle: re-evaluating the winner without cache or replay engine
    // reproduces the searched detail bit for bit.
    if let Some((best, detail)) = &shared[1].best {
        match evaluate_partition(
            partitioner.prepared(),
            best,
            partitioner.initial_stats(),
            partitioner.config(),
        ) {
            Ok(direct) => {
                if direct != *detail {
                    violations.push(Violation::new(
                        "cache-vs-uncached",
                        "uncached re-evaluation of the winning partition diverged from \
                         the searched detail"
                            .to_string(),
                    ));
                }
            }
            Err(e) => {
                violations.push(Violation::new(
                    "cache-vs-uncached",
                    format!("winning partition failed uncached re-evaluation: {e}"),
                ));
            }
        }
    }

    // Oracle: hardware moves never change the executed stream.
    violations.extend(stream_invariance(&partitioner));

    // Oracle: batched replay == K sequential replays, lane for lane.
    violations.extend(batch_vs_sequential(&partitioner));

    // Oracle: the threaded, stretch-sharded batch walk is bit-identical
    // to the sequential replays too, for every (threads, shard) tried.
    violations.extend(threaded_batch_vs_sequential(&partitioner));

    // Oracle: OF monotone in F and G over the observed designs.
    let mut observed: Vec<&DesignMetrics> = vec![&shared[1].initial];
    for outcome in &shared {
        if let Some((_, detail)) = &outcome.best {
            observed.push(&detail.metrics);
        }
    }
    violations.extend(of_monotone(partitioner.config(), &observed));

    // Oracle: an operating point re-weighs counts, never changes them.
    violations.extend(operating_point_invariants(app, workload));

    // Oracle: total energy is exactly the component sum.
    for metrics in &observed {
        let sum = metrics.icache
            + metrics.dcache
            + metrics.mem
            + metrics.bus
            + metrics.up_core
            + metrics.asic_core.unwrap_or(Energy::ZERO);
        if sum.joules() != metrics.total_energy().joules() {
            violations.push(Violation::new(
                "energy-sum",
                format!(
                    "component sum {} J != total {} J",
                    sum.joules(),
                    metrics.total_energy().joules()
                ),
            ));
        }
    }

    violations
}

/// Metamorphic: for every (first few) cluster hardware-block sets, the
/// replayed run's block entry counts and return value equal the
/// all-software baseline — accounting moves, execution does not.
fn stream_invariance(partitioner: &Partitioner<'_>) -> Vec<Violation> {
    let mut violations = Vec::new();
    let Some(engine) = partitioner.replay_engine() else {
        // Capture overflowed the cap: nothing to replay, the
        // replay-vs-direct oracle already covered the fallback.
        return violations;
    };
    let prepared = partitioner.prepared();
    let baseline = partitioner.initial_stats();
    for cluster in prepared.chain.iter().take(3) {
        let hw_blocks: HashSet<_> = cluster.blocks.iter().copied().collect();
        if hw_blocks.is_empty() {
            continue;
        }
        match engine.verify(partitioner.config(), &hw_blocks) {
            Ok(run) => {
                if run.stats.block_counts != baseline.block_counts
                    || run.stats.return_value != baseline.return_value
                {
                    violations.push(Violation::new(
                        "stream-invariance",
                        format!(
                            "hardware-mapping cluster {:?} changed the executed stream \
                             (return {} vs baseline {})",
                            cluster.id, run.stats.return_value, baseline.return_value
                        ),
                    ));
                }
            }
            Err(e) => violations.push(Violation::new(
                "stream-invariance",
                format!("replay of cluster {:?} failed: {e}", cluster.id),
            )),
        }
    }
    violations
}

/// Differential: the batched single-decode replay kernel is
/// bit-identical to the one-candidate replay path for a K-candidate
/// batch mixing the empty set, the first few cluster sets, and their
/// union — the shared decode and interleaved per-lane accounting must
/// not perturb a single f64 in any lane.
fn batch_vs_sequential(partitioner: &Partitioner<'_>) -> Vec<Violation> {
    let mut violations = Vec::new();
    let Some(engine) = partitioner.replay_engine() else {
        // Capture overflowed the cap: no trace to batch over.
        return violations;
    };
    let prepared = partitioner.prepared();
    let config = partitioner.config();
    let trace = engine.trace();

    let mut candidates: Vec<HashSet<_>> = vec![HashSet::new()];
    let mut union = HashSet::new();
    for cluster in prepared.chain.iter().take(3) {
        let hw: HashSet<_> = cluster.blocks.iter().copied().collect();
        union.extend(hw.iter().copied());
        candidates.push(hw);
    }
    candidates.push(union);

    match replay_batch(prepared, config, trace, &candidates) {
        Ok(batched) => {
            if batched.len() != candidates.len() {
                violations.push(Violation::new(
                    "batch-vs-sequential",
                    format!(
                        "batch of {} candidates returned {} lanes",
                        candidates.len(),
                        batched.len()
                    ),
                ));
                return violations;
            }
            for (i, (hw, got)) in candidates.iter().zip(&batched).enumerate() {
                match replay_run(prepared, config, trace, hw) {
                    Ok(sequential) => {
                        if sequential != *got {
                            violations.push(Violation::new(
                                "batch-vs-sequential",
                                format!("batched lane {i} diverged from its sequential replay"),
                            ));
                        }
                    }
                    Err(e) => violations.push(Violation::new(
                        "batch-vs-sequential",
                        format!("sequential replay of lane {i} failed: {e}"),
                    )),
                }
            }
        }
        Err(e) => violations.push(Violation::new(
            "batch-vs-sequential",
            format!("batched replay failed: {e}"),
        )),
    }
    violations
}

/// Differential: the stretch-sharded, lane-grouped batch walk — the
/// threaded form of the kernel — equals the one-candidate replay path
/// for the same candidate mix, across thread counts and shard
/// granularities (including `shard_events: 1`, a snapshot/resume at
/// every stretch boundary).
fn threaded_batch_vs_sequential(partitioner: &Partitioner<'_>) -> Vec<Violation> {
    let mut violations = Vec::new();
    let Some(engine) = partitioner.replay_engine() else {
        return violations;
    };
    let prepared = partitioner.prepared();
    let config = partitioner.config();
    let trace = engine.trace();

    let mut candidates: Vec<HashSet<_>> = vec![HashSet::new()];
    let mut union = HashSet::new();
    for cluster in prepared.chain.iter().take(3) {
        let hw: HashSet<_> = cluster.blocks.iter().copied().collect();
        union.extend(hw.iter().copied());
        candidates.push(hw);
    }
    candidates.push(union);

    let sequential: Vec<_> = match candidates
        .iter()
        .map(|hw| replay_run(prepared, config, trace, hw))
        .collect::<Result<_, _>>()
    {
        Ok(runs) => runs,
        Err(e) => {
            violations.push(Violation::new(
                "threaded-batch-vs-sequential",
                format!("sequential reference replay failed: {e}"),
            ));
            return violations;
        }
    };

    for (threads, shard_events) in [(2usize, 0u64), (3, 1), (4, 57)] {
        let opts = BatchOptions {
            threads,
            shard_events,
        };
        match replay_batch_with(prepared, config, trace, &candidates, opts) {
            Ok(batched) if batched == sequential => {}
            Ok(_) => violations.push(Violation::new(
                "threaded-batch-vs-sequential",
                format!(
                    "threaded batch (threads={threads}, shard_events={shard_events}) \
                     diverged from sequential replays"
                ),
            )),
            Err(e) => violations.push(Violation::new(
                "threaded-batch-vs-sequential",
                format!(
                    "threaded batch (threads={threads}, shard_events={shard_events}) failed: {e}"
                ),
            )),
        }
    }
    violations
}

/// Metamorphic: an operating point never changes what executes — it
/// only changes how the node-invariant counts are weighed.
///
/// * **counts** — the initial run's [`RunStats`] and the full search
///   outcome at a scaled point (180 nm nominal) equal the base
///   point's bit for bit;
/// * **weighting** — the resolved weights equal an independently
///   computed `energy_factor · (V/Vnom)²` / `derate / freq_factor` /
///   `area_factor` triple bit for bit, and applying them to the
///   scaled flow's searched design equals applying them to the base
///   flow's (the counts are shared, so the weighted tuples must be
///   bit-identical);
/// * **dvfs** — per node, lowering the supply within the DVFS range
///   never raises the energy weight, and the time weight factors
///   through the node process's
///   [`delay_derating`](corepart_tech::process::CmosProcess::delay_derating)
///   exactly: `time(vdd) == time(vnom) · derate(vdd)` in bits.
fn operating_point_invariants(app: &Application, workload: &Workload) -> Vec<Violation> {
    let mut violations = Vec::new();
    let base = base_config();
    let Some(row) = base.scaling.row(180).cloned() else {
        return vec![Violation::new(
            "operating-point",
            "default scaling table lost its 180nm row",
        )];
    };
    let vnom = row.nominal_vdd(&base.process);
    let point = OperatingPoint {
        node_nm: 180,
        vdd: vnom,
    };
    let scaled_config = base.clone().with_operating_point(point);

    let run_at = |config: SystemConfig| -> Result<(RunStats, PartitionOutcome), String> {
        let engine = Engine::new(config).map_err(|e| e.to_string())?;
        let session = engine.session(app, workload);
        let partitioner = Partitioner::new(&session).map_err(|e| e.to_string())?;
        let stats = partitioner.initial_stats().clone();
        let outcome = partitioner.run().map_err(|e| e.to_string())?;
        Ok((stats, outcome))
    };
    let (base_stats, base_outcome) = match run_at(base.clone()) {
        Ok(v) => v,
        Err(e) => return vec![Violation::new("error", format!("base-point flow: {e}"))],
    };
    let (scaled_stats, scaled_outcome) = match run_at(scaled_config.clone()) {
        Ok(v) => v,
        Err(e) => return vec![Violation::new("error", format!("scaled-point flow: {e}"))],
    };
    if base_stats != scaled_stats {
        violations.push(Violation::new(
            "operating-point",
            format!("initial RunStats changed at {point}"),
        ));
    }
    if !outcomes_equivalent(&base_outcome, &scaled_outcome) {
        violations.push(Violation::new(
            "operating-point",
            format!("search outcome changed at {point}"),
        ));
    }

    let rp = match scaled_config.resolved_point() {
        Ok(Some(rp)) => rp,
        Ok(None) => {
            return vec![Violation::new(
                "operating-point",
                "configured point resolved to None",
            )]
        }
        Err(e) => return vec![Violation::new("error", format!("resolve point: {e}"))],
    };
    let node_process = row.process(&base.process);
    let v_ratio = point.vdd / vnom;
    let expected = PointWeights {
        energy: row.energy_factor * v_ratio * v_ratio,
        time: (1.0 / row.freq_factor) * node_process.delay_derating(point.vdd),
        area: row.area_factor,
    };
    if rp.weights.energy.to_bits() != expected.energy.to_bits()
        || rp.weights.time.to_bits() != expected.time.to_bits()
        || rp.weights.area.to_bits() != expected.area.to_bits()
    {
        violations.push(Violation::new(
            "operating-point",
            format!(
                "resolved weights {:?} != analytic weights {:?} at {point}",
                rp.weights, expected
            ),
        ));
    }
    let pick = |o: &PartitionOutcome| match &o.best {
        Some((_, d)) => (
            d.metrics.total_energy(),
            d.metrics.total_cycles(),
            d.metrics.geq,
        ),
        None => (
            o.initial.total_energy(),
            o.initial.total_cycles(),
            GateEq::ZERO,
        ),
    };
    let (be, bc, bg) = pick(&base_outcome);
    let (se, sc, sg) = pick(&scaled_outcome);
    let wb = rp.weigh_raw(be, bc, bg);
    let ws = rp.weigh_raw(se, sc, sg);
    if wb.energy.joules().to_bits() != ws.energy.joules().to_bits()
        || wb.time.secs().to_bits() != ws.time.secs().to_bits()
        || wb.area_cells.to_bits() != ws.area_cells.to_bits()
    {
        violations.push(Violation::new(
            "operating-point",
            "scaled-point weighting of base counts diverged from the scaled flow".to_string(),
        ));
    }

    for row in base.scaling.rows() {
        let vnom = row.nominal_vdd(&base.process);
        let node = row.process(&base.process);
        let nominal = OperatingPoint {
            node_nm: row.node_nm,
            vdd: vnom,
        };
        let w_nom = match base.scaling.weights(&base.process, &nominal) {
            Ok(w) => w,
            Err(e) => {
                violations.push(Violation::new(
                    "operating-point",
                    format!("nominal point of node {} rejected: {e}", row.node_nm),
                ));
                continue;
            }
        };
        let mut prev_energy = f64::INFINITY;
        for vdd in row.vdd_sweep(&base.process, 4) {
            let p = OperatingPoint {
                node_nm: row.node_nm,
                vdd,
            };
            let w = match base.scaling.weights(&base.process, &p) {
                Ok(w) => w,
                Err(e) => {
                    violations.push(Violation::new(
                        "operating-point",
                        format!("sweep point {p} rejected: {e}"),
                    ));
                    continue;
                }
            };
            if w.energy > prev_energy {
                violations.push(Violation::new(
                    "operating-point",
                    format!(
                        "lowering vdd to {vdd} raised the energy weight at node {}",
                        row.node_nm
                    ),
                ));
            }
            prev_energy = w.energy;
            let derate = node.delay_derating(vdd);
            if w.time.to_bits() != (w_nom.time * derate).to_bits() {
                violations.push(Violation::new(
                    "operating-point",
                    format!(
                        "time weight at {p} does not factor through delay_derating \
                         ({} vs {})",
                        w.time,
                        w_nom.time * derate
                    ),
                ));
            }
        }
    }
    violations
}

/// Metamorphic: `OF = F·(E/E0) + G·(GEQ/GEQ0)` is strictly increasing
/// in `F` and non-decreasing in `G` (strictly when `GEQ > 0`), for
/// every observed design point.
fn of_monotone(config: &SystemConfig, observed: &[&DesignMetrics]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let e_norm = observed[0].total_energy();
    for metrics in observed {
        let energy = metrics.total_energy();
        // F sweep at fixed G.
        let mut last = f64::NEG_INFINITY;
        for f in [0.5, 1.0, 2.0] {
            let objective = Objective::new(&config.clone().with_factors(f, 0.2), e_norm);
            let value = objective.value(energy, metrics.geq);
            if value <= last {
                violations.push(Violation::new(
                    "of-monotone",
                    format!("OF not strictly increasing in F at F = {f} ({value} <= {last})"),
                ));
            }
            last = value;
        }
        // G sweep at fixed F.
        let mut last = f64::NEG_INFINITY;
        for g in G_SWEEP {
            let objective = Objective::new(&config.clone().with_factors(1.0, g), e_norm);
            let value = objective.value(energy, metrics.geq);
            let strict = metrics.geq != GateEq::ZERO && g > 0.0;
            if value < last || (strict && value <= last) {
                violations.push(Violation::new(
                    "of-monotone",
                    format!("OF not monotone in G at G = {g} ({value} vs {last})"),
                ));
            }
            last = value;
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn fixed_seeds_pass_the_battery() {
        for seed in [1, 2, 3] {
            let app = generate(seed);
            let violations = check_app(&app);
            assert!(
                violations.is_empty(),
                "seed {seed} violated: {violations:?}\n{}",
                app.source()
            );
        }
    }
}
