//! Force-directed scheduling — the classic alternative to the paper's
//! list scheduler (Paulin & Knight, 1989).
//!
//! Where the list scheduler greedily packs ready operations into the
//! earliest control step with free capacity, force-directed scheduling
//! (FDS) *balances* the expected resource usage across steps: each
//! operation's placement is chosen to minimize its "force" — the
//! change in concurrency it causes over the distribution graphs of its
//! resource class — so shared units end up more evenly loaded.
//!
//! `corepart` ships FDS as an alternative scheduler for the Fig.-1
//! line 8 step; the `ablation_scheduler` experiment compares schedule
//! length, utilization rate and resulting partition quality against
//! the paper's list scheduler. FDS here is *time-constrained*: it works
//! within the list schedule's length bound and tries to reduce the
//! instance count / raise `U_R` at equal latency.

use corepart_tech::resource::{ResourceKind, ResourceLibrary, ResourceSet};

use crate::dfg::BlockDfg;
use crate::list::{alap, asap, BlockSchedule, OpSlot, SchedError};

/// Force-directed schedule of one block.
///
/// Produces the same [`BlockSchedule`] shape as
/// [`crate::list::list_schedule`], so binding and utilization work
/// unchanged.
///
/// # Errors
///
/// [`SchedError::NoResource`] when some operation class cannot execute
/// on any resource of the set.
pub fn force_directed_schedule(
    dfg: &BlockDfg,
    set: &ResourceSet,
    lib: &ResourceLibrary,
) -> Result<BlockSchedule, SchedError> {
    if dfg.is_empty() {
        return Ok(BlockSchedule::empty());
    }
    for &class in &dfg.classes {
        if !lib.candidates_for(class).iter().any(|&k| set.count(k) > 0) {
            return Err(SchedError::NoResource {
                class,
                set: set.name().to_owned(),
            });
        }
    }

    let n = dfg.len();
    // Resource kind per op: the smallest kind present in the set (the
    // paper's footnote-13 preference); FDS balances *when*, not *what*.
    let kinds: Vec<ResourceKind> = dfg
        .classes
        .iter()
        .map(|&c| {
            lib.candidates_for(c)
                .into_iter()
                .find(|&k| set.count(k) > 0)
                .expect("feasibility checked above")
        })
        .collect();
    let lats: Vec<u64> = kinds
        .iter()
        .map(|&k| lib.expect_spec(k).latency())
        .collect();

    // Time frames from ASAP/ALAP under a modest latency bound: the
    // critical path stretched by 25% (plus slack for multi-cycle ops)
    // gives FDS room to balance.
    let asap_t = asap(dfg, lib);
    let alap_base = alap(dfg, lib);
    let cp: u64 = (0..n).map(|i| asap_t[i] + lats[i]).max().unwrap_or(1);
    let horizon = cp + cp / 4 + 2;
    let slack_extra = horizon - cp;
    let mut frame_lo = asap_t.clone();
    let mut frame_hi: Vec<u64> = alap_base.iter().map(|&t| t + slack_extra).collect();

    // Fixed assignments, chosen one op at a time by minimal force.
    let mut start: Vec<Option<u64>> = vec![None; n];

    // Distribution graph per kind: expected occupancy per step,
    // assuming uniform probability over each op's frame.
    let occupancy = |kind: ResourceKind,
                     step: u64,
                     start: &[Option<u64>],
                     frame_lo: &[u64],
                     frame_hi: &[u64]| {
        let mut dg = 0.0f64;
        for i in 0..n {
            if kinds[i] != kind {
                continue;
            }
            match start[i] {
                Some(s) => {
                    if s <= step && step < s + lats[i] {
                        dg += 1.0;
                    }
                }
                None => {
                    let w = (frame_hi[i] - frame_lo[i] + 1) as f64;
                    // The op occupies `step` if it starts in
                    // [step-lat+1, step] ∩ frame.
                    let lo = step.saturating_sub(lats[i] - 1).max(frame_lo[i]);
                    let hi = step.min(frame_hi[i]);
                    if lo <= hi {
                        dg += (hi - lo + 1) as f64 / w;
                    }
                }
            }
        }
        dg
    };

    // Repeat until every op is fixed: pick the (op, step) with the
    // minimal self-force.
    for _ in 0..n {
        let mut best: Option<(usize, u64, f64)> = None;
        for i in 0..n {
            if start[i].is_some() {
                continue;
            }
            for s in frame_lo[i]..=frame_hi[i] {
                // Self force: occupancy increase over the op's steps,
                // relative to its current expected contribution.
                let mut force = 0.0;
                for t in s..s + lats[i] {
                    force += occupancy(kinds[i], t, &start, &frame_lo, &frame_hi);
                }
                // Prefer earlier steps on ties to keep latency low.
                let force = force + s as f64 * 1e-6;
                if best.map(|(_, _, f)| force < f).unwrap_or(true) {
                    best = Some((i, s, force));
                }
            }
        }
        let (i, s, _) = best.expect("an unfixed op exists");
        start[i] = Some(s);
        frame_lo[i] = s;
        frame_hi[i] = s;
        // Propagate frame tightening along dependencies.
        propagate_frames(dfg, &lats, &mut frame_lo, &mut frame_hi);
    }

    // FDS balanced concurrency but did not enforce hard capacity; fix
    // any residual overflow with a capacity-respecting compaction pass
    // (stable: shifts ops later until a lane is free).
    let order = {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by_key(|&i| (start[i].expect("fixed"), i));
        idx
    };
    let mut slots: Vec<Option<OpSlot>> = vec![None; n];
    let mut finish: Vec<u64> = vec![0; n];
    for &i in &order {
        let kind = kinds[i];
        let lat = lats[i];
        let dep_ready = dfg.preds[i].iter().map(|&p| finish[p]).max().unwrap_or(0);
        let mut s = start[i].expect("fixed").max(dep_ready);
        loop {
            let busy = (0..n)
                .filter(|&j| {
                    slots[j]
                        .map(|sl| sl.kind == kind && sl.step < s + lat && s < sl.step + sl.latency)
                        .unwrap_or(false)
                })
                .count() as u32;
            if busy < set.count(kind) {
                break;
            }
            s += 1;
        }
        slots[i] = Some(OpSlot {
            step: s,
            kind,
            latency: lat,
        });
        finish[i] = s + lat;
    }

    let length = finish.iter().copied().max().unwrap_or(0);
    Ok(BlockSchedule {
        slots: slots.into_iter().map(|s| s.expect("placed")).collect(),
        length,
    })
}

fn propagate_frames(dfg: &BlockDfg, lats: &[u64], lo: &mut [u64], hi: &mut [u64]) {
    // Forward: a successor cannot start before pred_lo + lat.
    for i in 0..dfg.len() {
        for &p in &dfg.preds[i] {
            lo[i] = lo[i].max(lo[p] + lats[p]);
        }
        if hi[i] < lo[i] {
            hi[i] = lo[i];
        }
    }
    // Backward: a predecessor must finish before succ_hi.
    for i in (0..dfg.len()).rev() {
        for &s in &dfg.succs[i] {
            let bound = hi[s].saturating_sub(lats[i]);
            if hi[i] > bound {
                hi[i] = bound.max(lo[i]);
            }
        }
    }
}

/// Schedules every block of a cluster with FDS (the analogue of
/// [`crate::binding::schedule_cluster`]).
///
/// # Errors
///
/// [`SchedError::NoResource`] as for the list scheduler.
pub fn force_schedule_cluster(
    app: &corepart_ir::cdfg::Application,
    blocks: &[corepart_ir::op::BlockId],
    set: &ResourceSet,
    lib: &ResourceLibrary,
) -> Result<crate::binding::ClusterSchedule, SchedError> {
    let mut schedules = Vec::with_capacity(blocks.len());
    for &b in blocks {
        let dfg = BlockDfg::build(app, b);
        schedules.push(force_directed_schedule(&dfg, set, lib)?);
    }
    Ok(crate::binding::ClusterSchedule {
        blocks: blocks.to_vec(),
        schedules,
        set_name: set.name().to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::list_schedule;
    use corepart_ir::cdfg::Application;
    use corepart_ir::lower::lower;
    use corepart_ir::op::BlockId;
    use corepart_ir::parser::parse;

    fn biggest_dfg(src: &str) -> BlockDfg {
        let app: Application = lower(&parse(src).unwrap()).unwrap();
        let bid = (0..app.blocks().len() as u32)
            .map(BlockId)
            .max_by_key(|&b| app.block(b).insts.len())
            .unwrap();
        BlockDfg::build(&app, bid)
    }

    const KERNEL: &str = r#"app t; var x[64]; var y[64];
        func main() {
            for (var i = 1; i < 63; i = i + 1) {
                y[i] = (x[i - 1] * 3 + x[i] * 4 + x[i + 1] * 2) >> 3;
            }
        }"#;

    #[test]
    fn fds_schedule_is_valid() {
        let dfg = biggest_dfg(KERNEL);
        let lib = ResourceLibrary::cmos6();
        let set = &ResourceSet::default_family()[2];
        let s = force_directed_schedule(&dfg, set, &lib).unwrap();
        // Dependencies respected.
        for i in 0..dfg.len() {
            for &p in &dfg.preds[i] {
                assert!(
                    s.slots[i].step >= s.slots[p].step + s.slots[p].latency,
                    "dep {p}->{i} violated"
                );
            }
        }
        // Capacity respected.
        for (kind, cap) in set.iter() {
            assert!(s.peak_usage(kind) <= cap, "{kind} over capacity");
        }
    }

    #[test]
    fn fds_length_close_to_list() {
        let dfg = biggest_dfg(KERNEL);
        let lib = ResourceLibrary::cmos6();
        let set = &ResourceSet::default_family()[2];
        let fds = force_directed_schedule(&dfg, set, &lib).unwrap();
        let list = list_schedule(&dfg, set, &lib).unwrap();
        // FDS is time-relaxed by design; stay within 2x of list.
        assert!(
            fds.length <= list.length * 2,
            "FDS {} vs list {}",
            fds.length,
            list.length
        );
    }

    #[test]
    fn fds_rejects_infeasible_sets() {
        let dfg = biggest_dfg("app t; var g = 9; func main() { g = g / 2; }");
        let lib = ResourceLibrary::cmos6();
        let set = ResourceSet::builder("no-div")
            .with(corepart_tech::resource::ResourceKind::Alu, 1)
            .with(corepart_tech::resource::ResourceKind::MemPort, 1)
            .build();
        assert!(force_directed_schedule(&dfg, &set, &lib).is_err());
    }

    #[test]
    fn fds_empty_block() {
        let dfg = BlockDfg {
            block: BlockId(0),
            classes: vec![],
            preds: vec![],
            succs: vec![],
        };
        let lib = ResourceLibrary::cmos6();
        let set = &ResourceSet::default_family()[0];
        let s = force_directed_schedule(&dfg, set, &lib).unwrap();
        assert_eq!(s.length, 0);
    }

    #[test]
    fn fds_cluster_wrapper_binds_and_utilizes() {
        use crate::binding::{bind, utilization};
        use corepart_ir::interp::Interpreter;
        let app = lower(&parse(KERNEL).unwrap()).unwrap();
        let profile = Interpreter::new(&app).run(10_000_000).unwrap();
        let lib = ResourceLibrary::cmos6();
        let set = &ResourceSet::default_family()[2];
        let blocks = app
            .structure()
            .iter()
            .find(|n| n.is_loop())
            .unwrap()
            .blocks()
            .to_vec();
        let cs = force_schedule_cluster(&app, &blocks, set, &lib).unwrap();
        let b = bind(&cs, &lib);
        for (&k, &n) in &b.instances {
            assert!(n <= set.count(k));
        }
        let u = utilization(&cs, &b, &profile, &lib);
        assert!(u.u_r > 0.0 && u.u_r <= 1.0);
    }

    #[test]
    fn fds_balances_multiplier_usage() {
        // Six independent multiplies, one multiplier: both schedulers
        // must serialize onto it; FDS should not instantiate more.
        let dfg = biggest_dfg(
            "app t; var a=1; var b=2; var c=3; var d=4; var o=0;
             func main() { o = a*b + b*c + c*d + d*a + a*c + b*d; }",
        );
        let lib = ResourceLibrary::cmos6();
        let set = ResourceSet::builder("one-mul")
            .with(corepart_tech::resource::ResourceKind::Alu, 2)
            .with(corepart_tech::resource::ResourceKind::Multiplier, 1)
            .with(corepart_tech::resource::ResourceKind::MemPort, 1)
            .build();
        let s = force_directed_schedule(&dfg, &set, &lib).unwrap();
        assert!(s.peak_usage(corepart_tech::resource::ResourceKind::Multiplier) <= 1);
    }
}
