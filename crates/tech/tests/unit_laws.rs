//! Property tests of the dimension-safe unit types: algebraic laws the
//! rest of the stack silently relies on.

use proptest::prelude::*;

use corepart_tech::process::CmosProcess;
use corepart_tech::units::{Cycles, Energy, GateEq, Power, Seconds};

fn joules() -> impl Strategy<Value = f64> {
    // Positive, finite, spanning pJ..kJ.
    (1e-12f64..1e3).prop_map(|v| v)
}

proptest! {
    #[test]
    fn energy_addition_commutes(a in joules(), b in joules()) {
        let (ea, eb) = (Energy::from_joules(a), Energy::from_joules(b));
        prop_assert_eq!((ea + eb).joules(), (eb + ea).joules());
    }

    #[test]
    fn energy_sum_matches_fold(vals in prop::collection::vec(joules(), 0..40)) {
        let total: Energy = vals.iter().map(|&v| Energy::from_joules(v)).sum();
        let folded: f64 = vals.iter().sum();
        prop_assert!((total.joules() - folded).abs() <= 1e-12 * folded.abs().max(1.0));
    }

    #[test]
    fn power_time_product_scales_linearly(w in 1e-6f64..1e2, s in 1e-9f64..1e0, k in 1u64..1000) {
        let e1 = Power::from_watts(w) * Seconds::from_secs(s);
        let ek = Power::from_watts(w) * (Seconds::from_secs(s) * k);
        prop_assert!((ek.joules() / e1.joules() - k as f64).abs() < 1e-9 * k as f64);
    }

    #[test]
    fn percent_saving_and_change_are_negatives(a in joules(), b in joules()) {
        let (ea, eb) = (Energy::from_joules(a), Energy::from_joules(b));
        let saving = ea.percent_saving(eb).expect("non-zero baseline");
        let change = ea.percent_change(eb).expect("non-zero baseline");
        prop_assert!((saving + change).abs() < 1e-9 * (saving.abs() + change.abs()).max(1.0));
    }

    #[test]
    fn cycles_display_roundtrips_through_comma_removal(n in 0u64..10_000_000_000) {
        let shown = format!("{}", Cycles::new(n));
        let back: u64 = shown.replace(',', "").parse().expect("digits");
        prop_assert_eq!(back, n);
    }

    #[test]
    fn cycles_at_period_linear(n in 0u64..1_000_000, ns in 1.0f64..100.0) {
        let t = Cycles::new(n).at_period(Seconds::from_nanos(ns));
        prop_assert!((t.nanos() - n as f64 * ns).abs() < 1e-6 * (n as f64 * ns).max(1.0));
    }

    #[test]
    fn gate_eq_ratio_inverse(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let ra = GateEq::new(a).ratio(GateEq::new(b)).expect("non-zero");
        let rb = GateEq::new(b).ratio(GateEq::new(a)).expect("non-zero");
        prop_assert!((ra * rb - 1.0).abs() < 1e-9);
    }

    #[test]
    fn block_energy_equals_power_times_time(
        geq in 1u64..100_000,
        alpha in 0.01f64..1.0,
        cycles in 1u64..10_000_000,
    ) {
        let p = CmosProcess::cmos6();
        let direct = p.block_energy(geq, alpha, cycles);
        let via_power = p.block_power(geq, alpha)
            * Seconds::from_secs(cycles as f64 / p.clock().hertz());
        prop_assert!(
            (direct.joules() - via_power.joules()).abs()
                <= 1e-9 * direct.joules().max(1e-30)
        );
    }

    #[test]
    fn voltage_scaling_monotone(v1 in 1.0f64..4.9, v2 in 1.0f64..4.9) {
        let p = CmosProcess::cmos6();
        let (lo, hi) = if v1 < v2 { (v1, v2) } else { (v2, v1) };
        // Lower voltage: less switch energy, more delay.
        prop_assert!(
            p.at_voltage(lo).gate_switch_energy() <= p.at_voltage(hi).gate_switch_energy()
        );
        prop_assert!(p.delay_derating(lo) >= p.delay_derating(hi));
    }

    #[test]
    fn energy_display_parses_back_to_same_magnitude(v in 1e-12f64..1e2) {
        let e = Energy::from_joules(v);
        let shown = format!("{e}");
        // Strip the unit suffix and rescale.
        let (num_part, scale) = if let Some(s) = shown.strip_suffix("mJ") {
            (s, 1e-3)
        } else if let Some(s) = shown.strip_suffix("µJ") {
            (s, 1e-6)
        } else if let Some(s) = shown.strip_suffix("nJ") {
            (s, 1e-9)
        } else if let Some(s) = shown.strip_suffix("pJ") {
            (s, 1e-12)
        } else {
            (shown.strip_suffix('J').expect("unit"), 1.0)
        };
        let parsed: f64 = num_part.parse().expect("number");
        let back = parsed * scale;
        // Display keeps 3 decimals -> 0.1% relative tolerance space.
        prop_assert!((back - v).abs() <= 2e-3 * v.max(1e-30), "{shown} vs {v}");
    }
}
