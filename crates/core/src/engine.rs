//! The Engine/Session spine — one shared-artifact core behind every
//! entry point.
//!
//! Henkel's Fig. 5 flow is a pipeline of reusable stage products:
//! preparing an application (profile, compiled program, cluster
//! chain), simulating its initial all-software design (baseline
//! metrics plus the captured reference trace), and memoizing candidate
//! schedules are each computed **once** and consumed by everything
//! downstream — the Fig. 1 search, design-space exploration, the
//! multi-core split search, the CLI, benches and reports.
//!
//! * An [`Engine`] owns the base [`SystemConfig`], the resolved thread
//!   policy, and three compute-once artifact pools (generalized
//!   [`MemoCache`]s) keyed by *fingerprints* — the exact configuration
//!   fields each stage consumes. Two sessions whose configurations
//!   agree on a stage's fingerprint share that stage's artifact, even
//!   when they disagree elsewhere (e.g. an objective-factor sweep
//!   shares one baseline simulation across every weight).
//! * A [`Session`] is opened per `(Application, Workload,
//!   config-group)` and owns *references into* the pools: the typed
//!   stage artifacts `PreparedApp → Baseline → Arc<ScheduleCache>`,
//!   each resolved lazily and exactly once on first use.
//!
//! [`Session::stats`] reports per-stage wall time, whether each
//! artifact was freshly computed or served from a sibling session, and
//! the pass-through schedule-cache / replay hit counters.
//!
//! This module is the **only** place in `corepart` that constructs
//! `PreparedApp` baselines, [`ScheduleCache`]s, or [`ReplayEngine`]s —
//! every consumer goes through a session.
//!
//! ## Laziness rules
//!
//! * Opening a session performs no work beyond fingerprinting.
//! * `prepared()` triggers preparation; `baseline()` triggers
//!   preparation + the initial-design simulation (capturing the
//!   reference trace, see [`SystemConfig::trace_cap_bytes`]);
//!   `schedule_cache()` allocates (or joins) the shared cache.
//! * Failures are memoized too: a configuration that cannot prepare
//!   or simulate fails identically — and exactly once — for every
//!   session sharing the artifact.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use corepart_ir::cdfg::Application;
use corepart_sched::cache::{MemoCache, ScheduleCache};

use crate::error::CorepartError;
use crate::evaluate::evaluate_initial_captured;
use crate::parallel::resolve_threads;
use crate::partition::ScheduleKey;
use crate::prepare::{prepare, PreparedApp, Workload};
use crate::system::{DesignMetrics, SystemConfig};
use crate::verify::ReplayEngine;
use corepart_isa::simulator::RunStats;

/// The initial-design stage artifact of one baseline group: Table 1's
/// "I" row, the per-block run statistics every estimate consumes, and
/// the replay engine built from the same captured run (absent when the
/// capture overflowed [`SystemConfig::trace_cap_bytes`] or the cap
/// is 0).
#[derive(Debug)]
pub struct Baseline {
    /// The initial design's metrics.
    pub metrics: DesignMetrics,
    /// The initial run's statistics (per-block attribution).
    pub stats: RunStats,
    /// The memoizing trace-replay engine, when a capture exists.
    pub replay: Option<Arc<ReplayEngine>>,
}

impl Baseline {
    /// Owned heap footprint in bytes: the run statistics plus — when a
    /// capture exists — the replay engine's trace, decode, tables and
    /// verified-run memo. This is the store's byte-budget charge for
    /// keeping the baseline warm; it grows as the replay memo fills, so
    /// the store re-measures it after every request.
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.stats.heap_bytes()
            + self.replay.as_ref().map_or(0, |r| r.heap_bytes())
    }
}

/// 64-bit FNV-1a over a fingerprint string — stable, dependency-free,
/// and fast enough for the once-per-session key computation.
pub(crate) fn fnv64(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The `(application, workload)` identity every session key starts
/// with: the name plus a hash of the full (Debug) content. The store
/// uses the same prefix to attribute pool entries to the request that
/// touched them.
pub(crate) fn session_identity(app: &Application, workload: &Workload) -> String {
    format!(
        "{}#{:016x}",
        app.name(),
        fnv64(&format!("{app:?}|{workload:?}"))
    )
}

/// What [`prepare`] consumes from a configuration: sessions whose
/// configurations agree here (for the same application + workload)
/// share one prepared application.
fn prep_fingerprint(config: &SystemConfig) -> String {
    format!("{:?}|{:?}", config.optimize_ir, config.max_cycles)
}

/// What the baseline simulation consumes on top of preparation.
///
/// `trace_cap_bytes` is *included*: a session configured with a
/// different cap owns a different baseline artifact (its replay engine
/// may be present or absent), so e.g. a `trace_cap_bytes = 0` session
/// genuinely falls back to direct verification instead of borrowing a
/// sibling's capture.
///
/// [`SystemConfig::operating_point`] is deliberately *excluded*:
/// simulation and replay always run at the base process, so sessions
/// that differ only in their operating point share one baseline, one
/// captured trace, and one decoded trace — a node×vdd sweep costs one
/// replay plus cheap re-weighting passes, not one simulation per point.
fn baseline_fingerprint(config: &SystemConfig) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{}",
        config.icache,
        config.dcache,
        config.process,
        config.memory_bytes,
        config.energy_table,
        config.trace_cap_bytes
    )
}

/// What cached schedules depend on besides the prepared application.
fn library_fingerprint(config: &SystemConfig) -> String {
    format!("{:?}", config.library)
}

/// The partitioning engine: the base configuration, the resolved
/// thread policy, and the compute-once artifact pools shared by every
/// [`Session`] it opens.
///
/// One engine serves many concurrent sessions; all pools are
/// thread-safe and compute each artifact exactly once per key, even
/// under races (see [`MemoCache`]).
#[derive(Debug, Default)]
pub struct Engine {
    config: SystemConfig,
    threads: usize,
    prepared: MemoCache<String, PreparedApp, CorepartError>,
    baselines: MemoCache<String, Baseline, CorepartError>,
    schedules: MemoCache<String, ScheduleCache<ScheduleKey>, CorepartError>,
}

impl Engine {
    /// An engine over `config` (validated here, once, for every
    /// session opened with [`Engine::session`]).
    ///
    /// # Errors
    ///
    /// [`CorepartError::Config`] when the configuration is invalid.
    pub fn new(config: SystemConfig) -> Result<Self, CorepartError> {
        config.validate()?;
        let threads = resolve_threads(config.threads);
        Ok(Engine {
            config,
            threads,
            prepared: MemoCache::new(),
            baselines: MemoCache::new(),
            schedules: MemoCache::new(),
        })
    }

    /// The engine's base configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The resolved worker-thread count every session inherits.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Opens a session on the engine's own configuration.
    ///
    /// No work happens here — stage artifacts are resolved lazily on
    /// first use (see the module docs).
    pub fn session(&self, app: &Application, workload: &Workload) -> Session<'_> {
        Session::open(self, app.clone(), workload.clone(), self.config.clone())
    }

    /// Opens a session on a *different* configuration (one config
    /// group of a sweep), still sharing this engine's artifact pools
    /// wherever the stage fingerprints agree.
    ///
    /// # Errors
    ///
    /// [`CorepartError::Config`] when `config` is invalid.
    pub fn session_with_config(
        &self,
        app: &Application,
        workload: &Workload,
        config: SystemConfig,
    ) -> Result<Session<'_>, CorepartError> {
        config.validate()?;
        Ok(Session::open(self, app.clone(), workload.clone(), config))
    }

    /// Every key currently stored in the `kind` pool (completed or
    /// still computing) — the store reconciles its byte ledger against
    /// this snapshot after each request.
    pub(crate) fn pool_keys(&self, kind: ArtifactKind) -> Vec<String> {
        match kind {
            ArtifactKind::Prepared => self.prepared.keys(),
            ArtifactKind::Baseline => self.baselines.keys(),
            ArtifactKind::Schedule => self.schedules.keys(),
            // Result payloads live in the store's shards, not here.
            ArtifactKind::Result => Vec::new(),
        }
    }

    /// The accounted byte weight of one pool entry, or `None` while
    /// its computation is still in flight. Failed computations weigh a
    /// fixed bookkeeping charge — the memoized error is small and worth
    /// keeping (growth re-asks about the same infeasible combinations).
    pub(crate) fn artifact_bytes(&self, kind: ArtifactKind, key: &str) -> Option<u64> {
        /// Charge for a memoized failure or an empty cache shell.
        const ERR_BYTES: u64 = 256;
        match kind {
            ArtifactKind::Prepared => self.prepared.peek(&key.to_owned()).map(|r| match r {
                Ok(p) => p.heap_bytes() as u64,
                Err(_) => ERR_BYTES,
            }),
            ArtifactKind::Baseline => self.baselines.peek(&key.to_owned()).map(|r| match r {
                Ok(b) => b.heap_bytes() as u64,
                Err(_) => ERR_BYTES,
            }),
            ArtifactKind::Schedule => self.schedules.peek(&key.to_owned()).map(|r| match r {
                Ok(c) => ERR_BYTES + c.bytes(),
                Err(_) => ERR_BYTES,
            }),
            ArtifactKind::Result => None,
        }
    }

    /// Drops one pool entry (the store's eviction primitive). The next
    /// session needing it recomputes bit-identically — cached values
    /// are pure functions of their keys.
    pub(crate) fn evict_artifact(&self, kind: ArtifactKind, key: &str) -> bool {
        match kind {
            ArtifactKind::Prepared => self.prepared.evict(&key.to_owned()),
            ArtifactKind::Baseline => self.baselines.evict(&key.to_owned()),
            ArtifactKind::Schedule => self.schedules.evict(&key.to_owned()),
            ArtifactKind::Result => false,
        }
    }
}

/// Which pool an accounted artifact lives in. The store's ledger keys
/// entries by `(kind, pool key)`: the first three kinds are the
/// engine's compute-once pools; `Result` entries are memoized serve
/// responses owned by the store's shards themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArtifactKind {
    /// The prepared application (profile, compiled program, chain).
    Prepared,
    /// The baseline: initial-design metrics, run stats, replay engine.
    Baseline,
    /// A shared schedule cache (grows as the search touches keys).
    Schedule,
    /// A memoized deterministic serve `result` payload (store-owned).
    Result,
}

impl ArtifactKind {
    /// The engine pool kinds, in ledger order — what the store's
    /// settle pass scans (`Result` entries are admitted explicitly).
    pub const ALL: [ArtifactKind; 3] = [
        ArtifactKind::Prepared,
        ArtifactKind::Baseline,
        ArtifactKind::Schedule,
    ];

    /// Whether entries of this kind can grow after admission (and must
    /// therefore be re-measured on every touch, not just once).
    pub fn grows(self) -> bool {
        !matches!(self, ArtifactKind::Prepared | ArtifactKind::Result)
    }
}

/// Per-stage accounting cells of one session (interior mutability so
/// `&Session` resolves artifacts from parallel workers).
#[derive(Debug, Default)]
struct StageCells {
    prepare_nanos: AtomicU64,
    prepare_shared: AtomicBool,
    baseline_nanos: AtomicU64,
    baseline_shared: AtomicBool,
}

/// A point-in-time snapshot of one session's per-stage accounting —
/// wall time per stage, whether the artifact was computed here or
/// served from a sibling session, and the pass-through schedule-cache
/// and replay counters. Taken with [`Session::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Wall time resolving the prepared application, nanoseconds
    /// (0 when not yet resolved).
    pub prepare_nanos: u64,
    /// True when the prepared application was served from the engine
    /// pool (a sibling session computed it).
    pub prepare_shared: bool,
    /// Wall time resolving the baseline (initial-design simulation +
    /// trace capture), nanoseconds (0 when not yet resolved).
    pub baseline_nanos: u64,
    /// True when the baseline was served from the engine pool.
    pub baseline_shared: bool,
    /// Schedule-cache lookups served from memory so far.
    pub schedule_cache_hits: u64,
    /// Schedule-cache lookups that ran the scheduler (distinct keys).
    pub schedule_cache_misses: u64,
    /// Replays actually executed (distinct hardware-block sets).
    pub replays: u64,
    /// Verifications served by the replay memo without replaying.
    pub replay_hits: u64,
    /// Batched replay walks executed (each verifies K candidate sets
    /// in one pass over the decoded trace).
    pub batched_replays: u64,
    /// Trace events whose decode was shared instead of repeated:
    /// `events × (lanes − 1)`, summed over batches.
    pub batch_events_shared: u64,
    /// Wall time spent inside batched replay walks, nanoseconds.
    pub batch_nanos: u64,
    /// Stretch shards walked across batched replays — the rendezvous
    /// rounds of the lane-group threading (1 per batch when the walk
    /// ran unsharded), so nonzero exactly when a batch executed.
    pub batch_shards: u64,
    /// Wall time inside the sharded replay rounds proper, nanoseconds.
    pub batch_shard_nanos: u64,
}

/// One partitioning session: an `(Application, Workload,
/// config-group)` binding whose stage artifacts are created lazily,
/// exactly once, and shared through the owning [`Engine`]'s pools.
///
/// Sessions are `Sync`: exploration resolves many sessions' artifacts
/// from parallel workers, and the compute-once pools guarantee each
/// distinct artifact is still computed exactly once.
#[derive(Debug)]
pub struct Session<'e> {
    engine: &'e Engine,
    app: Application,
    workload: Workload,
    config: SystemConfig,
    prep_key: String,
    baseline_key: String,
    cache_key: String,
    prepared: OnceLock<Result<Arc<PreparedApp>, CorepartError>>,
    baseline: OnceLock<Result<Arc<Baseline>, CorepartError>>,
    schedules: OnceLock<Arc<ScheduleCache<ScheduleKey>>>,
    cells: StageCells,
}

impl<'e> Session<'e> {
    fn open(
        engine: &'e Engine,
        app: Application,
        workload: Workload,
        config: SystemConfig,
    ) -> Self {
        // The application/workload identity is their full (Debug)
        // content, hashed; the name is kept alongside for readability
        // of keys in logs and tests.
        let identity = session_identity(&app, &workload);
        let prep_key = format!("{identity}|{}", prep_fingerprint(&config));
        let baseline_key = format!("{prep_key}|{}", baseline_fingerprint(&config));
        let cache_key = format!("{prep_key}|{}", library_fingerprint(&config));
        Session {
            engine,
            app,
            workload,
            config,
            prep_key,
            baseline_key,
            cache_key,
            prepared: OnceLock::new(),
            baseline: OnceLock::new(),
            schedules: OnceLock::new(),
            cells: StageCells::default(),
        }
    }

    /// The session's configuration (its config group's, not
    /// necessarily the engine's base).
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The application this session partitions.
    pub fn app(&self) -> &Application {
        &self.app
    }

    /// The workload driving profiling and simulation.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The engine this session shares artifacts through.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// The resolved worker-thread count (inherited from the engine
    /// when this session's config leaves `threads` at 0).
    pub fn threads(&self) -> usize {
        if self.config.threads == 0 {
            self.engine.threads
        } else {
            resolve_threads(self.config.threads)
        }
    }

    /// The prepared application — profile, compiled program, cluster
    /// chain — resolved on first call (Fig. 5's front half).
    ///
    /// # Errors
    ///
    /// The memoized preparation failure, identical on every call.
    pub fn prepared(&self) -> Result<&PreparedApp, CorepartError> {
        match self.prepared_slot() {
            Ok(arc) => Ok(arc.as_ref()),
            Err(e) => Err(e.clone()),
        }
    }

    /// Like [`Session::prepared`], but handing out the shared
    /// ownership ([`Arc`]) — what [`crate::flow::FlowResult`] stores.
    ///
    /// # Errors
    ///
    /// The memoized preparation failure.
    pub fn prepared_arc(&self) -> Result<Arc<PreparedApp>, CorepartError> {
        match self.prepared_slot() {
            Ok(arc) => Ok(Arc::clone(arc)),
            Err(e) => Err(e.clone()),
        }
    }

    fn prepared_slot(&self) -> &Result<Arc<PreparedApp>, CorepartError> {
        self.prepared.get_or_init(|| {
            let started = Instant::now();
            let mut computed = false;
            let result = self
                .engine
                .prepared
                .get_or_compute(self.prep_key.clone(), || {
                    computed = true;
                    prepare(self.app.clone(), self.workload.clone(), &self.config)
                });
            self.cells
                .prepare_nanos
                .store(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            self.cells
                .prepare_shared
                .store(!computed, Ordering::Relaxed);
            result
        })
    }

    /// The initial-design baseline — [`DesignMetrics`], per-block
    /// [`RunStats`], and the replay engine built from the captured
    /// reference trace (absent when the capture overflowed
    /// [`SystemConfig::trace_cap_bytes`] or the cap is 0). Resolved on
    /// first call; triggers preparation if needed.
    ///
    /// [`DesignMetrics`]: crate::system::DesignMetrics
    /// [`RunStats`]: corepart_isa::simulator::RunStats
    ///
    /// # Errors
    ///
    /// The memoized preparation or simulation failure.
    pub fn baseline(&self) -> Result<&Baseline, CorepartError> {
        // Resolve preparation first so its wall time is charged to the
        // prepare stage, not folded into the baseline's.
        let prepared = self.prepared_arc()?;
        let slot = self.baseline.get_or_init(|| {
            let started = Instant::now();
            let mut computed = false;
            let result = self
                .engine
                .baselines
                .get_or_compute(self.baseline_key.clone(), || {
                    computed = true;
                    let (metrics, stats, trace) = evaluate_initial_captured(
                        &prepared,
                        &self.config,
                        self.config.trace_cap_bytes,
                    )?;
                    let replay =
                        trace.map(|t| Arc::new(ReplayEngine::new(&prepared, &self.config, t)));
                    Ok(Baseline {
                        metrics,
                        stats,
                        replay,
                    })
                });
            self.cells
                .baseline_nanos
                .store(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            self.cells
                .baseline_shared
                .store(!computed, Ordering::Relaxed);
            result
        });
        match slot {
            Ok(arc) => Ok(arc.as_ref()),
            Err(e) => Err(e.clone()),
        }
    }

    /// The replay engine backing verifications, when the reference
    /// trace was captured. Resolves the baseline if needed.
    ///
    /// # Errors
    ///
    /// The memoized preparation or simulation failure.
    pub fn replay_engine(&self) -> Result<Option<&Arc<ReplayEngine>>, CorepartError> {
        Ok(self.baseline()?.replay.as_ref())
    }

    /// The schedule cache shared by every session with the same
    /// prepared application and resource library — allocated (or
    /// joined) on first call.
    pub fn schedule_cache(&self) -> &Arc<ScheduleCache<ScheduleKey>> {
        self.schedules.get_or_init(|| {
            self.engine
                .schedules
                .get_or_compute(self.cache_key.clone(), || Ok(ScheduleCache::new()))
                // The compute closure is infallible; the pool's error
                // arm is unreachable, but degrade to a private cache
                // rather than panicking if it ever weren't.
                .unwrap_or_else(|_| Arc::new(ScheduleCache::new()))
        })
    }

    /// A snapshot of this session's per-stage accounting (see
    /// [`SessionStats`]). Stages not yet resolved report zeros.
    pub fn stats(&self) -> SessionStats {
        let cache = self.schedules.get();
        let replay = self
            .baseline
            .get()
            .and_then(|slot| slot.as_ref().ok())
            .and_then(|b| b.replay.as_ref());
        SessionStats {
            prepare_nanos: self.cells.prepare_nanos.load(Ordering::Relaxed),
            prepare_shared: self.cells.prepare_shared.load(Ordering::Relaxed),
            baseline_nanos: self.cells.baseline_nanos.load(Ordering::Relaxed),
            baseline_shared: self.cells.baseline_shared.load(Ordering::Relaxed),
            schedule_cache_hits: cache.map_or(0, |c| c.hits()),
            schedule_cache_misses: cache.map_or(0, |c| c.misses()),
            replays: replay.map_or(0, |r| r.replays()),
            replay_hits: replay.map_or(0, |r| r.hits()),
            batched_replays: replay.map_or(0, |r| r.batches()),
            batch_events_shared: replay.map_or(0, |r| r.batch_events_shared()),
            batch_nanos: replay.map_or(0, |r| r.batch_nanos()),
            batch_shards: replay.map_or(0, |r| r.batch_shards()),
            batch_shard_nanos: replay.map_or(0, |r| r.batch_shard_nanos()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioner;
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;

    const SRC: &str = r#"app spine; var x[96]; var y[96];
        func main() {
            for (var i = 1; i < 95; i = i + 1) {
                y[i] = x[i] * 7 + (x[i - 1] >> 2);
            }
            return y[40];
        }"#;

    fn app() -> Application {
        lower(&parse(SRC).unwrap()).unwrap()
    }

    fn workload() -> Workload {
        Workload::from_arrays([("x", (0..96).collect::<Vec<i64>>())])
    }

    #[test]
    fn artifacts_are_lazy_and_shared_between_sessions() {
        let engine = Engine::new(SystemConfig::new()).unwrap();
        let a = engine.session(&app(), &workload());
        // Opening did no work.
        assert_eq!(a.stats(), SessionStats::default());

        let prepared_a = a.prepared_arc().unwrap();
        assert!(!a.stats().prepare_shared, "first session computes");

        let b = engine.session(&app(), &workload());
        let prepared_b = b.prepared_arc().unwrap();
        assert!(
            Arc::ptr_eq(&prepared_a, &prepared_b),
            "same (app, workload, prep fingerprint) must share one PreparedApp"
        );
        assert!(b.stats().prepare_shared, "second session is served");

        // Baselines share too, and carry the replay engine.
        let base_a = a.baseline().unwrap();
        let base_b = b.baseline().unwrap();
        assert_eq!(base_a.metrics, base_b.metrics);
        assert!(!a.stats().baseline_shared);
        assert!(b.stats().baseline_shared);
        assert!(base_a.replay.is_some(), "default cap captures the trace");

        // One shared schedule cache per (prep, library) group.
        assert!(Arc::ptr_eq(a.schedule_cache(), b.schedule_cache()));
    }

    #[test]
    fn objective_factor_groups_share_baseline_but_cap_splits_it() {
        let engine = Engine::new(SystemConfig::new()).unwrap();
        let (app, workload) = (app(), workload());
        let sweep = engine
            .session_with_config(&app, &workload, SystemConfig::new().with_factors(1.0, 4.0))
            .unwrap();
        let base = engine.session(&app, &workload);
        let m1 = base.baseline().unwrap().metrics.clone();
        let m2 = sweep.baseline().unwrap().metrics.clone();
        assert_eq!(m1, m2);
        assert!(
            sweep.stats().baseline_shared,
            "factor sweep shares the baseline"
        );

        // A different trace cap owns a different baseline artifact:
        // the capped session must NOT inherit a sibling's capture.
        let capped = engine
            .session_with_config(&app, &workload, SystemConfig::new().with_trace_cap(0))
            .unwrap();
        assert!(capped.replay_engine().unwrap().is_none());
        assert!(!capped.stats().baseline_shared);
        assert_eq!(capped.baseline().unwrap().metrics, m1);
    }

    #[test]
    fn operating_points_share_every_simulation_artifact() {
        use corepart_tech::scaling::OperatingPoint;

        let engine = Engine::new(SystemConfig::new()).unwrap();
        let (app, workload) = (app(), workload());
        let base = engine.session(&app, &workload);
        let scaled = engine
            .session_with_config(
                &app,
                &workload,
                SystemConfig::new().with_operating_point(OperatingPoint {
                    node_nm: 180,
                    vdd: 1.8,
                }),
            )
            .unwrap();
        let prepared_a = base.prepared_arc().unwrap();
        let prepared_b = scaled.prepared_arc().unwrap();
        assert!(Arc::ptr_eq(&prepared_a, &prepared_b));
        base.baseline().unwrap();
        scaled.baseline().unwrap();
        assert!(
            scaled.stats().baseline_shared,
            "the operating point must stay out of the baseline fingerprint"
        );
        let (Ok(Some(ra)), Ok(Some(rb))) = (base.replay_engine(), scaled.replay_engine()) else {
            panic!("both sessions should carry the shared capture");
        };
        assert!(Arc::ptr_eq(ra, rb), "one trace, one replay engine");
        assert!(
            Arc::ptr_eq(base.schedule_cache(), scaled.schedule_cache()),
            "schedules are point-invariant too"
        );
    }

    #[test]
    fn failures_are_memoized_and_cloned() {
        // max_cycles = 1 starves the profiling interpreter.
        let config = SystemConfig::new();
        let mut starved = config.clone();
        starved.max_cycles = 1;
        let engine = Engine::new(starved).unwrap();
        let s1 = engine.session(&app(), &workload());
        let s2 = engine.session(&app(), &workload());
        let e1 = s1.prepared().unwrap_err();
        let e2 = s2.prepared().unwrap_err();
        assert_eq!(format!("{e1}"), format!("{e2}"));
        assert!(
            s2.stats().prepare_shared,
            "the failure is shared, not recomputed"
        );
    }

    #[test]
    fn invalid_configs_are_rejected_at_open() {
        let mut bad = SystemConfig::new();
        bad.n_max = 0;
        assert!(Engine::new(bad.clone()).is_err());
        let engine = Engine::new(SystemConfig::new()).unwrap();
        assert!(engine
            .session_with_config(&app(), &workload(), bad)
            .is_err());
    }

    #[test]
    fn session_stats_track_search_counters() {
        let engine = Engine::new(SystemConfig::new()).unwrap();
        let session = engine.session(&app(), &workload());
        let partitioner = Partitioner::new(&session).unwrap();
        partitioner.run().unwrap();
        let stats = session.stats();
        assert!(stats.schedule_cache_misses > 0);
        assert!(stats.prepare_nanos > 0);
        assert!(stats.baseline_nanos > 0);
        assert_eq!(stats.replays, 1, "one verification, one replay");
    }
}
