//! The trace-replay verification engine.
//!
//! Verification (Fig. 1 lines 14–15) is the expensive end of the
//! search: a full instruction-set simulation plus the cache hierarchy
//! per candidate. But [`SimConfig::hw_blocks`] changes *accounting*
//! only — every candidate executes the identical instruction stream —
//! so the engine simulates **once** per prepared application/workload
//! (capturing the reference trace during the initial-design
//! evaluation, [`crate::evaluate::evaluate_initial_captured`]) and
//! verifies each candidate by *replaying* that capture with the
//! candidate's hardware-block set applied at replay time: no
//! re-interpretation, no re-decoding, no `set_array`
//! re-initialization.
//!
//! Replay reproduces [`RunStats`] and [`HierarchyReport`] **bit for
//! bit** (the same `f64` operations in the same order as the direct
//! simulation), and results are memoized per (trace fingerprint,
//! hardware-block set) in the same compute-once [`MemoCache`] the
//! schedule trio uses — distinct candidates that induce the same
//! hardware-block set (e.g. the same clusters under different resource
//! sets) share one replay.
//!
//! When the capture was discarded (byte cap exceeded, or capture
//! disabled), there is no engine and callers fall back to direct
//! simulation — see [`SystemConfig::trace_cap_bytes`].

use std::collections::HashSet;
use std::sync::Arc;

use corepart_cache::hierarchy::Hierarchy;
use corepart_cache::HierarchyReport;
use corepart_ir::op::BlockId;
use corepart_isa::simulator::{RunStats, SimConfig, SimError};
use corepart_isa::trace::{ReferenceTrace, TraceReplayer};
use corepart_sched::cache::MemoCache;

use crate::evaluate::HierarchySink;
use crate::prepare::PreparedApp;
use crate::system::SystemConfig;

/// The product of one verified partitioned run — the µP-side
/// statistics plus the cache-hierarchy report, whether obtained by
/// direct simulation or by trace replay (bit-identical by
/// construction, pinned by `tests/determinism.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedRun {
    /// µP-core run statistics.
    pub stats: RunStats,
    /// I-cache/D-cache/memory report.
    pub report: HierarchyReport,
}

/// Replays `trace` once under `hw_blocks`, uncached: builds the per-pc
/// replay table, streams the µP-side references through a fresh cache
/// hierarchy, and returns the verified run.
///
/// This is the one-shot path ([`ReplayEngine`] memoizes it); it is
/// also what benchmarks and equivalence tests call directly.
///
/// # Errors
///
/// [`SimError::CycleLimit`] exactly when the equivalent direct
/// simulation would hit it; [`SimError::TraceCorrupt`] when the trace
/// fails its fingerprint validation or decodes to fewer events than
/// it recorded (damaged or truncated capture); other [`SimError`]s
/// only on a trace that does not belong to `prepared`.
pub fn replay_run(
    prepared: &PreparedApp,
    config: &SystemConfig,
    trace: &ReferenceTrace,
    hw_blocks: &HashSet<BlockId>,
) -> Result<VerifiedRun, SimError> {
    trace.validate()?;
    let replayer = TraceReplayer::new(&prepared.prog, &prepared.app, &config.energy_table);
    replay_with(&replayer, trace, config, hw_blocks)
}

fn replay_with(
    replayer: &TraceReplayer,
    trace: &ReferenceTrace,
    config: &SystemConfig,
    hw_blocks: &HashSet<BlockId>,
) -> Result<VerifiedRun, SimError> {
    let mut hierarchy = Hierarchy::new(
        config.icache.clone(),
        config.dcache.clone(),
        &config.process,
        config.memory_bytes,
    );
    let sim_config = SimConfig::partitioned(config.max_cycles, hw_blocks.clone());
    let stats = replayer.replay(trace, &sim_config, &mut HierarchySink(&mut hierarchy))?;
    Ok(VerifiedRun {
        stats,
        report: hierarchy.report(),
    })
}

/// A memoizing replay engine bound to one captured reference trace.
///
/// The engine owns the capture, the precomputed per-pc replay table,
/// and a compute-once cache keyed by the sorted hardware-block set
/// (the trace fingerprint is fixed per engine, so the pair uniquely
/// identifies a verified run). Like the schedule cache, one engine
/// must only be shared across configurations with equal baseline
/// parameters (caches, process, memory, energy table, cycle guard) —
/// [`crate::engine`] guarantees this by pooling replay engines inside
/// the baseline artifact, keyed on the baseline fingerprint.
#[derive(Debug)]
pub struct ReplayEngine {
    trace: Arc<ReferenceTrace>,
    replayer: TraceReplayer,
    cache: MemoCache<Vec<BlockId>, VerifiedRun, SimError>,
    /// Fingerprint validation of the capture, run once at
    /// construction; every [`ReplayEngine::verify`] refuses a trace
    /// that failed it.
    validated: Result<(), SimError>,
}

impl ReplayEngine {
    /// Builds the engine (precomputes the per-pc replay table) for a
    /// trace captured from `prepared` under `config`. The trace's
    /// fingerprint is validated here, once; a damaged capture turns
    /// every later [`ReplayEngine::verify`] into
    /// [`SimError::TraceCorrupt`].
    pub fn new(prepared: &PreparedApp, config: &SystemConfig, trace: ReferenceTrace) -> Self {
        ReplayEngine {
            replayer: TraceReplayer::new(&prepared.prog, &prepared.app, &config.energy_table),
            validated: trace.validate(),
            trace: Arc::new(trace),
            cache: MemoCache::new(),
        }
    }

    /// The capture this engine replays.
    pub fn trace(&self) -> &ReferenceTrace {
        &self.trace
    }

    /// Verifies the hardware-block set `hw_blocks`: replays the capture
    /// on first request, serves the shared result afterwards.
    ///
    /// # Errors
    ///
    /// The (cached) [`SimError`] when the replay fails — exactly when
    /// the equivalent direct simulation would.
    pub fn verify(
        &self,
        config: &SystemConfig,
        hw_blocks: &HashSet<BlockId>,
    ) -> Result<Arc<VerifiedRun>, SimError> {
        self.validated.clone()?;
        let mut key: Vec<BlockId> = hw_blocks.iter().copied().collect();
        key.sort_unstable();
        self.cache.get_or_compute(key, || {
            replay_with(&self.replayer, &self.trace, config, hw_blocks)
        })
    }

    /// Replays actually executed (= distinct hardware-block sets seen).
    pub fn replays(&self) -> u64 {
        self.cache.misses()
    }

    /// Verifications served from the memo without replaying.
    pub fn hits(&self) -> u64 {
        self.cache.hits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::evaluate::{evaluate_initial_captured, evaluate_partition, Partition};
    use crate::prepare::Workload;
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;

    const DSP: &str = r#"app dsp; var x[128]; var y[128]; var s = 0;
        func main() {
            for (var i = 1; i < 127; i = i + 1) {
                y[i] = (x[i - 1] + 2 * x[i] + x[i + 1]) >> 2;
            }
            for (var j = 0; j < 128; j = j + 1) { s = s + y[j]; }
            return s;
        }"#;

    fn setup() -> (Engine, corepart_ir::cdfg::Application, Workload) {
        let app = lower(&parse(DSP).unwrap()).unwrap();
        let workload =
            Workload::from_arrays([("x", (0..128).map(|i| (i * 13) % 97).collect::<Vec<i64>>())]);
        (Engine::new(SystemConfig::new()).unwrap(), app, workload)
    }

    #[test]
    fn replayed_verification_equals_direct_simulation() {
        let (factory, app, workload) = setup();
        let session = factory.session(&app, &workload);
        let prepared = session.prepared().unwrap();
        let config = session.config();
        let baseline = session.baseline().unwrap();
        let stats = &baseline.stats;
        let engine = baseline
            .replay
            .as_ref()
            .expect("small workload fits any sane cap");

        let hot = prepared.chain.iter().find(|c| c.is_loop()).unwrap().id;
        let partition = Partition::single(hot, config.resource_set(2).unwrap().clone());
        let hw_blocks: HashSet<BlockId> =
            prepared.chain.cluster(hot).blocks.iter().copied().collect();

        // Direct path (no caches, no replay).
        let direct = evaluate_partition(prepared, &partition, stats, config).unwrap();
        // Replay path, twice: second verify must be served from memo.
        let first = engine.verify(config, &hw_blocks).unwrap();
        let again = engine.verify(config, &hw_blocks).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!((engine.replays(), engine.hits()), (1, 1));

        // The replayed µP+cache side is bit-identical to what the
        // direct evaluation measured (miss ratios pin the hierarchy,
        // up_core pins the RunStats energy path).
        let via_engine = crate::evaluate::evaluate_partition_with(
            prepared,
            &partition,
            stats,
            config,
            None,
            Some(engine),
        )
        .unwrap();
        assert_eq!(direct, via_engine);
    }

    #[test]
    fn one_shot_replay_matches_engine() {
        let (factory, app, workload) = setup();
        let session = factory.session(&app, &workload);
        let prepared = session.prepared().unwrap();
        let config = session.config();
        let engine = session
            .replay_engine()
            .unwrap()
            .expect("capture fits")
            .clone();
        let hot = prepared.chain.iter().find(|c| c.is_loop()).unwrap().id;
        let hw_blocks: HashSet<BlockId> =
            prepared.chain.cluster(hot).blocks.iter().copied().collect();

        let one_shot = replay_run(prepared, config, engine.trace(), &hw_blocks).unwrap();
        let memoized = engine.verify(config, &hw_blocks).unwrap();
        assert_eq!(one_shot, *memoized);
        assert!(engine.trace().events() > 0);
    }

    #[test]
    fn zero_cap_yields_no_trace() {
        let (factory, app, workload) = setup();
        let session = factory.session(&app, &workload);
        let prepared = session.prepared().unwrap();
        let config = session.config();
        let (metrics_off, stats_off, trace) =
            evaluate_initial_captured(prepared, config, 0).unwrap();
        assert!(trace.is_none());
        // And the capture never perturbs the evaluation itself.
        let (metrics_on, stats_on, trace_on) =
            evaluate_initial_captured(prepared, config, usize::MAX).unwrap();
        assert!(trace_on.is_some());
        assert_eq!(metrics_off, metrics_on);
        assert_eq!(stats_off, stats_on);
    }
}
