//! Memoization of the estimate phase's expensive trio.
//!
//! The Fig. 1 search — and any §3.5 sweep over objective factors —
//! requests the same (cluster set, resource set) synthesis over and
//! over: [`schedule_cluster`](crate::binding::schedule_cluster),
//! [`bind`](crate::binding::bind) and
//! [`utilization`](crate::binding::utilization) do not depend on the
//! objective weights at all, only on the application, the profile, the
//! blocks and the candidate datapath. [`ScheduleCache`] memoizes the
//! trio under a caller-chosen key (the partitioner keys by cluster-id
//! list plus resource-set identity).
//!
//! Concurrency: each key's entry is backed by its own [`OnceLock`], so
//! racing lookups block on the single computation instead of computing
//! twice. Exactly one miss is therefore charged per distinct key no
//! matter how many threads race, which keeps the hit/miss counters —
//! and everything derived from them — deterministic for a fixed
//! workload regardless of thread count.

use std::collections::HashMap;
use std::hash::Hash;
use std::mem::size_of;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::binding::{Binding, ClusterSchedule, Utilization};
use crate::list::{OpSlot, SchedError};

/// The memoized product of one cluster-on-datapath synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledCluster {
    /// The list schedule of every block.
    pub sched: ClusterSchedule,
    /// The instance binding and `GEQ_RS`.
    pub binding: Binding,
    /// The utilization rate `U_R^core`.
    pub util: Utilization,
}

/// Approximate owned heap footprint of a memoized value, in bytes.
///
/// The artifact store charges every cached entry against a global byte
/// budget; this trait is how [`MemoCache::bytes`] asks a value what it
/// weighs. Implementations count owned allocations (vector capacities,
/// string capacities, map entries at a fixed per-node estimate) — the
/// goal is stable, deterministic accounting for eviction decisions, not
/// allocator-exact numbers.
pub trait HeapBytes {
    /// Owned heap bytes, excluding `size_of::<Self>()` unless noted.
    fn heap_bytes(&self) -> usize;
}

/// Per-entry estimate for one `BTreeMap`/`HashMap` node (key + value +
/// node overhead) used when a container does not expose its capacity.
const MAP_NODE_EST: usize = 48;

impl HeapBytes for ScheduledCluster {
    fn heap_bytes(&self) -> usize {
        let sched = self.sched.blocks.capacity() * size_of::<corepart_ir::op::BlockId>()
            + self.sched.set_name.capacity()
            + self.sched.schedules.capacity() * size_of::<crate::list::BlockSchedule>()
            + self
                .sched
                .schedules
                .iter()
                .map(|s| s.slots.capacity() * size_of::<OpSlot>())
                .sum::<usize>();
        let binding = self.binding.instances.len() * MAP_NODE_EST
            + self.binding.assignment.len() * MAP_NODE_EST
            + self
                .binding
                .assignment
                .values()
                .map(|v| v.capacity() * size_of::<u32>())
                .sum::<usize>();
        let util = self.util.busy.len() * MAP_NODE_EST;
        size_of::<Self>() + sched + binding + util
    }
}

type Slot<V, E> = Arc<OnceLock<Result<Arc<V>, E>>>;

/// A concurrent, compute-once memo table: each key's value (or error)
/// is computed exactly once, and every later lookup shares the same
/// `Arc`. [`ScheduleCache`] is the instantiation for the schedule trio;
/// the trace-replay engine reuses the same structure for verified runs,
/// keyed by (trace fingerprint, hardware-block set).
///
/// Errors are cached too: a resource set that cannot execute a cluster
/// never will, and greedy growth keeps re-asking about the same
/// infeasible combinations.
pub struct MemoCache<K, V, E> {
    map: Mutex<HashMap<K, Slot<V, E>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A concurrent, compute-once cache of [`ScheduledCluster`]s — the
/// schedule-trio instantiation of [`MemoCache`].
pub type ScheduleCache<K> = MemoCache<K, ScheduledCluster, SchedError>;

impl<K, V, E> Default for MemoCache<K, V, E> {
    fn default() -> Self {
        MemoCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl<K, V, E> std::fmt::Debug for MemoCache<K, V, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoCache")
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<K: Eq + Hash, V, E: Clone> MemoCache<K, V, E> {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the entry for `key`, running `compute` on the first
    /// request. Concurrent lookups of the same key block on the one
    /// computation rather than repeating it; exactly one miss is
    /// charged per distinct key no matter how many threads race.
    ///
    /// # Errors
    ///
    /// The (cached) `E` when the computation failed.
    pub fn get_or_compute<F>(&self, key: K, compute: F) -> Result<Arc<V>, E>
    where
        F: FnOnce() -> Result<V, E>,
    {
        let slot: Slot<V, E> = {
            let mut map = self.map.lock().expect("memo cache poisoned");
            Arc::clone(map.entry(key).or_insert_with(|| Arc::new(OnceLock::new())))
        };
        let mut computed = false;
        let result = slot.get_or_init(|| {
            computed = true;
            compute().map(Arc::new)
        });
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// Returns `key`'s entry only if its computation already finished.
    /// Charges neither a hit nor a miss — this is a *planning* probe
    /// (the batched replay uses it to split a candidate list into
    /// already-memoized sets and sets worth batching), not a lookup;
    /// the later [`MemoCache::get_or_compute`] that consumes the entry
    /// does the counting.
    pub fn peek(&self, key: &K) -> Option<Result<Arc<V>, E>> {
        self.map
            .lock()
            .expect("memo cache poisoned")
            .get(key)
            .and_then(|slot| slot.get())
            .cloned()
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran the computation (= distinct keys seen).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct keys stored.
    pub fn len(&self) -> usize {
        self.map.lock().expect("memo cache poisoned").len()
    }

    /// A snapshot of every stored key (completed or still computing).
    /// The artifact store reconciles its byte ledger against this after
    /// each request.
    pub fn keys(&self) -> Vec<K>
    where
        K: Clone,
    {
        self.map
            .lock()
            .expect("memo cache poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Drops `key`'s entry, forcing the next
    /// [`MemoCache::get_or_compute`] to recompute (and charge a miss).
    /// Returns whether an entry was present.
    ///
    /// This is the primitive of the artifact store's budget path: an
    /// evicted entry is recomputed bit-identically on the next request
    /// — never served stale — because every cached value is a pure
    /// function of its key. The conformance harness uses the same hook
    /// for fault injection.
    pub fn evict(&self, key: &K) -> bool {
        self.map
            .lock()
            .expect("memo cache poisoned")
            .remove(key)
            .is_some()
    }

    /// Fault-injection hook for the conformance harness: installs a
    /// pre-resolved entry for `key`, replacing any existing one. Later
    /// lookups are served the poisoned value (charged as hits) — the
    /// harness uses this to prove its differential oracles detect a
    /// cache serving wrong values.
    pub fn poison(&self, key: K, value: V) {
        let slot: Slot<V, E> = Arc::new(OnceLock::new());
        let _ = slot.set(Ok(Arc::new(value)));
        self.map
            .lock()
            .expect("memo cache poisoned")
            .insert(key, slot);
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Fixed bookkeeping charge per cache entry (key, `Arc`, `OnceLock`,
/// hash-map slot) on top of the value's own [`HeapBytes`].
pub const CACHE_ENTRY_OVERHEAD: usize = 96;

impl<K: Eq + Hash, V: HeapBytes, E: Clone> MemoCache<K, V, E> {
    /// Accounted heap bytes of every *completed, successful* entry plus
    /// [`CACHE_ENTRY_OVERHEAD`] per stored key. Failed computations are
    /// charged overhead only (the error is small and worth keeping —
    /// greedy growth re-asks about the same infeasible combinations).
    pub fn bytes(&self) -> u64 {
        let map = self.map.lock().expect("memo cache poisoned");
        map.values()
            .map(|slot| {
                let value = match slot.get() {
                    Some(Ok(v)) => v.heap_bytes(),
                    _ => 0,
                };
                (CACHE_ENTRY_OVERHEAD + value) as u64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{bind, schedule_cluster, utilization};
    use corepart_ir::interp::Interpreter;
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;
    use corepart_tech::resource::{ResourceLibrary, ResourceSet};

    fn fixture() -> (
        corepart_ir::cdfg::Application,
        corepart_ir::interp::ExecProfile,
    ) {
        let app = lower(
            &parse(
                r#"app cachetest; var x[32]; var y[32];
                func main() {
                    for (var i = 1; i < 32; i = i + 1) {
                        y[i] = x[i] * 5 + x[i - 1] * 3;
                    }
                    return y[7];
                }"#,
            )
            .unwrap(),
        )
        .unwrap();
        let profile = Interpreter::new(&app).run(1_000_000).unwrap();
        (app, profile)
    }

    #[test]
    fn second_lookup_hits_and_shares_the_value() {
        let (app, profile) = fixture();
        let lib = ResourceLibrary::cmos6();
        let set = &ResourceSet::default_family()[2];
        let blocks = app
            .structure()
            .iter()
            .find(|n| n.is_loop())
            .unwrap()
            .blocks()
            .to_vec();

        let cache: ScheduleCache<u32> = ScheduleCache::new();
        let compute = || {
            let sched = schedule_cluster(&app, &blocks, set, &lib)?;
            let binding = bind(&sched, &lib);
            let util = utilization(&sched, &binding, &profile, &lib);
            Ok(ScheduledCluster {
                sched,
                binding,
                util,
            })
        };
        let first = cache.get_or_compute(7, compute).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let mut ran_again = false;
        let second = cache
            .get_or_compute(7, || {
                ran_again = true;
                unreachable!("cached key must not recompute")
            })
            .unwrap();
        assert!(!ran_again);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&first, &second));
        // The cached trio equals a fresh computation.
        let fresh = schedule_cluster(&app, &blocks, set, &lib).unwrap();
        assert_eq!(first.sched, fresh);
        assert_eq!(first.binding, bind(&fresh, &lib));
        assert_eq!(
            first.util,
            utilization(&fresh, &first.binding, &profile, &lib)
        );
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn peek_serves_completed_entries_without_counting() {
        let cache: MemoCache<u32, u64, SchedError> = MemoCache::new();
        assert!(cache.peek(&9).is_none());
        let stored = cache.get_or_compute(9, || Ok(81)).unwrap();
        let peeked = cache.peek(&9).expect("completed").unwrap();
        assert!(Arc::ptr_eq(&stored, &peeked));
        assert!(cache.peek(&10).is_none());
        // Planning probes leave the counters untouched.
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
    }

    #[test]
    fn infeasible_results_are_cached() {
        let (app, _profile) = fixture();
        // An empty resource set cannot execute anything.
        let empty = ResourceSet::builder("empty").build();
        let lib = ResourceLibrary::cmos6();
        let blocks = app
            .structure()
            .iter()
            .find(|n| n.is_loop())
            .unwrap()
            .blocks()
            .to_vec();

        let cache: ScheduleCache<&str> = ScheduleCache::new();
        let mut calls = 0;
        for _ in 0..3 {
            let r = cache.get_or_compute("empty", || {
                calls += 1;
                let sched = schedule_cluster(&app, &blocks, &empty, &lib)?;
                let binding = bind(&sched, &lib);
                unreachable!("{binding:?}")
            });
            assert!(r.is_err());
        }
        assert_eq!(calls, 1);
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
    }

    /// A payload with a known, controllable heap footprint.
    #[derive(Debug, Clone, PartialEq)]
    struct Blob(Vec<u8>);

    impl HeapBytes for Blob {
        fn heap_bytes(&self) -> usize {
            self.0.capacity()
        }
    }

    #[test]
    fn bytes_counts_completed_values_plus_overhead() {
        let cache: MemoCache<u32, Blob, SchedError> = MemoCache::new();
        assert_eq!(cache.bytes(), 0);
        cache
            .get_or_compute(1, || Ok(Blob(Vec::with_capacity(1000))))
            .unwrap();
        cache
            .get_or_compute(2, || Ok(Blob(Vec::with_capacity(500))))
            .unwrap();
        assert_eq!(
            cache.bytes(),
            (1000 + 500 + 2 * CACHE_ENTRY_OVERHEAD) as u64
        );
        // Errors are charged bookkeeping overhead only.
        let _ = cache.get_or_compute(3, || {
            Err(SchedError::NoResource {
                class: corepart_tech::resource::OpClass::Multiply,
                set: "none".into(),
            })
        });
        assert_eq!(
            cache.bytes(),
            (1000 + 500 + 3 * CACHE_ENTRY_OVERHEAD) as u64
        );
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn evicted_entry_recomputes_identically_and_releases_bytes() {
        let cache: MemoCache<u32, Blob, SchedError> = MemoCache::new();
        let first = cache.get_or_compute(7, || Ok(Blob(vec![42; 64]))).unwrap();
        let full = cache.bytes();
        assert!(full > CACHE_ENTRY_OVERHEAD as u64);

        // The budget path drops the entry; accounted bytes fall to zero
        // and the next lookup recomputes (a fresh miss, never stale).
        assert!(cache.evict(&7));
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.len(), 0);
        assert!(!cache.evict(&7), "double evict finds nothing");

        let mut recomputed = false;
        let second = cache
            .get_or_compute(7, || {
                recomputed = true;
                Ok(Blob(vec![42; 64]))
            })
            .unwrap();
        assert!(recomputed, "evicted key must recompute");
        assert_eq!(*first, *second, "recomputation is bit-identical");
        assert!(!Arc::ptr_eq(&first, &second), "fresh allocation");
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert_eq!(cache.bytes(), full, "same value, same accounting");
    }

    #[test]
    fn poisoned_entry_is_flushed_by_eviction() {
        let cache: MemoCache<u32, Blob, SchedError> = MemoCache::new();
        cache.get_or_compute(5, || Ok(Blob(vec![1; 16]))).unwrap();
        // Poison with a wrong value (and a different footprint): served
        // as a hit, and visible to the byte ledger.
        cache.poison(5, Blob(vec![9; 32]));
        let poisoned = cache
            .get_or_compute(5, || unreachable!("poisoned key must not recompute"))
            .unwrap();
        assert_eq!(poisoned.0, vec![9; 32]);
        assert_eq!(cache.bytes(), (32 + CACHE_ENTRY_OVERHEAD) as u64);
        // Budget eviction flushes the poison: the next lookup recomputes
        // the true value instead of serving the stale one.
        assert!(cache.evict(&5));
        let healed = cache.get_or_compute(5, || Ok(Blob(vec![1; 16]))).unwrap();
        assert_eq!(healed.0, vec![1; 16]);
    }
}
