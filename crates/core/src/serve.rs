//! `corepart serve` — a long-lived partitioning daemon speaking
//! JSON lines over TCP (`std::net` only, no dependencies).
//!
//! # Protocol
//!
//! One request per line, one response line per request, in request
//! order (clients may pipeline: many requests in flight on one
//! connection; a request carrying `"ordered":false` opts out of
//! ordering and is answered — matched by `id` — the moment its shard
//! finishes):
//!
//! ```text
//! {"id":1,"cmd":"partition","source":"app d; ...","arrays":{"x":[1,2]}}
//! {"id":2,"cmd":"explore","source":"...","weights":[0.0,1.0]}
//! {"id":3,"cmd":"verify","source":"...","clusters":[0],"set_index":2}
//! {"id":4,"cmd":"corpus","source":"...","weights":[0.0,1.0],"index":7,"seed":"9","name":"gen7"}
//! {"id":5,"cmd":"stats"}
//! {"id":6,"cmd":"shutdown"}
//! ```
//!
//! Compute requests may override the searchable knobs (`n_max`,
//! `factor_f`, `factor_g`) per request, and may name an optional
//! `operating_point` (`{"node_nm":180,"vdd":1.8}`) resolved against the
//! base configuration's node-scaling table — the answer then carries an
//! extra `operating_point` member with the designs re-weighed to that
//! point (simulation still runs once, at the base process); everything
//! else comes from the daemon's base configuration. Responses are
//!
//! ```text
//! {"id":1,"ok":true,"cmd":"partition","result":{...},"stats":{...}}
//! {"id":9,"ok":false,"error":{"kind":"ir","message":"..."}}
//! ```
//!
//! where `result` is *deterministic* — byte-identical to what a fresh
//! in-process [`Engine`] produces for the same request (see
//! [`respond_fresh`]; the conformance oracle compares the two) — and
//! `stats` is advisory (shard, store hit, latency, session counters).
//! Determinism lets the store memoize the rendered `result` per exact
//! request: a repeat is answered from the memo without re-running the
//! search, and its `stats` then carries no `session` counters (no
//! fresh session produced any).
//! Error kinds mirror [`CorepartError`]: `ir`, `sim`, `sched`,
//! `config`, plus `request` for lines the protocol itself rejects. A
//! failing request never poisons the store: parse errors are answered
//! before the store is touched, and deeper failures are memoized
//! error values that later identical requests replay.
//!
//! # Threading
//!
//! [`Server::spawn`] starts one worker thread per store shard plus an
//! accept loop; each connection gets a reader thread that routes
//! compute requests to their shard's worker (by [`request_fingerprint`])
//! and answers `stats`/`shutdown` inline. One worker per shard means
//! the hot artifact-lookup path never contends on a global lock — see
//! [`ArtifactStore`].

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use corepart_ir::cdfg::Application;
use corepart_ir::cluster::ClusterId;
use corepart_ir::lower::lower;
use corepart_ir::parser::parse;

use crate::corpus::{evaluate_corpus_entry, point_to_line, source_features, CorpusEntry};
use crate::engine::{session_identity, Engine, SessionStats};
use crate::error::CorepartError;
use crate::evaluate::Partition;
use crate::explore::{explore_in, hardware_weight_sweep};
use crate::verify::BatchOptions;
use corepart_tech::scaling::OperatingPoint;

use crate::json::{
    exploration_to_json_at, json_escape, outcome_result_json_at, parse_json, verify_result_json_at,
    JsonValue,
};
use crate::partition::Partitioner;
use crate::prepare::Workload;
use crate::store::{ArtifactStore, RequestStats, StoreOptions, StoreStats};
use crate::system::SystemConfig;

/// The default listen port (0 binds an ephemeral port).
pub const DEFAULT_PORT: u16 = 4860;

/// The default `explore` sweep over objective hardware weights
/// (factor G), from "hardware is free" to "hardware is precious" —
/// used when an explore request names no `weights`.
pub const EXPLORE_WEIGHTS: [f64; 7] = [0.0, 0.1, 0.2, 0.5, 1.0, 2.0, 4.0];

/// Construction knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCP port on 127.0.0.1 (0 = ephemeral; see [`Server::addr`]).
    pub port: u16,
    /// Store shards (= warm engines = worker threads).
    pub shards: usize,
    /// Store-wide artifact byte budget.
    pub budget_bytes: u64,
    /// Verification threads per served session (0 = automatic) — the
    /// sharded batched-replay kernel's worker count.
    pub threads: usize,
    /// Maximum simultaneous client connections (0 = unlimited).
    /// Over-cap connects are answered with one `busy` error line and
    /// closed.
    pub max_connections: usize,
    /// Per-request wall-clock timeout in milliseconds (0 = none). A
    /// request past its deadline is answered with a `timeout` error;
    /// its compute still finishes on the shard worker (and is
    /// memoized), so the engine is never poisoned mid-flight.
    pub request_timeout_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let store = StoreOptions::default();
        ServeOptions {
            port: DEFAULT_PORT,
            shards: store.shards,
            budget_bytes: store.budget_bytes,
            threads: 0,
            max_connections: 0,
            request_timeout_ms: 0,
        }
    }
}

/// The four compute commands of the serve protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeKind {
    /// Run the full design flow (`outcome_result_json` payload).
    Partition,
    /// Sweep the hardware weight (`exploration_to_json` payload).
    Explore,
    /// Evaluate one explicit partition (`verify_result_json` payload).
    Verify,
    /// Evaluate one corpus entry — the `G` sweep reduced to a results
    /// row plus its design points (the distributed corpus client's
    /// request; `weights` carries the sweep).
    Corpus,
}

impl ComputeKind {
    /// The protocol's `cmd` string.
    pub fn name(self) -> &'static str {
        match self {
            ComputeKind::Partition => "partition",
            ComputeKind::Explore => "explore",
            ComputeKind::Verify => "verify",
            ComputeKind::Corpus => "corpus",
        }
    }
}

/// Corpus-entry metadata a `corpus` request carries verbatim into its
/// results row (the server recomputes everything else from `source`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusMeta {
    /// The entry's corpus index.
    pub index: u64,
    /// The deterministic per-entry seed.
    pub seed: u64,
    /// The entry name.
    pub name: String,
}

/// One parsed compute request.
#[derive(Debug, Clone)]
pub struct ComputeRequest {
    /// Client-chosen request id, echoed in the response.
    pub id: Option<u64>,
    /// Which command to run.
    pub kind: ComputeKind,
    /// BDL source text of the application.
    pub source: String,
    /// Workload arrays, `(name, contents)`.
    pub arrays: Vec<(String, Vec<i64>)>,
    /// Override of the configured cluster-count bound.
    pub n_max: Option<usize>,
    /// Override of objective factor F.
    pub factor_f: Option<f64>,
    /// Override of objective factor G.
    pub factor_g: Option<f64>,
    /// Explore sweep weights (defaults to [`EXPLORE_WEIGHTS`]).
    pub weights: Option<Vec<f64>>,
    /// Clusters of the partition to verify.
    pub clusters: Vec<u32>,
    /// Designer resource set of the partition to verify.
    pub set_index: usize,
    /// Optional operating point the answer is re-weighed to (the
    /// simulation itself always runs at the base process).
    pub operating_point: Option<OperatingPoint>,
    /// Whether the response must come back in request order (the
    /// default). With `false` the client matches responses by `id`,
    /// and a pipelined connection returns each answer as soon as its
    /// shard finishes. Never part of the result memo key — ordering is
    /// transport, not content.
    pub ordered: bool,
    /// Corpus-entry metadata (`corpus` requests only).
    pub corpus: Option<CorpusMeta>,
}

impl ComputeRequest {
    /// A request with every optional knob unset (the CLI's defaults).
    pub fn new(kind: ComputeKind, source: &str) -> Self {
        ComputeRequest {
            id: None,
            kind,
            source: source.to_owned(),
            arrays: Vec::new(),
            n_max: None,
            factor_f: None,
            factor_g: None,
            weights: None,
            clusters: Vec::new(),
            set_index: 2,
            operating_point: None,
            ordered: true,
            corpus: None,
        }
    }

    /// Renders the request as one protocol line (no trailing newline) —
    /// the client half of the wire format `parse_request` reads.
    pub fn to_json(&self) -> String {
        let mut fields = Vec::new();
        if let Some(id) = self.id {
            fields.push(format!("\"id\":{id}"));
        }
        fields.push(format!("\"cmd\":\"{}\"", self.kind.name()));
        fields.push(format!("\"source\":\"{}\"", json_escape(&self.source)));
        if !self.arrays.is_empty() {
            let arrays: Vec<String> = self
                .arrays
                .iter()
                .map(|(name, data)| {
                    let items: Vec<String> = data.iter().map(|v| v.to_string()).collect();
                    format!("\"{}\":[{}]", json_escape(name), items.join(","))
                })
                .collect();
            fields.push(format!("\"arrays\":{{{}}}", arrays.join(",")));
        }
        if let Some(n) = self.n_max {
            fields.push(format!("\"n_max\":{n}"));
        }
        if let Some(f) = self.factor_f {
            fields.push(format!("\"factor_f\":{f}"));
        }
        if let Some(g) = self.factor_g {
            fields.push(format!("\"factor_g\":{g}"));
        }
        if let Some(w) = &self.weights {
            let items: Vec<String> = w.iter().map(|v| v.to_string()).collect();
            fields.push(format!("\"weights\":[{}]", items.join(",")));
        }
        if self.kind == ComputeKind::Verify {
            let items: Vec<String> = self.clusters.iter().map(|v| v.to_string()).collect();
            fields.push(format!("\"clusters\":[{}]", items.join(",")));
            fields.push(format!("\"set_index\":{}", self.set_index));
        }
        if let Some(p) = &self.operating_point {
            fields.push(format!(
                "\"operating_point\":{{\"node_nm\":{},\"vdd\":{}}}",
                p.node_nm, p.vdd
            ));
        }
        if let Some(meta) = &self.corpus {
            fields.push(format!("\"index\":{}", meta.index));
            // A full 64-bit case seed does not survive a float round
            // trip, so the wire carries it as a decimal string.
            fields.push(format!("\"seed\":\"{}\"", meta.seed));
            fields.push(format!("\"name\":\"{}\"", json_escape(&meta.name)));
        }
        if !self.ordered {
            fields.push("\"ordered\":false".to_owned());
        }
        format!("{{{}}}", fields.join(","))
    }
}

/// Any parsed request line.
enum Request {
    Compute(Box<ComputeRequest>),
    Stats { id: Option<u64> },
    Shutdown { id: Option<u64> },
}

fn opt_u64(v: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn opt_f64(v: &JsonValue, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a number")),
    }
}

/// Parses one request line.
fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line)?;
    if !matches!(v, JsonValue::Obj(_)) {
        return Err("request must be a JSON object".into());
    }
    let id = opt_u64(&v, "id")?;
    let cmd = v
        .get("cmd")
        .and_then(JsonValue::as_str)
        .ok_or("request needs a string `cmd`")?;
    let kind = match cmd {
        "stats" => return Ok(Request::Stats { id }),
        "shutdown" => return Ok(Request::Shutdown { id }),
        "partition" => ComputeKind::Partition,
        "explore" => ComputeKind::Explore,
        "verify" => ComputeKind::Verify,
        "corpus" => ComputeKind::Corpus,
        other => return Err(format!("unknown cmd `{other}`")),
    };
    let source = v
        .get("source")
        .and_then(JsonValue::as_str)
        .ok_or("compute requests need a string `source`")?;
    let mut req = ComputeRequest::new(kind, source);
    req.id = id;
    if let Some(arrays) = v.get("arrays") {
        let JsonValue::Obj(entries) = arrays else {
            return Err("`arrays` must be an object of integer arrays".into());
        };
        for (name, value) in entries {
            let items = value
                .as_array()
                .ok_or_else(|| format!("array `{name}` must be a JSON array"))?;
            let mut data = Vec::with_capacity(items.len());
            for item in items {
                let x = item
                    .as_f64()
                    .filter(|x| x.fract() == 0.0 && x.abs() < i64::MAX as f64)
                    .ok_or_else(|| format!("array `{name}` must hold integers"))?;
                data.push(x as i64);
            }
            req.arrays.push((name.clone(), data));
        }
    }
    req.n_max = opt_u64(&v, "n_max")?.map(|n| n as usize);
    req.factor_f = opt_f64(&v, "factor_f")?;
    req.factor_g = opt_f64(&v, "factor_g")?;
    if let Some(weights) = v.get("weights") {
        let items = weights
            .as_array()
            .ok_or("`weights` must be an array of numbers")?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            out.push(
                item.as_f64()
                    .ok_or("`weights` must be an array of numbers")?,
            );
        }
        req.weights = Some(out);
    }
    if let Some(clusters) = v.get("clusters") {
        let items = clusters
            .as_array()
            .ok_or("`clusters` must be an array of cluster ids")?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let id = item
                .as_u64()
                .filter(|&x| x <= u64::from(u32::MAX))
                .ok_or("`clusters` must be an array of cluster ids")?;
            out.push(id as u32);
        }
        req.clusters = out;
    }
    if let Some(set) = opt_u64(&v, "set_index")? {
        req.set_index = set as usize;
    }
    match v.get("operating_point") {
        None | Some(JsonValue::Null) => {}
        Some(point) => {
            let bad = "`operating_point` must be {\"node_nm\":<int>,\"vdd\":<number>}";
            if !matches!(point, JsonValue::Obj(_)) {
                return Err(bad.into());
            }
            let node_nm = point
                .get("node_nm")
                .and_then(JsonValue::as_u64)
                .filter(|&n| n <= u64::from(u32::MAX))
                .ok_or(bad)?;
            let vdd = point.get("vdd").and_then(JsonValue::as_f64).ok_or(bad)?;
            req.operating_point = Some(OperatingPoint {
                node_nm: node_nm as u32,
                vdd,
            });
        }
    }
    match v.get("ordered") {
        None | Some(JsonValue::Null) => {}
        Some(JsonValue::Bool(b)) => req.ordered = *b,
        Some(_) => return Err("`ordered` must be a boolean".into()),
    }
    if kind == ComputeKind::Corpus {
        let index = opt_u64(&v, "index")?.ok_or("corpus requests need an `index`")?;
        let seed_value = v
            .get("seed")
            .ok_or_else(|| "corpus requests need a `seed`".to_string())?;
        let seed = match seed_value.as_str() {
            // The canonical wire format: a decimal string, because a
            // full 64-bit seed does not survive a float round trip.
            Some(text) => text
                .parse::<u64>()
                .map_err(|_| format!("`seed` must be a decimal u64, got '{text}'"))?,
            None => seed_value
                .as_u64()
                .ok_or_else(|| "`seed` must be a decimal string or integer".to_string())?,
        };
        let name = v
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("corpus requests need a string `name`")?;
        req.corpus = Some(CorpusMeta {
            index,
            seed,
            name: name.to_owned(),
        });
        if req.weights.as_ref().is_none_or(Vec::is_empty) {
            return Err("corpus requests need a non-empty `weights` G sweep".into());
        }
    }
    Ok(req.into())
}

impl From<ComputeRequest> for Request {
    fn from(req: ComputeRequest) -> Self {
        Request::Compute(Box::new(req))
    }
}

/// The shard-routing fingerprint of a compute request: the raw source
/// and array text, so routing needs no parse. Two requests with
/// identical text always share a shard (and therefore its warm
/// artifacts); texts that merely normalize to the same application may
/// land apart — they would also fingerprint apart in the CLI flow.
pub fn request_fingerprint(req: &ComputeRequest) -> u64 {
    let mut text = req.source.clone();
    for (name, data) in &req.arrays {
        text.push('\0');
        text.push_str(name);
        text.push('=');
        for v in data {
            text.push_str(&v.to_string());
            text.push(',');
        }
    }
    crate::engine::fnv64(&text)
}

fn parse_app(source: &str) -> Result<Application, CorepartError> {
    Ok(lower(&parse(source)?)?)
}

/// The per-request configuration: the daemon base with the request's
/// searchable-knob overrides applied.
fn effective_config(base: &SystemConfig, req: &ComputeRequest) -> SystemConfig {
    let mut config = base.clone();
    if let Some(n) = req.n_max {
        config.n_max = n;
    }
    if let Some(f) = req.factor_f {
        config.factor_f = f;
    }
    if let Some(g) = req.factor_g {
        config.factor_g = g;
    }
    if let Some(p) = req.operating_point {
        config.operating_point = Some(p);
    }
    config
}

type ComputeOutput = (String, Option<SessionStats>);

/// Runs one compute request against `engine` and renders the
/// deterministic `result` payload. Shared verbatim by the warm
/// ([`respond_compute`]) and fresh ([`respond_fresh`]) paths — the
/// byte-identity guarantee lives here.
fn compute_result(
    engine: &Engine,
    req: &ComputeRequest,
    app: &Application,
    workload: &Workload,
    config: SystemConfig,
) -> Result<ComputeOutput, CorepartError> {
    // Resolve the operating point first: an unknown node or an
    // out-of-range vdd is a `config` error before any simulation runs.
    let point = config.resolved_point()?;
    match req.kind {
        ComputeKind::Partition => {
            let session = engine.session_with_config(app, workload, config)?;
            let outcome = Partitioner::new(&session)?.run()?;
            Ok((
                outcome_result_json_at(app.name(), &outcome, point.as_ref()),
                Some(session.stats()),
            ))
        }
        ComputeKind::Verify => {
            if req.clusters.is_empty() {
                return Err(CorepartError::Config {
                    message: "verify needs at least one cluster".into(),
                });
            }
            let set = config.resource_set(req.set_index)?.clone();
            let session = engine.session_with_config(app, workload, config)?;
            let chain_len = session.prepared()?.chain.len();
            for &cid in &req.clusters {
                if cid as usize >= chain_len {
                    return Err(CorepartError::Config {
                        message: format!(
                            "cluster {cid} out of range (the chain has {chain_len} clusters)"
                        ),
                    });
                }
            }
            let partition = Partition {
                clusters: req.clusters.iter().map(|&c| ClusterId(c)).collect(),
                set,
            };
            let detail = Partitioner::new(&session)?.evaluate(&partition)?;
            Ok((
                verify_result_json_at(app.name(), &partition, &detail, point.as_ref()),
                Some(session.stats()),
            ))
        }
        ComputeKind::Explore => {
            let weights = req
                .weights
                .clone()
                .unwrap_or_else(|| EXPLORE_WEIGHTS.to_vec());
            let configs = hardware_weight_sweep(&weights, &config);
            let ex = explore_in(engine, app, workload, &configs)?;
            Ok((exploration_to_json_at(&ex, point.as_ref()), None))
        }
        ComputeKind::Corpus => {
            let meta = req.corpus.as_ref().ok_or_else(|| CorepartError::Config {
                message: "corpus requests need entry metadata".into(),
            })?;
            let g_sweep = req
                .weights
                .clone()
                .filter(|w| !w.is_empty())
                .ok_or_else(|| CorepartError::Config {
                    message: "corpus requests need a non-empty `weights` G sweep".into(),
                })?;
            // The corpus evaluation never re-weighs to an operating
            // point (points are re-weighed downstream, never during
            // search), so the knob is stripped — a pointed request
            // still answers bit-identically to an unpointed one.
            let mut base = config;
            base.operating_point = None;
            let mut options = crate::corpus::CorpusOptions::new(base);
            options.g_sweep = g_sweep;
            let features = source_features(&parse(&req.source)?);
            let entry = CorpusEntry {
                index: meta.index,
                seed: meta.seed,
                name: meta.name.clone(),
                source: req.source.clone(),
                app: app.clone(),
                workload: workload.clone(),
                features,
            };
            let (row, points) = evaluate_corpus_entry(engine, &entry, &options)?;
            let rendered: Vec<String> = points
                .iter()
                .map(|p| format!("\"{}\"", json_escape(&point_to_line(p))))
                .collect();
            Ok((
                format!(
                    "{{\"row\":\"{}\",\"points\":[{}]}}",
                    json_escape(&row.to_line()),
                    rendered.join(",")
                ),
                None,
            ))
        }
    }
}

fn id_json(id: Option<u64>) -> String {
    id.map_or_else(|| "null".to_owned(), |i| i.to_string())
}

fn session_stats_json(s: &SessionStats) -> String {
    format!(
        concat!(
            "{{\"prepare_shared\":{},\"baseline_shared\":{},",
            "\"schedule_cache_hits\":{},\"schedule_cache_misses\":{},",
            "\"replays\":{},\"replay_hits\":{},",
            "\"batched_replays\":{},\"batch_shards\":{}}}"
        ),
        s.prepare_shared,
        s.baseline_shared,
        s.schedule_cache_hits,
        s.schedule_cache_misses,
        s.replays,
        s.replay_hits,
        s.batched_replays,
        s.batch_shards,
    )
}

fn success_response(
    req: &ComputeRequest,
    result: &str,
    request: Option<&RequestStats>,
    session: Option<SessionStats>,
) -> String {
    let mut stats = Vec::new();
    match request {
        Some(r) => {
            stats.push(format!("\"shard\":{}", r.shard));
            stats.push(format!("\"store_hit\":{}", r.store_hit));
            stats.push(format!("\"elapsed_nanos\":{}", r.elapsed_nanos));
        }
        None => {
            stats.push("\"shard\":null".to_owned());
            stats.push("\"store_hit\":false".to_owned());
        }
    }
    if let Some(s) = session {
        stats.push(format!("\"session\":{}", session_stats_json(&s)));
    }
    format!(
        "{{\"id\":{},\"ok\":true,\"cmd\":\"{}\",\"result\":{},\"stats\":{{{}}}}}",
        id_json(req.id),
        req.kind.name(),
        result,
        stats.join(","),
    )
}

fn error_kind(e: &CorepartError) -> &'static str {
    match e {
        CorepartError::Ir(_) => "ir",
        CorepartError::Sim(_) => "sim",
        CorepartError::Sched(_) => "sched",
        CorepartError::Config { .. } => "config",
    }
}

fn error_response_kind(id: Option<u64>, kind: &str, message: &str) -> String {
    format!(
        "{{\"id\":{},\"ok\":false,\"error\":{{\"kind\":\"{}\",\"message\":\"{}\"}}}}",
        id_json(id),
        kind,
        json_escape(message),
    )
}

fn error_response(id: Option<u64>, e: &CorepartError) -> String {
    error_response_kind(id, error_kind(e), &e.to_string())
}

fn latency_json(l: &crate::store::LatencyStats) -> String {
    format!(
        "{{\"count\":{},\"p50_nanos\":{},\"p95_nanos\":{},\"p99_nanos\":{}}}",
        l.count, l.p50_nanos, l.p95_nanos, l.p99_nanos,
    )
}

/// Renders a [`StoreStats`] snapshot as the `stats` command's response.
pub fn stats_response(store: &ArtifactStore, id: Option<u64>) -> String {
    let s: StoreStats = store.stats();
    let shards: Vec<String> = s
        .shards
        .iter()
        .map(|sh| {
            format!(
                concat!(
                    "{{\"requests\":{},\"hits\":{},\"evictions\":{},",
                    "\"declined\":{},\"entries\":{},\"bytes\":{},",
                    "\"depth\":{},\"depth_max\":{}}}"
                ),
                sh.requests,
                sh.hits,
                sh.evictions,
                sh.declined,
                sh.entries,
                sh.bytes,
                sh.depth,
                sh.depth_max,
            )
        })
        .collect();
    let pipeline = format!(
        concat!(
            "{{\"queue_wait_nanos\":{},\"compute_nanos\":{},",
            "\"coalesced\":{{\"k1\":{},\"k2_4\":{},\"k5_16\":{}}}}}"
        ),
        s.pipeline.queue_wait_nanos,
        s.pipeline.compute_nanos,
        s.pipeline.coalesced_k1,
        s.pipeline.coalesced_k2_4,
        s.pipeline.coalesced_k5_16,
    );
    format!(
        concat!(
            "{{\"id\":{},\"ok\":true,\"cmd\":\"stats\",\"result\":",
            "{{\"budget_bytes\":{},\"bytes\":{},\"requests\":{},\"hits\":{},",
            "\"hit_rate\":{},\"evictions\":{},\"declined\":{},",
            "\"latency\":{},\"pipeline\":{},\"shards\":[{}]}}}}"
        ),
        id_json(id),
        s.budget_bytes,
        s.bytes,
        s.requests,
        s.hits,
        s.hit_rate(),
        s.evictions,
        s.declined,
        latency_json(&s.latency),
        pipeline,
        shards.join(","),
    )
}

/// The store's result-memo key: the session identity plus every knob
/// the deterministic `result` payload depends on. Requests with equal
/// keys are guaranteed byte-identical answers, so the store may serve
/// the second from its memo without touching the engine.
fn request_result_key(identity: &str, req: &ComputeRequest) -> String {
    format!(
        "{identity}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{}|{:?}|{:?}",
        req.kind.name(),
        req.n_max,
        req.factor_f,
        req.factor_g,
        req.weights,
        req.clusters,
        req.set_index,
        req.operating_point,
        req.corpus,
    )
}

/// Answers one compute request from the warm store.
pub fn respond_compute(store: &ArtifactStore, req: &ComputeRequest) -> String {
    let app = match parse_app(&req.source) {
        Ok(app) => app,
        Err(e) => return error_response(req.id, &e),
    };
    let workload = Workload::from_arrays(req.arrays.clone());
    let identity = session_identity(&app, &workload);
    let config = effective_config(store.base_config(), req);
    let (outcome, rstats) = store.with_result(
        request_fingerprint(req),
        &identity,
        &request_result_key(&identity, req),
        |engine| compute_result(engine, req, &app, &workload, config),
    );
    match outcome {
        Ok((result, session)) => success_response(req, &result, Some(&rstats), session.flatten()),
        Err(e) => error_response(req.id, &e),
    }
}

/// Answers one compute request from a fresh, throwaway [`Engine`] —
/// the oracle the served (warm) path must byte-match on the `result`
/// field (the `stats` field legitimately differs).
pub fn respond_fresh(base: &SystemConfig, req: &ComputeRequest) -> String {
    let app = match parse_app(&req.source) {
        Ok(app) => app,
        Err(e) => return error_response(req.id, &e),
    };
    let workload = Workload::from_arrays(req.arrays.clone());
    let config = effective_config(base, req);
    let engine = match Engine::new(base.clone()) {
        Ok(engine) => engine,
        Err(e) => return error_response(req.id, &e),
    };
    match compute_result(&engine, req, &app, &workload, config) {
        Ok((result, session)) => success_response(req, &result, None, session),
        Err(e) => error_response(req.id, &e),
    }
}

/// Answers one request line against `store`. Returns the response line
/// (no trailing newline) and whether the line was a shutdown request.
/// This is the whole protocol — the TCP layer only moves lines; tests
/// and in-process clients may call it directly.
pub fn handle_line(store: &ArtifactStore, line: &str) -> (String, bool) {
    match parse_request(line) {
        Err(message) => (error_response_kind(None, "request", &message), false),
        Ok(Request::Stats { id }) => (stats_response(store, id), false),
        Ok(Request::Shutdown { id }) => (shutdown_response(id), true),
        Ok(Request::Compute(req)) => (respond_compute(store, &req), false),
    }
}

fn shutdown_response(id: Option<u64>) -> String {
    format!(
        "{{\"id\":{},\"ok\":true,\"cmd\":\"shutdown\",\"result\":null}}",
        id_json(id)
    )
}

/// One routed compute job: the parsed request, its connection-local
/// sequence number, and the reply slot into the connection's writer.
struct Job {
    seq: u64,
    req: Box<ComputeRequest>,
    enqueued: Instant,
    reply: mpsc::Sender<WriterMsg>,
}

/// Messages into a connection's writer thread.
enum WriterMsg {
    /// The reader announces every request in sequence order before
    /// routing it, so the writer knows what to wait for (and when to
    /// give up on it).
    Expect {
        seq: u64,
        id: Option<u64>,
        ordered: bool,
        deadline: Option<Instant>,
    },
    /// A response for `seq` is ready (from a shard worker, or inline
    /// from the reader for stats/shutdown/parse errors).
    Done {
        seq: u64,
        response: String,
        stop: bool,
    },
}

/// How many queued jobs one worker drain inspects for coalescing —
/// also the widest verify batch one drain can form (the PR 5/6 kernel
/// peaks around K=16).
const MAX_DRAIN: usize = 16;

/// One shard worker: drain the queue, coalesce same-trace verifies
/// into one batched replay prewarm, then answer every job through the
/// unchanged solo compute path (whose responses are byte-identical to
/// serial serving — the prewarm only populates memos the solo path
/// reads).
fn worker_loop(store: &ArtifactStore, shard: usize, rx: &mpsc::Receiver<Job>) {
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while batch.len() < MAX_DRAIN {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        coalesce_verifies(store, &batch);
        for job in batch {
            store.note_dequeued(shard);
            let queue_nanos = job.enqueued.elapsed().as_nanos() as u64;
            let started = Instant::now();
            let response = respond_compute(store, &job.req);
            let compute_nanos = started.elapsed().as_nanos() as u64;
            store.note_request_split(queue_nanos, compute_nanos);
            let response = splice_timing(response, queue_nanos, compute_nanos);
            let _ = job.reply.send(WriterMsg::Done {
                seq: job.seq,
                response,
                stop: false,
            });
        }
    }
}

/// The coalescing key: verify requests that may share one batched
/// replay walk. Everything that could change the prepared chain or the
/// replayed trace is included; the operating point is not (it re-weighs
/// rendering only and is excluded from the engine's artifact identity).
type CoalesceKey = (u64, Option<usize>, Option<u64>, Option<u64>);

fn coalesce_key(req: &ComputeRequest) -> CoalesceKey {
    (
        request_fingerprint(req),
        req.n_max,
        req.factor_f.map(f64::to_bits),
        req.factor_g.map(f64::to_bits),
    )
}

/// Groups the drained batch's verify requests by [`coalesce_key`],
/// records each group in the coalescing histogram, and prewarms every
/// group of two or more.
fn coalesce_verifies(store: &ArtifactStore, batch: &[Job]) {
    let mut groups: HashMap<CoalesceKey, Vec<&ComputeRequest>> = HashMap::new();
    let mut order = Vec::new();
    for job in batch {
        if job.req.kind == ComputeKind::Verify {
            let key = coalesce_key(&job.req);
            let group = groups.entry(key).or_insert_with(|| {
                order.push(key);
                Vec::new()
            });
            group.push(&*job.req);
        }
    }
    for key in order {
        let group = &groups[&key];
        store.note_coalesced(group.len());
        if group.len() >= 2 {
            prewarm_verify_group(store, group);
        }
    }
}

/// Verifies a same-trace group's hardware sets as lanes of ONE
/// batched replay call, publishing each lane into the shard engine's
/// replay memo. The batch kernel is pinned bit-identical to sequential
/// verification, so the solo responses that follow (all memo hits) are
/// byte-identical to serial serving; only wall time changes. Any
/// failure here is simply skipped — the solo path recomputes (and
/// properly reports) whatever the batch could not, including memoized
/// per-lane errors.
fn prewarm_verify_group(store: &ArtifactStore, group: &[&ComputeRequest]) {
    let first = group[0];
    let Ok(app) = parse_app(&first.source) else {
        return;
    };
    let workload = Workload::from_arrays(first.arrays.clone());
    let mut config = effective_config(store.base_config(), first);
    config.operating_point = None;
    let engine = store.shard_engine(request_fingerprint(first));
    let Ok(session) = engine.session_with_config(&app, &workload, config) else {
        return;
    };
    let Ok(prepared) = session.prepared() else {
        return;
    };
    let chain_len = prepared.chain.len();
    let mut lanes: Vec<HashSet<corepart_ir::op::BlockId>> = Vec::with_capacity(group.len());
    for req in group {
        if req.clusters.is_empty() || req.clusters.iter().any(|&c| c as usize >= chain_len) {
            continue;
        }
        let mut hw = HashSet::new();
        for &cid in &req.clusters {
            hw.extend(
                prepared
                    .chain
                    .cluster(ClusterId(cid))
                    .blocks
                    .iter()
                    .copied(),
            );
        }
        lanes.push(hw);
    }
    if lanes.len() < 2 {
        return;
    }
    let Ok(Some(replay)) = session.replay_engine() else {
        return;
    };
    let _ = replay.verify_batch_with(
        session.config(),
        &lanes,
        BatchOptions::threaded(session.threads()),
    );
}

/// Splices the queue-wait/compute split into a success response's
/// advisory `stats` object. Error responses are left byte-identical to
/// the fresh oracle's (the conformance oracle compares them whole).
fn splice_timing(response: String, queue_nanos: u64, compute_nanos: u64) -> String {
    if !response.contains("\"ok\":true,") || !response.ends_with("}}") {
        return response;
    }
    format!(
        "{},\"queue_nanos\":{queue_nanos},\"compute_nanos\":{compute_nanos}}}}}",
        &response[..response.len() - 2]
    )
}

/// A running serve daemon: the listener, one worker thread per store
/// shard, and the shared [`ArtifactStore`].
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    store: Arc<ArtifactStore>,
    shutdown: Arc<AtomicBool>,
    listener: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:{opts.port}` and starts the worker and accept
    /// threads. `opts.threads` overrides the base configuration's
    /// verification thread count, so served sessions drive the sharded
    /// batched-replay kernel.
    ///
    /// # Errors
    ///
    /// [`CorepartError::Config`] when the bind fails, the options are
    /// invalid, or a thread cannot be spawned.
    pub fn spawn(base: SystemConfig, opts: &ServeOptions) -> Result<Server, CorepartError> {
        let spawn_err = |e: std::io::Error| CorepartError::Config {
            message: format!("cannot spawn a serve thread: {e}"),
        };
        let mut config = base;
        if opts.threads != 0 {
            config.threads = opts.threads;
        }
        let store = Arc::new(ArtifactStore::new(
            config,
            &StoreOptions {
                shards: opts.shards,
                budget_bytes: opts.budget_bytes,
                ..StoreOptions::default()
            },
        )?);
        let listener =
            TcpListener::bind(("127.0.0.1", opts.port)).map_err(|e| CorepartError::Config {
                message: format!("cannot bind 127.0.0.1:{}: {e}", opts.port),
            })?;
        let addr = listener.local_addr().map_err(|e| CorepartError::Config {
            message: format!("cannot resolve the listen address: {e}"),
        })?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let timeout =
            (opts.request_timeout_ms > 0).then(|| Duration::from_millis(opts.request_timeout_ms));
        let max_connections = opts.max_connections;

        let mut senders = Vec::with_capacity(store.shards());
        for shard in 0..store.shards() {
            let (tx, rx) = mpsc::channel::<Job>();
            senders.push(tx);
            let worker_store = Arc::clone(&store);
            thread::Builder::new()
                .name(format!("corepart-shard-{shard}"))
                .spawn(move || worker_loop(&worker_store, shard, &rx))
                .map_err(spawn_err)?;
        }
        let senders = Arc::new(senders);

        let accept_store = Arc::clone(&store);
        let accept_shutdown = Arc::clone(&shutdown);
        let listener_handle = thread::Builder::new()
            .name("corepart-accept".into())
            .spawn(move || {
                let active = Arc::new(AtomicUsize::new(0));
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = stream else { continue };
                    if max_connections > 0 && active.load(Ordering::SeqCst) >= max_connections {
                        let busy = error_response_kind(
                            None,
                            "busy",
                            &format!("connection limit of {max_connections} reached"),
                        );
                        let _ = stream.write_all(busy.as_bytes());
                        let _ = stream.write_all(b"\n");
                        continue;
                    }
                    active.fetch_add(1, Ordering::SeqCst);
                    let conn_store = Arc::clone(&accept_store);
                    let conn_senders = Arc::clone(&senders);
                    let conn_shutdown = Arc::clone(&accept_shutdown);
                    let conn_active = Arc::clone(&active);
                    let spawned =
                        thread::Builder::new()
                            .name("corepart-conn".into())
                            .spawn(move || {
                                serve_connection(
                                    stream,
                                    &conn_store,
                                    &conn_senders,
                                    &conn_shutdown,
                                    addr,
                                    timeout,
                                );
                                conn_active.fetch_sub(1, Ordering::SeqCst);
                            });
                    if spawned.is_err() {
                        active.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            })
            .map_err(spawn_err)?;

        Ok(Server {
            addr,
            store,
            shutdown,
            listener: Some(listener_handle),
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's artifact store (for in-process stats).
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// Requests shutdown from outside the protocol and wakes the
    /// accept loop (a client's `shutdown` request does both itself).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }

    /// Blocks until the accept loop exits — i.e. until some client
    /// sent `shutdown` (or [`Server::shutdown`] was called). Shard
    /// workers drain and exit once every live connection closes.
    pub fn join(mut self) {
        if let Some(handle) = self.listener.take() {
            let _ = handle.join();
        }
    }
}

/// One connection, pipelined: this thread reads request lines, tags
/// each with a sequence number, and routes compute jobs to their
/// shard's worker *without waiting for the answer* — a dedicated
/// writer thread re-serializes responses in request order (or by `id`
/// when the request opted into `"ordered":false`). One connection can
/// therefore keep every store shard busy at once.
fn serve_connection(
    stream: TcpStream,
    store: &ArtifactStore,
    senders: &[mpsc::Sender<Job>],
    shutdown: &Arc<AtomicBool>,
    addr: SocketAddr,
    timeout: Option<Duration>,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<WriterMsg>();
    let write_shutdown = Arc::clone(shutdown);
    let Ok(writer) = thread::Builder::new()
        .name("corepart-write".into())
        .spawn(move || writer_loop(stream, &rx, &write_shutdown, addr))
    else {
        return;
    };

    let reader = BufReader::new(read_half);
    let mut seq: u64 = 0;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let this = seq;
        seq += 1;
        match parse_request(&line) {
            Ok(Request::Compute(req)) => {
                let announced = tx.send(WriterMsg::Expect {
                    seq: this,
                    id: req.id,
                    ordered: req.ordered,
                    deadline: timeout.map(|t| Instant::now() + t),
                });
                if announced.is_err() {
                    break;
                }
                let shard = store.shard_of(request_fingerprint(&req));
                store.note_enqueued(shard);
                let sent = senders[shard]
                    .send(Job {
                        seq: this,
                        req,
                        enqueued: Instant::now(),
                        reply: tx.clone(),
                    })
                    .is_ok();
                if !sent {
                    store.note_dequeued(shard);
                    break;
                }
            }
            other => {
                // Stats, shutdown and parse errors are answered inline,
                // but still flow through the writer so they keep their
                // place in the response order.
                let (response, stop) = match other {
                    Ok(Request::Stats { id }) => (stats_response(store, id), false),
                    Ok(Request::Shutdown { id }) => (shutdown_response(id), true),
                    Err(message) => (error_response_kind(None, "request", &message), false),
                    Ok(Request::Compute(_)) => unreachable!("compute handled above"),
                };
                let sent = tx
                    .send(WriterMsg::Expect {
                        seq: this,
                        id: None,
                        ordered: true,
                        deadline: None,
                    })
                    .and_then(|()| {
                        tx.send(WriterMsg::Done {
                            seq: this,
                            response,
                            stop,
                        })
                    })
                    .is_ok();
                if !sent || stop {
                    break;
                }
            }
        }
    }
    drop(tx);
    let _ = writer.join();
}

/// The writer's per-sequence-number slot state.
enum Slot {
    /// Announced by the reader; response still pending.
    Waiting {
        id: Option<u64>,
        ordered: bool,
        deadline: Option<Instant>,
    },
    /// Response ready, waiting for its in-order turn.
    Ready { response: String, stop: bool },
    /// Already written out of order (unordered response, or a
    /// synthesized timeout error); a late real response is dropped.
    Written,
}

/// The connection's writer: re-serializes worker responses into
/// request order, writes `"ordered":false` responses the moment they
/// land, and synthesizes `timeout` errors for requests past their
/// deadline (the real compute still finishes on its worker — and is
/// memoized — so a runaway request never poisons its shard's engine;
/// its late response is dropped here).
fn writer_loop(
    mut stream: TcpStream,
    rx: &mpsc::Receiver<WriterMsg>,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) {
    let mut slots: BTreeMap<u64, Slot> = BTreeMap::new();
    let mut next: u64 = 0;
    'conn: loop {
        let earliest = slots
            .values()
            .filter_map(|s| match s {
                Slot::Waiting {
                    deadline: Some(d), ..
                } => Some(*d),
                _ => None,
            })
            .min();
        let msg = match earliest {
            None => match rx.recv() {
                Ok(msg) => Some(msg),
                Err(_) => break 'conn,
            },
            Some(deadline) => {
                let wait = deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(wait) {
                    Ok(msg) => Some(msg),
                    Err(mpsc::RecvTimeoutError::Timeout) => None,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break 'conn,
                }
            }
        };
        match msg {
            Some(WriterMsg::Expect {
                seq,
                id,
                ordered,
                deadline,
            }) => {
                slots.insert(
                    seq,
                    Slot::Waiting {
                        id,
                        ordered,
                        deadline,
                    },
                );
            }
            Some(WriterMsg::Done {
                seq,
                response,
                stop,
            }) => match slots.get(&seq) {
                Some(Slot::Waiting { ordered: false, .. }) => {
                    if write_line(&mut stream, &response).is_err() {
                        break 'conn;
                    }
                    slots.insert(seq, Slot::Written);
                }
                Some(Slot::Waiting { .. }) => {
                    slots.insert(seq, Slot::Ready { response, stop });
                }
                // Timed out (already answered) or never announced.
                _ => {}
            },
            None => {
                // A deadline passed: answer every expired request with
                // a typed timeout error.
                let now = Instant::now();
                let expired: Vec<u64> = slots
                    .iter()
                    .filter_map(|(seq, slot)| match slot {
                        Slot::Waiting {
                            deadline: Some(d), ..
                        } if *d <= now => Some(*seq),
                        _ => None,
                    })
                    .collect();
                for seq in expired {
                    let Some(Slot::Waiting { id, ordered, .. }) = slots.remove(&seq) else {
                        continue;
                    };
                    let response = error_response_kind(
                        id,
                        "timeout",
                        "request timed out; its compute continues and its result is memoized",
                    );
                    if ordered {
                        slots.insert(
                            seq,
                            Slot::Ready {
                                response,
                                stop: false,
                            },
                        );
                    } else {
                        if write_line(&mut stream, &response).is_err() {
                            break 'conn;
                        }
                        slots.insert(seq, Slot::Written);
                    }
                }
            }
        }
        // In-order flush from `next`: skip already-written slots, write
        // every ready one, stop at the first still-pending response.
        while let Some(slot) = slots.get(&next) {
            match slot {
                Slot::Waiting { .. } => break,
                Slot::Written => {
                    slots.remove(&next);
                    next += 1;
                }
                Slot::Ready { .. } => {
                    let Some(Slot::Ready { response, stop }) = slots.remove(&next) else {
                        unreachable!("matched Ready above");
                    };
                    next += 1;
                    if write_line(&mut stream, &response).is_err() {
                        break 'conn;
                    }
                    if stop {
                        shutdown.store(true, Ordering::SeqCst);
                        let _ = TcpStream::connect(addr);
                        break 'conn;
                    }
                }
            }
        }
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::result_field;

    const SRC: &str = r#"app srv; var x[24]; var acc = 0;
        func main() {
            for (var i = 0; i < 24; i = i + 1) { acc = acc + x[i] * 5; }
            return acc;
        }"#;

    fn request(kind: ComputeKind) -> ComputeRequest {
        let mut req = ComputeRequest::new(kind, SRC);
        req.id = Some(7);
        req.arrays = vec![("x".into(), (0..24).collect())];
        req
    }

    fn store() -> ArtifactStore {
        ArtifactStore::new(SystemConfig::new(), &StoreOptions::default()).unwrap()
    }

    #[test]
    fn request_wire_format_round_trips() {
        let mut req = request(ComputeKind::Verify);
        req.clusters = vec![0, 2];
        req.set_index = 1;
        req.n_max = Some(3);
        req.factor_g = Some(0.5);
        let Ok(Request::Compute(parsed)) = parse_request(&req.to_json()) else {
            panic!("round trip failed");
        };
        assert_eq!(parsed.id, Some(7));
        assert_eq!(parsed.kind, ComputeKind::Verify);
        assert_eq!(parsed.source, SRC);
        assert_eq!(parsed.arrays, req.arrays);
        assert_eq!(parsed.n_max, Some(3));
        assert_eq!(parsed.factor_g, Some(0.5));
        assert_eq!(parsed.clusters, vec![0, 2]);
        assert_eq!(parsed.set_index, 1);
        assert_eq!(request_fingerprint(&parsed), request_fingerprint(&req));
    }

    #[test]
    fn corpus_and_ordered_fields_round_trip_on_the_wire() {
        let mut req = request(ComputeKind::Corpus);
        req.ordered = false;
        req.n_max = Some(4);
        req.factor_f = Some(1.25);
        req.weights = Some(vec![0.0, 0.2, 1.0]);
        req.corpus = Some(CorpusMeta {
            index: 9,
            seed: 0xDEAD_BEEF,
            name: "gen-9".into(),
        });
        let line = req.to_json();
        assert!(line.contains("\"ordered\":false"), "{line}");
        // The seed rides as a decimal string: 2^64-scale seeds must
        // not be squeezed through an f64.
        assert!(line.contains("\"seed\":\"3735928559\""), "{line}");
        let Ok(Request::Compute(parsed)) = parse_request(&line) else {
            panic!("round trip failed: {line}");
        };
        assert!(!parsed.ordered);
        assert_eq!(parsed.weights, Some(vec![0.0, 0.2, 1.0]));
        let meta = parsed.corpus.expect("corpus meta survives the wire");
        assert_eq!(meta.index, 9);
        assert_eq!(meta.seed, 0xDEAD_BEEF);
        assert_eq!(meta.name, "gen-9");
        // `ordered` defaults to true when absent.
        let plain = request(ComputeKind::Partition).to_json();
        assert!(!plain.contains("ordered"), "{plain}");
        let Ok(Request::Compute(default_req)) = parse_request(&plain) else {
            panic!("round trip failed: {plain}");
        };
        assert!(default_req.ordered);
    }

    #[test]
    fn corpus_requests_need_meta_and_weights() {
        let store = store();
        // A corpus command without its entry metadata…
        let mut missing_meta = request(ComputeKind::Corpus);
        missing_meta.weights = Some(vec![0.0, 1.0]);
        let (response, _) = handle_line(&store, &missing_meta.to_json());
        assert!(response.contains("\"kind\":\"request\""), "{response}");
        // …or without an explicit G sweep is rejected before compute.
        let mut missing_weights = request(ComputeKind::Corpus);
        missing_weights.corpus = Some(CorpusMeta {
            index: 0,
            seed: 1,
            name: "gen-0".into(),
        });
        let (response, _) = handle_line(&store, &missing_weights.to_json());
        assert!(response.contains("\"kind\":\"request\""), "{response}");
    }

    #[test]
    fn malformed_lines_get_request_errors() {
        let store = store();
        for line in [
            "not json",
            "[1,2]",
            "{\"cmd\":\"fly\"}",
            "{\"cmd\":\"partition\"}",
            "{\"cmd\":\"partition\",\"source\":\"app x;\",\"arrays\":{\"x\":[0.5]}}",
        ] {
            let (response, stop) = handle_line(&store, line);
            assert!(!stop);
            assert!(response.contains("\"ok\":false"), "{line} -> {response}");
            assert!(response.contains("\"kind\":\"request\""), "{response}");
        }
    }

    #[test]
    fn serve_answers_warm_and_matches_fresh() {
        let store = store();
        let line = request(ComputeKind::Partition).to_json();
        let (cold, _) = handle_line(&store, &line);
        let (warm, _) = handle_line(&store, &line);
        assert!(cold.contains("\"ok\":true"), "{cold}");
        assert!(warm.contains("\"store_hit\":true"), "{warm}");
        // The repeat is served from the result memo: no fresh session
        // ran, so its stats carry no session counters.
        assert!(cold.contains("\"session\""), "{cold}");
        assert!(!warm.contains("\"session\""), "{warm}");
        let fresh = respond_fresh(store.base_config(), &request(ComputeKind::Partition));
        assert_eq!(result_field(&cold), result_field(&fresh));
        assert_eq!(result_field(&warm), result_field(&fresh));

        let (stats, _) = handle_line(&store, "{\"cmd\":\"stats\"}");
        assert!(stats.contains("\"requests\":2"), "{stats}");
        assert!(stats.contains("\"hits\":1"), "{stats}");
        assert!(stats.contains("\"p99_nanos\":"), "{stats}");
    }

    #[test]
    fn operating_point_round_trips_and_keys_the_memo() {
        let mut req = request(ComputeKind::Partition);
        req.operating_point = Some(OperatingPoint {
            node_nm: 180,
            vdd: 1.8,
        });
        let Ok(Request::Compute(parsed)) = parse_request(&req.to_json()) else {
            panic!("round trip failed");
        };
        assert_eq!(
            parsed.operating_point,
            Some(OperatingPoint {
                node_nm: 180,
                vdd: 1.8
            })
        );
        // Same app, different point -> different result-memo key.
        let base = request(ComputeKind::Partition);
        assert_ne!(
            request_result_key("id", &req),
            request_result_key("id", &base)
        );
        // Same text fingerprint -> same shard, shared baseline artifacts.
        assert_eq!(request_fingerprint(&req), request_fingerprint(&base));
    }

    #[test]
    fn served_point_answers_match_fresh_and_extend_the_base() {
        let store = store();
        let mut req = request(ComputeKind::Partition);
        req.operating_point = Some(OperatingPoint {
            node_nm: 180,
            vdd: 1.8,
        });
        let line = req.to_json();
        let (warm, _) = handle_line(&store, &line);
        assert!(warm.contains("\"ok\":true"), "{warm}");
        assert!(
            warm.contains("\"operating_point\":{\"node_nm\":180,\"vdd\":1.8,"),
            "{warm}"
        );
        let fresh = respond_fresh(store.base_config(), &req);
        assert_eq!(result_field(&warm), result_field(&fresh));
        // The base (no-point) answer is a strict byte prefix of the
        // pointed answer modulo the closing brace: the weighting pass
        // only appends.
        let (plain, _) = handle_line(&store, &request(ComputeKind::Partition).to_json());
        let plain_result = result_field(&plain).unwrap();
        let point_result = result_field(&warm).unwrap();
        assert!(
            point_result.starts_with(&plain_result[..plain_result.len() - 1]),
            "{point_result}"
        );
    }

    #[test]
    fn out_of_range_vdd_is_a_config_error() {
        let store = store();
        let mut req = request(ComputeKind::Partition);
        req.operating_point = Some(OperatingPoint {
            node_nm: 180,
            vdd: 0.2,
        });
        let (response, _) = handle_line(&store, &req.to_json());
        assert!(response.contains("\"ok\":false"), "{response}");
        assert!(response.contains("\"kind\":\"config\""), "{response}");
        assert!(response.contains("outside"), "{response}");
        // Unknown node too.
        let mut req = request(ComputeKind::Partition);
        req.operating_point = Some(OperatingPoint {
            node_nm: 123,
            vdd: 1.0,
        });
        let (response, _) = handle_line(&store, &req.to_json());
        assert!(response.contains("\"kind\":\"config\""), "{response}");
        assert!(response.contains("unknown technology node"), "{response}");
    }

    #[test]
    fn verify_rejects_out_of_range_clusters() {
        let store = store();
        let mut req = request(ComputeKind::Verify);
        req.clusters = vec![99];
        let (response, _) = handle_line(&store, &req.to_json());
        assert!(response.contains("\"kind\":\"config\""), "{response}");
        assert!(response.contains("out of range"), "{response}");
    }

    #[test]
    fn tcp_round_trip_and_shutdown() {
        let server = Server::spawn(
            SystemConfig::new(),
            &ServeOptions {
                port: 0,
                shards: 2,
                threads: 1,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut send = |line: &str| {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
            let mut response = String::new();
            std::io::BufRead::read_line(&mut reader, &mut response).unwrap();
            response
        };
        let answer = send(&request(ComputeKind::Explore).to_json());
        assert!(answer.contains("\"ok\":true"), "{answer}");
        assert!(answer.contains("\"points\""), "{answer}");
        let stats = send("{\"id\":8,\"cmd\":\"stats\"}");
        assert!(stats.contains("\"requests\":1"), "{stats}");
        let bye = send("{\"id\":9,\"cmd\":\"shutdown\"}");
        assert!(bye.contains("\"cmd\":\"shutdown\""), "{bye}");
        server.join();
    }
}
