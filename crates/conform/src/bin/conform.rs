//! The `conform` binary: CI entry point for the conformance sweep.
//!
//! ```text
//! conform [--seed N] [--cases N] [--fault-every N] [--max-shrink N]
//!         [--report PATH] [--verbose]
//! ```
//!
//! Exit codes: 0 all oracles held, 1 violations found (report written),
//! 2 usage error.

use std::process::ExitCode;

use corepart_conform::report::summary_to_json;
use corepart_conform::runner::{run, RunnerOptions};

const USAGE: &str = "usage: conform [--seed N] [--cases N] [--fault-every N] \
                     [--max-shrink N] [--report PATH] [--verbose]";

fn parse_u64(flag: &str, value: Option<String>) -> Result<u64, String> {
    let value = value.ok_or_else(|| format!("{flag} needs a value"))?;
    value
        .parse()
        .map_err(|_| format!("{flag} needs an unsigned integer, got '{value}'"))
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<(RunnerOptions, String), String> {
    let mut options = RunnerOptions::default();
    let mut report_path = "conform-report.json".to_string();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => options.seed = parse_u64("--seed", args.next())?,
            "--cases" => options.cases = parse_u64("--cases", args.next())?,
            "--fault-every" => options.fault_every = parse_u64("--fault-every", args.next())?,
            "--max-shrink" => {
                options.max_shrink_steps = parse_u64("--max-shrink", args.next())? as usize;
            }
            "--report" => {
                report_path = args.next().ok_or("--report needs a path")?;
            }
            "--verbose" => options.verbose = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok((options, report_path))
}

fn main() -> ExitCode {
    let (options, report_path) = match parse_args(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    println!(
        "conform: seed {} | {} cases | fault battery every {} cases",
        options.seed, options.cases, options.fault_every
    );
    let summary = run(&options);
    println!(
        "conform: {} cases run, {} with fault injection, {} violation(s)",
        summary.cases_run,
        summary.fault_cases,
        summary.failures.len()
    );

    if summary.passed() {
        return ExitCode::SUCCESS;
    }

    for failure in &summary.failures {
        eprintln!(
            "violation: case {} (seed {}) oracle '{}': {}",
            failure.case_index, failure.case_seed, failure.oracle, failure.detail
        );
        eprintln!(
            "  shrunk {} -> {} nodes in {} steps; reproducer:\n{}",
            failure.size_before, failure.size_after, failure.shrink_steps, failure.source
        );
    }
    let json = summary_to_json(&summary);
    match std::fs::write(&report_path, &json) {
        Ok(()) => eprintln!("failure report written to {report_path}"),
        Err(e) => eprintln!("error: could not write {report_path}: {e}"),
    }
    ExitCode::FAILURE
}
