//! Hardware resource types, specifications, libraries and designer
//! resource sets.
//!
//! The paper's partitioner reasons about "resources" — ALUs, multipliers,
//! shifters, … — inside a core (§3.1). Each resource type has a hardware
//! effort in gate equivalents (`GEQ(rs_π)` in Fig. 4), an average power
//! `P_av^rs` (derived from the CMOS6 library, footnote 7), and a minimum
//! cycle time `T_cyc^rs` (Fig. 1 line 11). The designer specifies 3–5
//! candidate *resource sets* (#ALUs, #multipliers, #shifters, …) per
//! application (§3.2, line 7 of Fig. 1); the scheduler is run once per
//! set.
//!
//! Several resource types may be able to execute the same operation
//! (an `ALU` and a plain `Adder` can both add); the Fig. 4 binding
//! algorithm consults the candidate list *sorted by increasing size*, so
//! the smallest — and therefore most energy-efficient — resource is
//! preferred (footnote 13).

use std::collections::BTreeMap;
use std::fmt;

use crate::process::CmosProcess;
use crate::units::{GateEq, Power, Seconds};

/// Classes of operations that hardware resources execute.
///
/// The IR's fine-grained opcodes collapse onto these classes for
/// scheduling and binding purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Addition / subtraction.
    AddSub,
    /// Bitwise logic (and/or/xor/not).
    Logic,
    /// Comparisons producing a flag.
    Compare,
    /// Multiplication.
    Multiply,
    /// Division / remainder.
    Divide,
    /// Constant and variable shifts.
    Shift,
    /// Load/store to the shared memory (when executed on the ASIC core).
    MemAccess,
    /// Register-to-register moves and selects.
    Move,
}

impl OpClass {
    /// All operation classes, in a stable order.
    pub const ALL: [OpClass; 8] = [
        OpClass::AddSub,
        OpClass::Logic,
        OpClass::Compare,
        OpClass::Multiply,
        OpClass::Divide,
        OpClass::Shift,
        OpClass::MemAccess,
        OpClass::Move,
    ];
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::AddSub => "add/sub",
            OpClass::Logic => "logic",
            OpClass::Compare => "compare",
            OpClass::Multiply => "multiply",
            OpClass::Divide => "divide",
            OpClass::Shift => "shift",
            OpClass::MemAccess => "mem-access",
            OpClass::Move => "move",
        };
        f.write_str(s)
    }
}

/// A type of datapath resource (`rs_π` in the paper's notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceKind {
    /// A plain carry-lookahead adder/subtractor.
    Adder,
    /// A full ALU: add/sub, logic, compare.
    Alu,
    /// A parallel array multiplier.
    Multiplier,
    /// A sequential divider.
    Divider,
    /// A barrel shifter.
    BarrelShifter,
    /// A magnitude comparator.
    Comparator,
    /// A port to the shared memory (address + data registers, handshake).
    MemPort,
    /// Interconnect/steering logic handling register moves.
    MoveUnit,
}

impl ResourceKind {
    /// All resource kinds, in a stable order.
    pub const ALL: [ResourceKind; 8] = [
        ResourceKind::Adder,
        ResourceKind::Alu,
        ResourceKind::Multiplier,
        ResourceKind::Divider,
        ResourceKind::BarrelShifter,
        ResourceKind::Comparator,
        ResourceKind::MemPort,
        ResourceKind::MoveUnit,
    ];

    /// The operation classes this resource kind can execute.
    pub fn supported_ops(self) -> &'static [OpClass] {
        match self {
            ResourceKind::Adder => &[OpClass::AddSub],
            ResourceKind::Alu => &[
                OpClass::AddSub,
                OpClass::Logic,
                OpClass::Compare,
                OpClass::Move,
            ],
            ResourceKind::Multiplier => &[OpClass::Multiply],
            ResourceKind::Divider => &[OpClass::Divide],
            ResourceKind::BarrelShifter => &[OpClass::Shift],
            ResourceKind::Comparator => &[OpClass::Compare],
            ResourceKind::MemPort => &[OpClass::MemAccess],
            ResourceKind::MoveUnit => &[OpClass::Move],
        }
    }

    /// True if this resource kind can execute operations of `class`.
    pub fn supports(self, class: OpClass) -> bool {
        self.supported_ops().contains(&class)
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::Adder => "adder",
            ResourceKind::Alu => "alu",
            ResourceKind::Multiplier => "multiplier",
            ResourceKind::Divider => "divider",
            ResourceKind::BarrelShifter => "shifter",
            ResourceKind::Comparator => "comparator",
            ResourceKind::MemPort => "memport",
            ResourceKind::MoveUnit => "moveunit",
        };
        f.write_str(s)
    }
}

/// Specification of one resource type in a technology library.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceSpec {
    kind: ResourceKind,
    geq: GateEq,
    p_av: Power,
    t_cyc: Seconds,
    latency: u64,
}

impl ResourceSpec {
    /// Creates a specification.
    ///
    /// `latency` is the number of clock cycles one operation occupies the
    /// resource (`#ex_cycs` in Fig. 4).
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero.
    pub fn new(kind: ResourceKind, geq: GateEq, p_av: Power, t_cyc: Seconds, latency: u64) -> Self {
        assert!(
            latency > 0,
            "a resource latency of zero cycles is meaningless"
        );
        ResourceSpec {
            kind,
            geq,
            p_av,
            t_cyc,
            latency,
        }
    }

    /// The resource kind this spec describes.
    pub fn kind(&self) -> ResourceKind {
        self.kind
    }

    /// Hardware effort, `GEQ(rs_π)` in Fig. 4.
    pub fn geq(&self) -> GateEq {
        self.geq
    }

    /// Average power while clocked, `P_av^rs` (§3.1, footnote 7).
    pub fn p_av(&self) -> Power {
        self.p_av
    }

    /// Minimum cycle time, `T_cyc^rs` (Fig. 1 line 11).
    pub fn t_cyc(&self) -> Seconds {
        self.t_cyc
    }

    /// Cycles one operation occupies this resource.
    pub fn latency(&self) -> u64 {
        self.latency
    }
}

/// A technology library mapping each resource kind to its specification.
///
/// ```
/// use corepart_tech::resource::{OpClass, ResourceKind, ResourceLibrary};
///
/// let lib = ResourceLibrary::cmos6();
/// // The adder is smaller than the ALU, so it comes first in the
/// // candidate list (Fig. 4's Sorted_RS_List).
/// let cands = lib.candidates_for(OpClass::AddSub);
/// assert_eq!(cands[0], ResourceKind::Adder);
/// assert!(cands.contains(&ResourceKind::Alu));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceLibrary {
    specs: BTreeMap<ResourceKind, ResourceSpec>,
}

impl ResourceLibrary {
    /// An empty library. Use [`ResourceLibrary::insert`] to populate.
    pub fn new() -> Self {
        ResourceLibrary {
            specs: BTreeMap::new(),
        }
    }

    /// The CMOS6 0.8µ library used in the paper's evaluation.
    ///
    /// Gate counts are typical 32-bit datapath figures for the era; the
    /// average powers follow from the process parameters
    /// (`P = α·GEQ·C·V²·f`, see [`CmosProcess::block_power`]).
    pub fn cmos6() -> Self {
        Self::for_process(&CmosProcess::cmos6())
    }

    /// Builds a library for an arbitrary process by deriving each
    /// resource's average power from its gate count.
    pub fn for_process(process: &CmosProcess) -> Self {
        let period = process.clock_period();
        let alpha = process.active_activity();
        // (kind, gate equivalents, latency cycles, cycle-time factor)
        // The cycle-time factor models that a multiplier's critical path
        // is longer than an adder's; t_cyc = factor * process period.
        let table: &[(ResourceKind, u64, u64, f64)] = &[
            (ResourceKind::Adder, 450, 1, 0.6),
            (ResourceKind::Alu, 1_400, 1, 0.8),
            (ResourceKind::Multiplier, 6_500, 2, 1.0),
            (ResourceKind::Divider, 5_200, 12, 1.0),
            (ResourceKind::BarrelShifter, 1_100, 1, 0.7),
            (ResourceKind::Comparator, 350, 1, 0.5),
            // The ASIC reaches the shared memory directly over the bus
            // (Fig. 2 a) — no cache in front of it, hence the 4-cycle
            // access latency (vs. the µP's single-cycle cache hits).
            (ResourceKind::MemPort, 900, 4, 1.0),
            (ResourceKind::MoveUnit, 250, 1, 0.4),
        ];
        let mut lib = ResourceLibrary::new();
        for &(kind, geq, latency, tf) in table {
            let spec = ResourceSpec::new(
                kind,
                GateEq::new(geq),
                process.block_power(geq, alpha),
                period * tf,
                latency,
            );
            lib.insert(spec);
        }
        lib
    }

    /// Inserts (or replaces) a resource specification.
    pub fn insert(&mut self, spec: ResourceSpec) -> Option<ResourceSpec> {
        self.specs.insert(spec.kind(), spec)
    }

    /// Looks up the specification for a kind.
    pub fn spec(&self, kind: ResourceKind) -> Option<&ResourceSpec> {
        self.specs.get(&kind)
    }

    /// Looks up a spec, panicking with a helpful message when absent.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not in the library.
    pub fn expect_spec(&self, kind: ResourceKind) -> &ResourceSpec {
        self.specs
            .get(&kind)
            .unwrap_or_else(|| panic!("resource kind `{kind}` missing from library"))
    }

    /// Iterates over all specifications in kind order.
    pub fn iter(&self) -> impl Iterator<Item = &ResourceSpec> {
        self.specs.values()
    }

    /// Number of resource kinds in the library.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the library has no entries.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// All resource kinds able to execute `class`, sorted by increasing
    /// hardware effort.
    ///
    /// This is the basis of Fig. 4's `Sorted_RS_List`: "sorted according
    /// to the increasing size of a resource", so that the first element
    /// is "the smallest and therefore the most energy efficient one"
    /// (footnote 13).
    pub fn candidates_for(&self, class: OpClass) -> Vec<ResourceKind> {
        let mut v: Vec<ResourceKind> = self
            .specs
            .values()
            .filter(|s| s.kind().supports(class))
            .map(|s| s.kind())
            .collect();
        v.sort_by_key(|k| (self.specs[k].geq(), *k));
        v
    }
}

impl Default for ResourceLibrary {
    /// The default library is the CMOS6 library used in the paper.
    fn default() -> Self {
        ResourceLibrary::cmos6()
    }
}

/// A designer-specified resource allocation for a candidate ASIC core:
/// how many instances of each resource kind the designer is willing to
/// spend (§3.2: "the designer tells the partitioning algorithm how much
/// hardware (#ALUs, #multipliers, #shifters, …) they are willing to
/// spend").
///
/// ```
/// use corepart_tech::resource::{ResourceKind, ResourceSet};
///
/// let set = ResourceSet::builder("custom")
///     .with(ResourceKind::Alu, 2)
///     .with(ResourceKind::Multiplier, 1)
///     .build();
/// assert_eq!(set.count(ResourceKind::Alu), 2);
/// assert_eq!(set.count(ResourceKind::Divider), 0);
/// assert_eq!(set.total_instances(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceSet {
    name: String,
    counts: BTreeMap<ResourceKind, u32>,
}

impl ResourceSet {
    /// Starts building a named resource set.
    pub fn builder(name: impl Into<String>) -> ResourceSetBuilder {
        ResourceSetBuilder {
            name: name.into(),
            counts: BTreeMap::new(),
        }
    }

    /// The set's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instances of `kind` in this set (0 when absent).
    pub fn count(&self, kind: ResourceKind) -> u32 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Iterates over `(kind, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceKind, u32)> + '_ {
        self.counts.iter().map(|(&k, &c)| (k, c))
    }

    /// Total number of resource instances (`N_is` summed over kinds).
    pub fn total_instances(&self) -> u32 {
        self.counts.values().sum()
    }

    /// Total hardware effort of the full allocation under `lib`.
    ///
    /// Note the Fig. 4 algorithm computes the effort of the *used*
    /// instances (`GEQ_RS`); this is the upper bound if every instance
    /// were instantiated.
    pub fn total_geq(&self, lib: &ResourceLibrary) -> GateEq {
        self.counts
            .iter()
            .map(|(&k, &c)| {
                lib.spec(k)
                    .map(|s| s.geq() * u64::from(c))
                    .unwrap_or(GateEq::ZERO)
            })
            .sum()
    }

    /// The default family of designer resource sets.
    ///
    /// "Due to our design praxis 3 to 5 sets are given, depending on the
    /// complexity of an application" (§3.2). These five presets span a
    /// tiny move-dominated datapath up to a wide DSP datapath.
    pub fn default_family() -> Vec<ResourceSet> {
        vec![
            ResourceSet::builder("xs-control")
                .with(ResourceKind::Alu, 1)
                .with(ResourceKind::MemPort, 1)
                .build(),
            ResourceSet::builder("s-scalar")
                .with(ResourceKind::Alu, 1)
                .with(ResourceKind::Adder, 1)
                .with(ResourceKind::BarrelShifter, 1)
                .with(ResourceKind::MemPort, 1)
                .build(),
            ResourceSet::builder("m-dsp")
                .with(ResourceKind::Alu, 1)
                .with(ResourceKind::Adder, 1)
                .with(ResourceKind::Multiplier, 1)
                .with(ResourceKind::BarrelShifter, 1)
                .with(ResourceKind::MemPort, 1)
                .build(),
            ResourceSet::builder("l-dsp")
                .with(ResourceKind::Alu, 2)
                .with(ResourceKind::Adder, 2)
                .with(ResourceKind::Multiplier, 1)
                .with(ResourceKind::BarrelShifter, 1)
                .with(ResourceKind::MemPort, 2)
                .build(),
            ResourceSet::builder("xl-dsp")
                .with(ResourceKind::Alu, 2)
                .with(ResourceKind::Adder, 2)
                .with(ResourceKind::Multiplier, 2)
                .with(ResourceKind::Divider, 1)
                .with(ResourceKind::BarrelShifter, 2)
                .with(ResourceKind::MemPort, 2)
                .build(),
        ]
    }
}

impl fmt::Display for ResourceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.name)?;
        let mut first = true;
        for (k, c) in self.iter() {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{c}x{k}")?;
            first = false;
        }
        f.write_str("}")
    }
}

/// Builder for [`ResourceSet`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct ResourceSetBuilder {
    name: String,
    counts: BTreeMap<ResourceKind, u32>,
}

impl ResourceSetBuilder {
    /// Sets the instance count of `kind`. A count of zero removes it.
    pub fn with(mut self, kind: ResourceKind, count: u32) -> Self {
        if count == 0 {
            self.counts.remove(&kind);
        } else {
            self.counts.insert(kind, count);
        }
        self
    }

    /// Finalizes the set.
    pub fn build(self) -> ResourceSet {
        ResourceSet {
            name: self.name,
            counts: self.counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_op_class_has_a_candidate_in_cmos6() {
        let lib = ResourceLibrary::cmos6();
        for class in OpClass::ALL {
            assert!(
                !lib.candidates_for(class).is_empty(),
                "no resource can execute {class}"
            );
        }
    }

    #[test]
    fn candidates_sorted_by_increasing_size() {
        let lib = ResourceLibrary::cmos6();
        for class in OpClass::ALL {
            let cands = lib.candidates_for(class);
            for w in cands.windows(2) {
                assert!(
                    lib.expect_spec(w[0]).geq() <= lib.expect_spec(w[1]).geq(),
                    "candidates for {class} not sorted"
                );
            }
        }
    }

    #[test]
    fn smallest_add_candidate_is_plain_adder() {
        let lib = ResourceLibrary::cmos6();
        assert_eq!(lib.candidates_for(OpClass::AddSub)[0], ResourceKind::Adder);
    }

    #[test]
    fn compare_prefers_comparator_over_alu() {
        let lib = ResourceLibrary::cmos6();
        let cands = lib.candidates_for(OpClass::Compare);
        assert_eq!(cands[0], ResourceKind::Comparator);
        assert!(cands.contains(&ResourceKind::Alu));
    }

    #[test]
    fn multiplier_larger_and_hungrier_than_alu() {
        let lib = ResourceLibrary::cmos6();
        let mul = lib.expect_spec(ResourceKind::Multiplier);
        let alu = lib.expect_spec(ResourceKind::Alu);
        assert!(mul.geq() > alu.geq());
        assert!(mul.p_av().watts() > alu.p_av().watts());
    }

    #[test]
    fn resource_set_builder_and_accessors() {
        let set = ResourceSet::builder("t")
            .with(ResourceKind::Alu, 2)
            .with(ResourceKind::Multiplier, 1)
            .with(ResourceKind::Divider, 3)
            .with(ResourceKind::Divider, 0) // remove again
            .build();
        assert_eq!(set.count(ResourceKind::Alu), 2);
        assert_eq!(set.count(ResourceKind::Divider), 0);
        assert_eq!(set.total_instances(), 3);
        assert_eq!(set.name(), "t");
    }

    #[test]
    fn resource_set_total_geq() {
        let lib = ResourceLibrary::cmos6();
        let set = ResourceSet::builder("t").with(ResourceKind::Alu, 2).build();
        assert_eq!(
            set.total_geq(&lib),
            lib.expect_spec(ResourceKind::Alu).geq() * 2
        );
    }

    #[test]
    fn default_family_is_three_to_five_sets() {
        let family = ResourceSet::default_family();
        assert!((3..=5).contains(&family.len()));
        // Every set must contain a memory port — the ASIC must reach the
        // shared memory (Fig. 2a).
        for set in &family {
            assert!(set.count(ResourceKind::MemPort) >= 1, "{}", set.name());
        }
    }

    #[test]
    fn family_is_ordered_by_increasing_hardware() {
        let lib = ResourceLibrary::cmos6();
        let family = ResourceSet::default_family();
        for w in family.windows(2) {
            assert!(w[0].total_geq(&lib) <= w[1].total_geq(&lib));
        }
    }

    #[test]
    fn display_formats() {
        let set = ResourceSet::builder("s")
            .with(ResourceKind::Alu, 1)
            .with(ResourceKind::Multiplier, 2)
            .build();
        let s = format!("{set}");
        assert!(s.contains("1xalu"));
        assert!(s.contains("2xmultiplier"));
        assert_eq!(format!("{}", OpClass::Multiply), "multiply");
        assert_eq!(format!("{}", ResourceKind::BarrelShifter), "shifter");
    }

    #[test]
    #[should_panic(expected = "missing from library")]
    fn expect_spec_panics_on_missing() {
        let lib = ResourceLibrary::new();
        let _ = lib.expect_spec(ResourceKind::Alu);
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn zero_latency_spec_panics() {
        use crate::units::{Power, Seconds};
        let _ = ResourceSpec::new(
            ResourceKind::Alu,
            GateEq::new(1),
            Power::ZERO,
            Seconds::ZERO,
            0,
        );
    }
}
