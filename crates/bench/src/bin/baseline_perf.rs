//! Ablation **A5** — comparison against performance-driven
//! partitioning.
//!
//! §2 positions the paper against classic hardware/software partitioners
//! whose "objective is to meet performance constraints while keeping
//! the system cost as low as possible. But none of them provide power
//! related optimization". This experiment runs both objectives on every
//! application: the speedup-greedy baseline (hardware budget 20 k
//! cells) and our energy-driven partitioner, then compares energy and
//! cycles side by side.
//!
//! ```text
//! cargo run --release -p corepart-bench --bin baseline_perf
//! ```

use corepart::baselines::performance_partition;
use corepart::partition::Partitioner;
use corepart::prepare::{prepare, Workload};
use corepart::system::SystemConfig;
use corepart_bench::SEED;
use corepart_tech::units::GateEq;
use corepart_workloads::all;

fn main() {
    println!("A5: energy-driven (ours) vs performance-driven (related work)\n");
    println!(
        "{:<8} {:<7} {:>10} {:>10} {:>12}",
        "app", "method", "saving%", "chg%", "HW cells"
    );
    for w in all() {
        let config = SystemConfig::new();
        let app = w.app().expect("bundled workload lowers");
        let prepared = prepare(app, Workload::from_arrays(w.arrays(SEED)), &config)
            .expect("bundled workload prepares");
        let partitioner = Partitioner::new(&prepared, &config).expect("initial run");

        let ours = partitioner.run().expect("our search");
        let perf = performance_partition(&partitioner, &config, GateEq::new(20_000))
            .expect("perf baseline");

        for (method, outcome) in [("energy", &ours), ("perf", &perf)] {
            match &outcome.best {
                Some((_, detail)) => println!(
                    "{:<8} {:<7} {:>10.1} {:>10.1} {:>12}",
                    w.name,
                    method,
                    outcome.energy_saving_percent().unwrap_or(0.0),
                    outcome.time_change_percent().unwrap_or(0.0),
                    detail.metrics.geq.cells()
                ),
                None => println!(
                    "{:<8} {:<7} {:>10} {:>10} {:>12}",
                    w.name, method, "--", "--", "--"
                ),
            }
        }
        println!();
    }
    println!(
        "Expected shape: the perf method matches or beats on cycles but\n\
         loses on energy wherever the fastest cluster is not the most\n\
         energy-efficient one (and it has no notion of cache/memory energy)."
    );
}
