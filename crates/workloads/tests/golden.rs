//! Golden-value regression tests: the paper workloads' observable
//! results under seed 1 are pinned, so any semantic drift in the
//! frontend, interpreter or workload sources is caught immediately.
//!
//! If a deliberate workload change lands, re-derive the constants with
//! the ignored `print_goldens` helper below.

use corepart_ir::interp::Interpreter;
use corepart_workloads::{all, by_name};

fn run_return_value(name: &str) -> i64 {
    let w = by_name(name).expect("workload exists");
    let app = w.app().expect("lowers");
    let mut interp = Interpreter::new(&app);
    for (arr, data) in w.arrays(1) {
        interp.set_array(&arr, &data).expect("array");
    }
    interp
        .run(400_000_000)
        .expect("terminates")
        .return_value
        .expect("returns a value")
}

#[test]
fn golden_return_values_seed1() {
    let expected: &[(&str, i64)] = &[
        ("3d", golden("3d")),
        ("MPG", golden("MPG")),
        ("ckey", golden("ckey")),
        ("digs", golden("digs")),
        ("engine", golden("engine")),
        ("trick", golden("trick")),
    ];
    for &(name, want) in expected {
        assert_eq!(run_return_value(name), want, "{name} drifted");
    }
}

/// The pinned values. Kept in one place so re-pinning is one edit.
fn golden(name: &str) -> i64 {
    match name {
        // Derived once from the canonical sources at seed 1; see
        // `print_goldens`.
        "3d" => GOLDEN_3D,
        "MPG" => GOLDEN_MPG,
        "ckey" => GOLDEN_CKEY,
        "digs" => GOLDEN_DIGS,
        "engine" => GOLDEN_ENGINE,
        "trick" => GOLDEN_TRICK,
        other => panic!("no golden for {other}"),
    }
}

include!("golden_data/values.rs");

/// `cargo test -p corepart-workloads --test golden -- --ignored
/// print_goldens --nocapture` regenerates the constants.
#[test]
#[ignore = "generator, not a test"]
fn print_goldens() {
    for w in all() {
        println!(
            "const GOLDEN_{}: i64 = {};",
            w.name.to_uppercase(),
            run_return_value(w.name)
        );
    }
}
