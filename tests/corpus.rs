//! Corpus-runner integration tests: the incremental-Pareto property,
//! byte-determinism of the columnar results file, and the
//! interrupt/resume contract (the journal replay must reconstruct the
//! exact run an uninterrupted invocation would have produced).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use proptest::prelude::*;

use corepart::corpus::{CorpusOptions, ParetoAccumulator};
use corepart::explore::{DesignPoint, Exploration};
use corepart::system::SystemConfig;
use corepart_conform::corpus::{gen_entry, run_gen_corpus};
use corepart_tech::units::{Cycles, Energy, GateEq};

/// A unique per-test scratch path (the OS temp dir plus pid + counter).
fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "corepart-corpus-test-{}-{n}-{tag}",
        std::process::id()
    ))
}

/// RAII cleanup for the scratch files a test creates.
struct Scratch(Vec<PathBuf>);

impl Scratch {
    fn path(&mut self, tag: &str) -> PathBuf {
        let p = temp_path(tag);
        self.0.push(p.clone());
        p
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        for p in &self.0 {
            let _ = std::fs::remove_file(p);
        }
    }
}

fn small_options() -> CorpusOptions {
    let mut options = CorpusOptions::new(SystemConfig::new());
    options.chunk = 2;
    options.threads = 2;
    options
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite 1: folding any chunking of a point stream through
    /// [`ParetoAccumulator`] is bit-identical to one one-shot
    /// [`Exploration::pareto_frontier`] over the concatenation. Small
    /// coordinate ranges force plenty of dominance and coincidence.
    #[test]
    fn incremental_pareto_matches_one_shot(
        raw in prop::collection::vec((0u32..24, 0u64..24, 0u64..24), 0..60),
        chunk in 1usize..9,
    ) {
        let points: Vec<DesignPoint> = raw
            .iter()
            .enumerate()
            .map(|(i, &(e, c, g))| DesignPoint {
                label: format!("p{i}"),
                energy: Energy::from_microjoules(f64::from(e)),
                cycles: Cycles::new(c),
                geq: GateEq::new(g),
                saving_percent: 0.0,
                is_initial: false,
            })
            .collect();
        let mut acc = ParetoAccumulator::new();
        for batch in points.chunks(chunk) {
            acc.add(batch.to_vec());
        }
        let one_shot: Vec<DesignPoint> = Exploration { points }
            .pareto_frontier()
            .into_iter()
            .cloned()
            .collect();
        prop_assert_eq!(acc.frontier(), &one_shot[..]);
    }
}

/// Satellite 3 (determinism): the same seed and configuration produce
/// a byte-identical columnar results file across two independent runs.
#[test]
fn same_seed_yields_byte_identical_columnar_file() {
    let mut scratch = Scratch(Vec::new());
    let mut files = Vec::new();
    for run in 0..2 {
        let out = scratch.path(&format!("det-out-{run}.tsv"));
        let journal = scratch.path(&format!("det-journal-{run}"));
        let outcome =
            run_gen_corpus(11, 6, small_options(), &journal, &out, false).expect("corpus runs");
        assert!(outcome.finished);
        assert_eq!(outcome.evaluated, 6);
        files.push(std::fs::read(&out).expect("results file written"));
    }
    assert_eq!(files[0], files[1], "corpus output must be deterministic");
}

/// Satellite 3 (kill-and-resume): a run interrupted after its first
/// chunk and then resumed produces a final results file AND journal
/// byte-identical to an uninterrupted run — the journal replay
/// reconstructs every row and frontier point bit-exactly.
#[test]
fn interrupted_and_resumed_run_matches_uninterrupted() {
    let mut scratch = Scratch(Vec::new());
    let out_a = scratch.path("resume-a.tsv");
    let journal_a = scratch.path("resume-a.journal");
    let full =
        run_gen_corpus(23, 6, small_options(), &journal_a, &out_a, false).expect("corpus runs");
    assert!(full.finished);

    let out_b = scratch.path("resume-b.tsv");
    let journal_b = scratch.path("resume-b.journal");
    let mut interrupted_options = small_options();
    interrupted_options.interrupt_after_chunks = Some(1);
    let partial = run_gen_corpus(23, 6, interrupted_options, &journal_b, &out_b, false)
        .expect("interrupted run still succeeds");
    assert!(!partial.finished, "the interrupt must stop the run early");
    assert_eq!(partial.chunks_done, 1);
    assert!(!out_b.exists(), "no results file until every chunk is done");

    let resumed =
        run_gen_corpus(23, 6, small_options(), &journal_b, &out_b, true).expect("resume succeeds");
    assert!(resumed.finished);
    assert_eq!(resumed.replayed, 2, "the completed chunk is replayed");
    assert_eq!(resumed.evaluated, 4, "only the missing chunks are computed");

    let read = |p: &PathBuf| std::fs::read(p).expect("file exists");
    assert_eq!(read(&out_a), read(&out_b), "final results files differ");
    assert_eq!(read(&journal_a), read(&journal_b), "journals differ");
}

/// A truncated journal (killed mid-chunk-write) resumes cleanly: the
/// partial trailing chunk is discarded and recomputed.
#[test]
fn truncated_journal_discards_the_partial_chunk() {
    let mut scratch = Scratch(Vec::new());
    let out = scratch.path("trunc.tsv");
    let journal = scratch.path("trunc.journal");
    let mut options = small_options();
    options.interrupt_after_chunks = Some(2);
    run_gen_corpus(31, 6, options, &journal, &out, false).expect("partial run");

    // Chop the journal mid-way through its second chunk, simulating a
    // kill between the chunk's first write and its `end` marker.
    let text = std::fs::read_to_string(&journal).expect("journal written");
    let second_chunk = text
        .match_indices("\nchunk\t")
        .nth(1)
        .expect("chunk marker")
        .0;
    let cut = text[second_chunk + 1..]
        .find("\nrow\t")
        .map(|i| second_chunk + 1 + i + 8)
        .expect("row line to cut");
    std::fs::write(&journal, &text[..cut]).expect("truncate journal");

    let resumed =
        run_gen_corpus(31, 6, small_options(), &journal, &out, true).expect("resume succeeds");
    assert!(resumed.finished);
    assert!(
        resumed.evaluated >= 4,
        "the truncated chunk must be recomputed, evaluated {}",
        resumed.evaluated
    );

    // And the recovered run still matches a clean one byte for byte.
    let out_clean = scratch.path("trunc-clean.tsv");
    let journal_clean = scratch.path("trunc-clean.journal");
    run_gen_corpus(31, 6, small_options(), &journal_clean, &out_clean, false).expect("clean run");
    assert_eq!(
        std::fs::read(&out).expect("recovered"),
        std::fs::read(&out_clean).expect("clean"),
    );
}

/// Resuming under different parameters (another seed) is refused with
/// a configuration error instead of silently mixing corpora.
#[test]
fn resume_refuses_a_mismatched_journal() {
    let mut scratch = Scratch(Vec::new());
    let out = scratch.path("mismatch.tsv");
    let journal = scratch.path("mismatch.journal");
    let mut options = small_options();
    options.limit = Some(2);
    run_gen_corpus(5, 6, options, &journal, &out, false).expect("partial run");

    let err = run_gen_corpus(6, 6, small_options(), &journal, &out, true)
        .expect_err("seed changed: resume must fail");
    assert!(
        err.to_string().contains("different parameters"),
        "unexpected error: {err}"
    );
}

/// The generator-side provider is itself deterministic and feeds the
/// features the rows record.
#[test]
fn gen_entries_are_deterministic_and_featureful() {
    for index in 0..4 {
        let a = gen_entry(42, index).expect("generates");
        let b = gen_entry(42, index).expect("generates");
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.name, b.name);
        assert_eq!(a.features, b.features);
        assert!(a.features.array_bytes > 0);
    }
}
