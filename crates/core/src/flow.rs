//! The end-to-end design flow of Fig. 5 — one call from behavioral
//! source text to a verified partition.
//!
//! `Application → graph → clusters → pre-selection → list schedule →
//! U_R → OF → synthesis estimate → gate-level verification → total
//! energy check`, with the designer's interaction points exposed as
//! [`SystemConfig`] knobs.

use std::sync::Arc;

use corepart_ir::lower::lower;
use corepart_ir::parser::parse;

use crate::engine::Engine;
use crate::error::CorepartError;
use crate::partition::{PartitionOutcome, Partitioner};
use crate::prepare::{PreparedApp, Workload};
use crate::report::Table1Entry;
use crate::system::SystemConfig;

/// The result of one complete flow run.
#[derive(Debug)]
pub struct FlowResult {
    /// The application name (from the `app <name>;` declaration).
    pub app_name: String,
    /// The prepared application (profile, compiled program, clusters)
    /// — shared ownership of the session's stage artifact.
    pub prepared: Arc<PreparedApp>,
    /// The partitioning outcome (initial + best partition + search
    /// statistics).
    pub outcome: PartitionOutcome,
}

impl FlowResult {
    /// This run as a Table-1 entry.
    pub fn table1_entry(&self) -> Table1Entry {
        Table1Entry::from_outcome(self.app_name.clone(), &self.outcome)
    }
}

/// The design flow driver.
#[derive(Debug, Clone, Default)]
pub struct DesignFlow {
    config: SystemConfig,
}

impl DesignFlow {
    /// A flow with the paper-default configuration.
    pub fn new() -> Self {
        DesignFlow {
            config: SystemConfig::new(),
        }
    }

    /// A flow with a custom configuration.
    pub fn with_config(config: SystemConfig) -> Self {
        DesignFlow { config }
    }

    /// The configuration (designer interaction point).
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Mutable access to the configuration.
    pub fn config_mut(&mut self) -> &mut SystemConfig {
        &mut self.config
    }

    /// Runs the full flow on behavioral source text.
    ///
    /// # Errors
    ///
    /// Parse/lowering errors, bad workloads, or simulation failures.
    pub fn run_source(
        &self,
        source: &str,
        workload: Workload,
    ) -> Result<FlowResult, CorepartError> {
        let program = parse(source)?;
        let app = lower(&program)?;
        self.run_app(app, workload)
    }

    /// Runs the full flow on an already-lowered application.
    ///
    /// # Errors
    ///
    /// Bad workloads or simulation failures.
    pub fn run_app(
        &self,
        app: corepart_ir::cdfg::Application,
        workload: Workload,
    ) -> Result<FlowResult, CorepartError> {
        let app_name = app.name().to_owned();
        let engine = Engine::new(self.config.clone())?;
        let session = engine.session(&app, &workload);
        let outcome = Partitioner::new(&session)?.run()?;
        Ok(FlowResult {
            app_name,
            prepared: session.prepared_arc()?,
            outcome,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_to_verified_partition() {
        let flow = DesignFlow::new();
        let result = flow
            .run_source(
                r#"app flowdemo; var x[128]; var y[128];
                func main() {
                    for (var i = 0; i < 128; i = i + 1) {
                        y[i] = x[i] * 7 + (x[i] >> 3);
                    }
                }"#,
                Workload::from_arrays([("x", (0..128).collect::<Vec<i64>>())]),
            )
            .unwrap();
        assert_eq!(result.app_name, "flowdemo");
        assert!(result.outcome.best.is_some());
        let entry = result.table1_entry();
        assert_eq!(entry.app, "flowdemo");
        assert!(entry.saving_percent().unwrap() > 0.0);
    }

    #[test]
    fn parse_errors_propagate() {
        let flow = DesignFlow::new();
        let err = flow.run_source("app broken; func main() {", Workload::empty());
        assert!(err.is_err());
    }

    #[test]
    fn config_accessors() {
        let mut flow = DesignFlow::new();
        flow.config_mut().n_max = 3;
        assert_eq!(flow.config().n_max, 3);
        let custom = DesignFlow::with_config(SystemConfig::new().with_n_max(2));
        assert_eq!(custom.config().n_max, 2);
    }
}
