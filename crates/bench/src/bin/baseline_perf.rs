//! Ablation **A5** — comparison against performance-driven
//! partitioning, plus the reproducible perf baseline for the search
//! engine itself.
//!
//! §2 positions the paper against classic hardware/software partitioners
//! whose "objective is to meet performance constraints while keeping
//! the system cost as low as possible. But none of them provide power
//! related optimization". This experiment runs both objectives on every
//! application: the speedup-greedy baseline (hardware budget 20 k
//! cells) and our energy-driven partitioner, then compares energy and
//! cycles side by side.
//!
//! On top of the A5 table, the binary measures the trace-replay
//! verification engine on every application — direct instruction-set
//! simulation of the chosen partition versus a replay of the captured
//! reference trace, checked bit-identical — plus the batched replay
//! kernel (K candidates per decoded-trace walk versus K one-candidate
//! replays, over the K ∈ {1, 4, 16} × threads ∈ {1, 2, 4} scaling
//! grid of the stretch-sharded walk), and times an 8-point hardware-weight
//! sweep on every application two ways: the seed's sequential path
//! (fresh preparation, baseline simulation and schedule cache per
//! configuration, one thread) against the shared, parallel [`explore`]
//! engine. Every section records the thread count it actually used.
//! A serve section spawns real daemons to measure pipelined-vs-serial
//! serving on one connection (responses pinned byte-identical) and a
//! same-fingerprint verify storm through the cross-request coalescing
//! path (lanes of one `replay_batch` call, again byte-identical).
//! A final corpus section pushes 24 *generated* applications through
//! the resumable sharded corpus runner ([`corepart::corpus`]) and
//! reports apps/sec, the aggregate Pareto-frontier size, and a
//! byte-identical determinism re-run.
//! Everything lands in `BENCH_partition.json`.
//!
//! ```text
//! cargo run --release -p corepart-bench --bin baseline_perf [app]
//! ```
//!
//! With an `app` argument (one of the six Table-1 names), only that
//! application is processed — the CI smoke job runs `baseline_perf
//! engine`.

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use corepart::baselines::performance_partition;
use corepart::cache::hierarchy::Hierarchy;
use corepart::cache::HierarchyReport;
use corepart::corpus::CorpusOptions;
use corepart::engine::Engine;
use corepart::evaluate::{evaluate_partition, evaluate_partition_with};
use corepart::explore::{explore, hardware_weight_sweep, DesignPoint};
use corepart::ir::op::BlockId;
use corepart::isa::simulator::{MemSink, RunStats, SimConfig, Simulator};
use corepart::json::{outcome_to_json, parse_json, result_field, JsonValue};
use corepart::parallel::resolve_threads;
use corepart::partition::{PartitionOutcome, Partitioner};
use corepart::prepare::{PreparedApp, Workload};
use corepart::serve::{
    handle_line, respond_fresh, ComputeKind, ComputeRequest, ServeOptions, Server,
};
use corepart::store::{ArtifactStore, StoreOptions};
use corepart::system::{ResolvedPoint, SystemConfig};
use corepart::verify::{replay_batch_with, replay_run, BatchOptions};
use corepart_bench::SEED;
use corepart_conform::corpus::run_gen_corpus;
use corepart_tech::scaling::OperatingPoint;
use corepart_tech::units::GateEq;
use corepart_workloads::{all, by_name, PaperWorkload};

/// The seed's exploration path: every configuration prepares,
/// simulates and schedules from scratch, one after the other — a fresh
/// [`Engine`] per configuration, so nothing is pooled. Kept here as
/// the reference the shared engine is measured against; the
/// point-assembly mirrors [`explore`] so the outputs are comparable
/// verbatim.
fn sequential_sweep(w: &PaperWorkload, configs: &[(String, SystemConfig)]) -> Vec<DesignPoint> {
    let workload = Workload::from_arrays(w.arrays(SEED));
    let mut outcomes = Vec::with_capacity(configs.len());
    for (_, config) in configs {
        let app = w.app().expect("bundled workload lowers");
        let engine = Engine::new(config.clone()).expect("engine");
        let session = engine.session(&app, &workload);
        let outcome = Partitioner::new(&session)
            .expect("initial run")
            .run()
            .expect("search");
        outcomes.push(outcome);
    }

    let first_initial = &outcomes[0].initial;
    let base = first_initial.total_energy();
    let mut points = Vec::with_capacity(configs.len() + 1);
    points.push(DesignPoint {
        label: "initial (all software)".into(),
        energy: first_initial.total_energy(),
        cycles: first_initial.total_cycles(),
        geq: GateEq::ZERO,
        saving_percent: 0.0,
        is_initial: true,
    });
    for ((label, _), outcome) in configs.iter().zip(&outcomes) {
        let (energy, cycles, geq) = match &outcome.best {
            Some((_, detail)) => (
                detail.metrics.total_energy(),
                detail.metrics.total_cycles(),
                detail.metrics.geq,
            ),
            None => (
                outcome.initial.total_energy(),
                outcome.initial.total_cycles(),
                GateEq::ZERO,
            ),
        };
        points.push(DesignPoint {
            label: label.clone(),
            energy,
            cycles,
            geq,
            saving_percent: energy.percent_saving(base).unwrap_or(0.0),
            is_initial: false,
        });
    }
    points
}

struct HSink<'a>(&'a mut Hierarchy);

impl MemSink for HSink<'_> {
    fn ifetch(&mut self, addr: u32) {
        self.0.ifetch(addr);
    }
    fn read(&mut self, addr: u32) {
        self.0.dread(addr);
    }
    fn write(&mut self, addr: u32) {
        self.0.dwrite(addr);
    }
}

/// The direct (no-replay) µP + cache-hierarchy verification of one
/// hardware-block set: a fresh instruction-set simulation with array
/// re-initialization — exactly what every candidate cost before the
/// replay engine existed.
fn direct_verify(
    prepared: &PreparedApp,
    config: &SystemConfig,
    hw_set: &HashSet<BlockId>,
) -> (RunStats, HierarchyReport) {
    let mut hierarchy = Hierarchy::new(
        config.icache.clone(),
        config.dcache.clone(),
        &config.process,
        config.memory_bytes,
    );
    let mut sim =
        Simulator::with_energy_table(&prepared.prog, &prepared.app, config.energy_table.clone());
    for (name, data) in &prepared.workload.arrays {
        sim.set_array(name, data).expect("workload array");
    }
    let stats = sim
        .run(
            &SimConfig::partitioned(config.max_cycles, hw_set.clone()),
            &mut HSink(&mut hierarchy),
        )
        .expect("direct simulation");
    (stats, hierarchy.report())
}

/// Times replay-based verification against direct simulation on the
/// search's chosen partition. Returns the `"verify":{...}` JSON
/// fragment, or `None` when the search found no partition or the
/// capture was unavailable.
fn measure_verify(
    prepared: &PreparedApp,
    config: &SystemConfig,
    partitioner: &Partitioner<'_>,
    ours: &PartitionOutcome,
    name: &str,
) -> Option<String> {
    const REPS: usize = 3;
    let (partition, _) = ours.best.as_ref()?;
    let engine = partitioner.replay_engine()?;

    let mut hw_set: HashSet<BlockId> = HashSet::new();
    for &cid in &partition.clusters {
        hw_set.extend(prepared.chain.cluster(cid).blocks.iter().copied());
    }

    let mut direct_nanos = u128::MAX;
    let mut direct = None;
    for _ in 0..REPS {
        let started = Instant::now();
        let run = direct_verify(prepared, config, &hw_set);
        direct_nanos = direct_nanos.min(started.elapsed().as_nanos());
        direct = Some(run);
    }
    let (direct_stats, direct_report) = direct.expect("at least one rep");

    let mut replay_nanos = u128::MAX;
    let mut replayed = None;
    for _ in 0..REPS {
        let started = Instant::now();
        let run = replay_run(prepared, config, engine.trace(), &hw_set).expect("replay");
        replay_nanos = replay_nanos.min(started.elapsed().as_nanos());
        replayed = Some(run);
    }
    let replayed = replayed.expect("at least one rep");

    // Bit-identical at the simulation level *and* through the full
    // evaluation path the search uses.
    let detail_direct =
        evaluate_partition(prepared, partition, partitioner.initial_stats(), config)
            .expect("direct evaluation");
    let detail_replayed = evaluate_partition_with(
        prepared,
        partition,
        partitioner.initial_stats(),
        config,
        None,
        Some(engine.as_ref()),
    )
    .expect("replayed evaluation");
    let identical = direct_stats == replayed.stats
        && direct_report == replayed.report
        && detail_direct == detail_replayed;

    let speedup = direct_nanos as f64 / replay_nanos.max(1) as f64;
    println!(
        "{:<8} {:>12.2} {:>12.2} {:>8.2}x {:>10}",
        name,
        direct_nanos as f64 / 1e6,
        replay_nanos as f64 / 1e6,
        speedup,
        identical
    );
    Some(format!(
        concat!(
            "\"verify\":{{\"threads\":1,\"direct_nanos\":{},\"replay_nanos\":{},",
            "\"speedup\":{:.4},\"identical\":{}}}"
        ),
        direct_nanos, replay_nanos, speedup, identical
    ))
}

/// Deterministic hardware-block set k over the application's cluster
/// chain: cluster `i` goes to hardware iff bit `i mod 4` of `k` is
/// set, so k = 0..16 tiles every 4-bit pattern over the chain (empty
/// through all-hardware).
fn candidate_set(prepared: &PreparedApp, k: usize) -> HashSet<BlockId> {
    prepared
        .chain
        .iter()
        .enumerate()
        .filter(|(i, _)| (k >> (i % 4)) & 1 == 1)
        .flat_map(|(_, cluster)| cluster.blocks.iter().copied())
        .collect()
}

/// Times the batched replay kernel against K sequential `replay_run`
/// calls over the K × threads scaling grid (K ∈ {1, 4, 16}, threads ∈
/// {1, 2, 4}) on deterministic candidate sets, checking every cell's
/// lanes bit-identical to the sequential replays. Returns one
/// `"batch"` JSON row per grid cell, or `None` when the capture was
/// unavailable.
fn measure_batch(
    prepared: &PreparedApp,
    config: &SystemConfig,
    partitioner: &Partitioner<'_>,
    name: &str,
) -> Option<Vec<String>> {
    const REPS: usize = 3;
    let engine = partitioner.replay_engine()?;
    let trace = engine.trace();

    let mut rows = Vec::new();
    for k in [1usize, 4, 16] {
        let candidates: Vec<HashSet<BlockId>> =
            (0..k).map(|i| candidate_set(prepared, i)).collect();

        let mut seq_nanos = u128::MAX;
        let mut sequential = None;
        for _ in 0..REPS {
            let started = Instant::now();
            let runs: Vec<_> = candidates
                .iter()
                .map(|hw| replay_run(prepared, config, trace, hw).expect("sequential replay"))
                .collect();
            seq_nanos = seq_nanos.min(started.elapsed().as_nanos());
            sequential = Some(runs);
        }

        for threads in [1usize, 2, 4] {
            let opts = BatchOptions::threaded(threads);
            let mut batch_nanos = u128::MAX;
            let mut batched = None;
            for _ in 0..REPS {
                let started = Instant::now();
                let runs = replay_batch_with(prepared, config, trace, &candidates, opts)
                    .expect("batched replay");
                batch_nanos = batch_nanos.min(started.elapsed().as_nanos());
                batched = Some(runs);
            }

            let identical = sequential == batched;
            let speedup = seq_nanos as f64 / batch_nanos.max(1) as f64;
            println!(
                "{:<8} {:>4} {:>3} {:>14.3} {:>14.3} {:>8.2}x {:>10}",
                name,
                k,
                threads,
                seq_nanos as f64 / k as f64 / 1e6,
                batch_nanos as f64 / k as f64 / 1e6,
                speedup,
                identical
            );
            rows.push(format!(
                concat!(
                    "{{\"app\":\"{}\",\"k\":{},\"threads\":{},",
                    "\"seq_nanos\":{},\"batch_nanos\":{},",
                    "\"seq_per_candidate_nanos\":{},\"batch_per_candidate_nanos\":{},",
                    "\"speedup\":{:.4},\"identical\":{}}}"
                ),
                name,
                k,
                threads,
                seq_nanos,
                batch_nanos,
                seq_nanos / k as u128,
                batch_nanos / k as u128,
                speedup,
                identical
            ));
        }
    }
    Some(rows)
}

/// The serve-protocol request of one paper workload: a full partition
/// run over its bundled source and seeded arrays.
fn serve_request(w: &PaperWorkload) -> ComputeRequest {
    let mut req = ComputeRequest::new(ComputeKind::Partition, w.source);
    req.arrays = w.arrays(SEED);
    req
}

/// Cold-vs-warm daemon timing on one application: `requests` identical
/// requests against per-request fresh engines (what every client paid
/// before the daemon existed) versus the same stream through a warm
/// [`ArtifactStore`]. Returns the JSON row and the app's settled store
/// footprint in bytes (used to size the Zipf section's budget).
fn measure_serve_app(w: &PaperWorkload, requests: usize) -> (String, u64) {
    let base = SystemConfig::new();
    let req = serve_request(w);
    let line = req.to_json();

    let cold_start = Instant::now();
    let reference = respond_fresh(&base, &req);
    assert!(reference.contains("\"ok\":true"), "{reference}");
    let mut identical = true;
    for _ in 1..requests {
        let again = respond_fresh(&base, &req);
        identical &= result_field(&again) == result_field(&reference);
    }
    let cold_nanos = cold_start.elapsed().as_nanos() as u64;

    let store = ArtifactStore::new(
        base,
        &StoreOptions {
            shards: 1,
            ..StoreOptions::default()
        },
    )
    .expect("store");
    let warm_start = Instant::now();
    for _ in 0..requests {
        let (response, _) = handle_line(&store, &line);
        assert!(response.contains("\"ok\":true"), "{response}");
        identical &= result_field(&response) == result_field(&reference);
    }
    let warm_nanos = warm_start.elapsed().as_nanos() as u64;

    let stats = store.stats();
    let speedup = cold_nanos as f64 / warm_nanos.max(1) as f64;
    println!(
        "{:<8} {:>4} {:>12.1} {:>12.1} {:>8.2}x {:>9.2} {:>10}",
        w.name,
        requests,
        cold_nanos as f64 / 1e6,
        warm_nanos as f64 / 1e6,
        speedup,
        stats.hit_rate(),
        identical
    );
    (
        format!(
            concat!(
                "{{\"app\":\"{}\",\"requests\":{},\"cold_nanos\":{},",
                "\"warm_nanos\":{},\"speedup\":{:.4},\"hit_rate\":{:.4},",
                "\"p50_nanos\":{},\"p95_nanos\":{},\"p99_nanos\":{},",
                "\"identical\":{}}}"
            ),
            w.name,
            requests,
            cold_nanos,
            warm_nanos,
            speedup,
            stats.hit_rate(),
            stats.latency.p50_nanos,
            stats.latency.p95_nanos,
            stats.latency.p99_nanos,
            identical
        ),
        stats.bytes,
    )
}

/// Zipf-like reuse across all selected applications through one
/// budgeted store: rank `r` (by Table-1 order) receives requests in
/// proportion to `1/r`, interleaved round-robin — the head apps stay
/// hot, the tail contends for the budget. With more than one app the
/// budget is sized below the sum of the measured per-app footprints
/// (but above the largest single one), so the working set cannot fully
/// fit and the store must evict; repeats still answer warm from the
/// result memo, so the hit rate stays high while baselines churn.
fn measure_serve_zipf(selected: &[PaperWorkload], per_app_bytes: &[u64], total: usize) -> String {
    let n = selected.len();
    let h: f64 = (1..=n).map(|r| 1.0 / r as f64).sum();
    let counts: Vec<usize> = (1..=n)
        .map(|r| ((total as f64 / (r as f64 * h)).round() as usize).max(1))
        .collect();
    let rounds = counts.iter().copied().max().unwrap_or(0);
    let mut schedule: Vec<usize> = Vec::new();
    for round in 0..rounds {
        for (i, &count) in counts.iter().enumerate() {
            if round < count {
                schedule.push(i);
            }
        }
    }
    let lines: Vec<String> = selected
        .iter()
        .map(|w| serve_request(w).to_json())
        .collect();

    let largest = per_app_bytes.iter().copied().max().unwrap_or(0);
    let sum: u64 = per_app_bytes.iter().sum();
    let budget_bytes = if n > 1 {
        (sum * 7 / 10).max(largest * 5 / 4)
    } else {
        largest * 5 / 2
    };
    let store = ArtifactStore::new(
        SystemConfig::new(),
        &StoreOptions {
            shards: 2,
            budget_bytes,
            ..StoreOptions::default()
        },
    )
    .expect("store");

    let start = Instant::now();
    for &i in &schedule {
        let (response, _) = handle_line(&store, &lines[i]);
        assert!(response.contains("\"ok\":true"), "{response}");
    }
    let nanos = start.elapsed().as_nanos() as u64;

    let stats = store.stats();
    assert!(
        stats.bytes <= budget_bytes,
        "accounted {} exceeds the budget {}",
        stats.bytes,
        budget_bytes
    );
    let throughput_rps = schedule.len() as f64 / (nanos as f64 / 1e9).max(1e-9);
    println!(
        "\nzipf: {} requests over {} app(s), budget {:.1} MiB: \
         {:.2} req/s, hit rate {:.2}, {} eviction(s), {} declined",
        schedule.len(),
        n,
        budget_bytes as f64 / (1 << 20) as f64,
        throughput_rps,
        stats.hit_rate(),
        stats.evictions,
        stats.declined
    );
    format!(
        concat!(
            "{{\"requests\":{},\"apps\":{},\"budget_bytes\":{},",
            "\"warm_nanos\":{},\"throughput_rps\":{:.4},\"hit_rate\":{:.4},",
            "\"evictions\":{},\"declined\":{},",
            "\"p50_nanos\":{},\"p95_nanos\":{},\"p99_nanos\":{}}}"
        ),
        schedule.len(),
        n,
        budget_bytes,
        nanos,
        throughput_rps,
        stats.hit_rate(),
        stats.evictions,
        stats.declined,
        stats.latency.p50_nanos,
        stats.latency.p95_nanos,
        stats.latency.p99_nanos
    )
}

/// A line-oriented TCP client against a spawned in-process [`Server`].
struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    fn connect(addr: std::net::SocketAddr) -> ServeClient {
        let stream = TcpStream::connect(addr).expect("connect to spawned server");
        stream.set_nodelay(true).expect("nodelay");
        ServeClient {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .expect("send request");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "daemon closed the connection");
        line.trim_end().to_owned()
    }

    fn ask(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

/// The warm request mix over `apps`: partition, explore, and verify
/// per app — the same shape the serve-smoke load driver fires.
fn serve_mix(apps: &[PaperWorkload]) -> Vec<ComputeRequest> {
    let mut reqs = Vec::new();
    for w in apps {
        let partition = serve_request(w);
        let mut explore = partition.clone();
        explore.kind = ComputeKind::Explore;
        explore.weights = Some(vec![0.0, 1.0]);
        let mut verify = partition.clone();
        verify.kind = ComputeKind::Verify;
        verify.clusters = vec![0];
        reqs.push(partition);
        reqs.push(explore);
        reqs.push(verify);
    }
    reqs
}

/// Pipelined-vs-serial serving over a real socket: one connection to a
/// spawned daemon, the warm mix sent one-at-a-time (a write/read
/// round-trip per request) versus the same stream with every request
/// in flight at once. Responses are pinned byte-identical between the
/// two passes (ids aside, compared on the `result` field).
fn measure_serve_pipelined(apps: &[PaperWorkload], repeats: usize) -> String {
    let opts = ServeOptions {
        port: 0,
        shards: 2,
        threads: 1,
        ..ServeOptions::default()
    };
    let server = Server::spawn(SystemConfig::new(), &opts).expect("spawn server");
    let mut client = ServeClient::connect(server.addr());

    let mix = serve_mix(apps);
    let mut id = 0u64;
    // Warm the store once so both timed passes run the memoized path.
    for req in &mix {
        let mut req = req.clone();
        id += 1;
        req.id = Some(id);
        let response = client.ask(&req.to_json());
        assert!(response.contains("\"ok\":true"), "{response}");
    }

    let mut stream: Vec<ComputeRequest> = Vec::with_capacity(mix.len() * repeats);
    for _ in 0..repeats {
        stream.extend(mix.iter().cloned());
    }

    let serial_start = Instant::now();
    let mut serial_results: Vec<String> = Vec::with_capacity(stream.len());
    for req in &stream {
        let mut req = req.clone();
        id += 1;
        req.id = Some(id);
        let response = client.ask(&req.to_json());
        serial_results.push(result_field(&response).expect("result field").to_owned());
    }
    let serial_nanos = serial_start.elapsed().as_nanos() as u64;

    let pipelined_start = Instant::now();
    let mut burst = String::new();
    for req in &stream {
        let mut req = req.clone();
        id += 1;
        req.id = Some(id);
        burst.push_str(&req.to_json());
        burst.push('\n');
    }
    client
        .writer
        .write_all(burst.as_bytes())
        .and_then(|()| client.writer.flush())
        .expect("send burst");
    let mut identical = true;
    for serial in &serial_results {
        let response = client.recv();
        identical &= result_field(&response) == Some(serial.as_str());
    }
    let pipelined_nanos = pipelined_start.elapsed().as_nanos() as u64;

    id += 1;
    let shutdown = client.ask(&format!("{{\"id\":{id},\"cmd\":\"shutdown\"}}"));
    assert!(shutdown.contains("\"ok\":true"), "{shutdown}");
    server.join();

    let speedup = serial_nanos as f64 / pipelined_nanos.max(1) as f64;
    println!(
        "\npipelined: {} warm requests on one connection: serial {:.1} ms, \
         pipelined {:.1} ms ({speedup:.2}x), identical {identical}",
        stream.len(),
        serial_nanos as f64 / 1e6,
        pipelined_nanos as f64 / 1e6,
    );
    assert!(
        identical,
        "pipelined responses must be byte-identical to serial serving"
    );
    format!(
        concat!(
            "{{\"requests\":{},\"serial_nanos\":{},\"pipelined_nanos\":{},",
            "\"speedup\":{:.4},\"identical\":{}}}"
        ),
        stream.len(),
        serial_nanos,
        pipelined_nanos,
        speedup,
        identical
    )
}

/// The comparable span of a serve response: the raw `result` for
/// successes (request stats legitimately differ between cold and
/// memo-warmed answers), the whole line for typed errors — some chain
/// clusters cannot be scheduled in hardware at all (e.g. a resource
/// set with no divider), and those error lines must also survive
/// coalescing byte-for-byte.
fn comparable(response: &str) -> &str {
    result_field(response).unwrap_or(response)
}

/// Cross-request batch coalescing: a same-fingerprint verify storm
/// (cluster ids cycling the app's chain) fired all-at-once against a
/// cold daemon, versus the same storm one-at-a-time against another
/// cold daemon. The coalesced run answers from lanes of one
/// `replay_batch` call; the responses stay byte-identical.
fn measure_serve_coalescing(w: &PaperWorkload, storm: usize) -> String {
    let workload = Workload::from_arrays(w.arrays(SEED));
    let app = w.app().expect("bundled workload lowers");
    let engine = Engine::new(SystemConfig::new()).expect("engine");
    let chain_len = engine
        .session(&app, &workload)
        .prepared()
        .expect("prepare")
        .chain
        .len();

    let requests: Vec<ComputeRequest> = (0..storm)
        .map(|k| {
            let mut req = serve_request(w);
            req.kind = ComputeKind::Verify;
            req.clusters = vec![(k % chain_len) as u32];
            req.id = Some(k as u64 + 1);
            req
        })
        .collect();

    let spawn = || {
        let opts = ServeOptions {
            port: 0,
            shards: 1,
            threads: 1,
            ..ServeOptions::default()
        };
        Server::spawn(SystemConfig::new(), &opts).expect("spawn server")
    };

    // Serial reference: one round-trip per request, cold store.
    let serial_server = spawn();
    let mut client = ServeClient::connect(serial_server.addr());
    let serial_start = Instant::now();
    let mut serial_results: Vec<String> = Vec::with_capacity(storm);
    for req in &requests {
        let response = client.ask(&req.to_json());
        serial_results.push(comparable(&response).to_owned());
    }
    let serial_nanos = serial_start.elapsed().as_nanos() as u64;
    client.ask("{\"cmd\":\"shutdown\"}");
    serial_server.join();

    // Coalesced: the whole storm in flight before the cold first
    // request finishes, so the shard worker drains and batch-verifies.
    let coalesced_server = spawn();
    let mut client = ServeClient::connect(coalesced_server.addr());
    let coalesced_start = Instant::now();
    let mut burst = String::new();
    for req in &requests {
        burst.push_str(&req.to_json());
        burst.push('\n');
    }
    client
        .writer
        .write_all(burst.as_bytes())
        .and_then(|()| client.writer.flush())
        .expect("send storm");
    let mut identical = true;
    for serial in &serial_results {
        let response = client.recv();
        identical &= comparable(&response) == serial.as_str();
    }
    let coalesced_nanos = coalesced_start.elapsed().as_nanos() as u64;

    let stats = client.ask("{\"id\":99,\"cmd\":\"stats\"}");
    let parsed = parse_json(&stats).expect("stats parse");
    let bucket = |k: &str| {
        parsed
            .get("result")
            .and_then(|r| r.get("pipeline"))
            .and_then(|p| p.get("coalesced"))
            .and_then(|c| c.get(k))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
    };
    let (k2_4, k5_16) = (bucket("k2_4"), bucket("k5_16"));
    client.ask("{\"cmd\":\"shutdown\"}");
    coalesced_server.join();

    let speedup = serial_nanos as f64 / coalesced_nanos.max(1) as f64;
    println!(
        "coalescing: {storm}-request verify storm on `{}` ({} cluster(s)): serial {:.1} ms, \
         coalesced {:.1} ms ({speedup:.2}x), batches k2_4 {k2_4} / k5_16 {k5_16}, \
         identical {identical}",
        w.name,
        chain_len,
        serial_nanos as f64 / 1e6,
        coalesced_nanos as f64 / 1e6,
    );
    assert!(
        identical,
        "coalesced verify responses must be byte-identical to serial serving"
    );
    assert!(
        k2_4 + k5_16 > 0,
        "the verify storm must coalesce at least one multi-request batch"
    );
    format!(
        concat!(
            "{{\"app\":\"{}\",\"storm\":{},\"serial_nanos\":{},",
            "\"coalesced_nanos\":{},\"speedup\":{:.4},",
            "\"coalesced_k2_4\":{},\"coalesced_k5_16\":{},\"identical\":{}}}"
        ),
        w.name, storm, serial_nanos, coalesced_nanos, speedup, k2_4, k5_16, identical
    )
}

fn main() {
    let filter = std::env::args().nth(1);
    let selected: Vec<PaperWorkload> = match filter.as_deref() {
        Some(name) => match by_name(name) {
            Some(w) => vec![w],
            None => {
                eprintln!(
                    "unknown workload {name:?}; expected one of: 3d MPG ckey digs engine trick"
                );
                std::process::exit(2);
            }
        },
        None => all(),
    };

    println!("A5: energy-driven (ours) vs performance-driven (related work)\n");
    println!(
        "{:<8} {:<7} {:>10} {:>10} {:>12}",
        "app", "method", "saving%", "chg%", "HW cells"
    );
    struct Prepared {
        w: PaperWorkload,
        ours: PartitionOutcome,
    }
    let mut runs: Vec<(Prepared, SystemConfig)> = Vec::new();
    for w in selected {
        let config = SystemConfig::new();
        let app = w.app().expect("bundled workload lowers");
        let workload = Workload::from_arrays(w.arrays(SEED));
        let engine = Engine::new(config.clone()).expect("engine");
        let session = engine.session(&app, &workload);
        let partitioner = Partitioner::new(&session).expect("initial run");

        let ours = partitioner.run().expect("our search");
        let perf = performance_partition(&partitioner, session.config(), GateEq::new(20_000))
            .expect("perf baseline");

        for (method, outcome) in [("energy", &ours), ("perf", &perf)] {
            match &outcome.best {
                Some((_, detail)) => println!(
                    "{:<8} {:<7} {:>10.1} {:>10.1} {:>12}",
                    w.name,
                    method,
                    outcome.energy_saving_percent().unwrap_or(0.0),
                    outcome.time_change_percent().unwrap_or(0.0),
                    detail.metrics.geq.cells()
                ),
                None => println!(
                    "{:<8} {:<7} {:>10} {:>10} {:>12}",
                    w.name, method, "--", "--", "--"
                ),
            }
        }
        println!();
        runs.push((Prepared { w, ours }, config));
    }
    println!(
        "Expected shape: the perf method matches or beats on cycles but\n\
         loses on energy wherever the fastest cluster is not the most\n\
         energy-efficient one (and it has no notion of cache/memory energy)."
    );

    // Replay-vs-direct verification timing on every selected
    // application's chosen partition.
    println!("\nverification: trace replay vs direct simulation\n");
    println!(
        "{:<8} {:>12} {:>12} {:>9} {:>10}",
        "app", "direct ms", "replay ms", "speedup", "identical"
    );
    let mut outcome_rows: Vec<String> = Vec::new();
    for (run, config) in &runs {
        // A fresh engine (cheap next to the searches above) so the
        // verify measurement owns a partitioner with a fresh replay
        // engine.
        let app = run.w.app().expect("bundled workload lowers");
        let workload = Workload::from_arrays(run.w.arrays(SEED));
        let factory = Engine::new(config.clone()).expect("engine");
        let session = factory.session(&app, &workload);
        let prepared = session.prepared().expect("bundled workload prepares");
        let partitioner = Partitioner::new(&session).expect("initial run");
        let verify = measure_verify(prepared, config, &partitioner, &run.ours, run.w.name);
        let oj = outcome_to_json(run.w.name, &run.ours);
        outcome_rows.push(match verify {
            // Splice the verify object into the outcome record.
            Some(v) => format!("{},{}}}", &oj[..oj.len() - 1], v),
            None => oj,
        });
    }

    // Batched replay kernel: per-candidate verify cost at K candidates
    // per decoded-trace walk versus K one-candidate replays.
    println!("\nbatched replay: K candidates per trace walk vs K sequential replays\n");
    println!(
        "{:<8} {:>4} {:>3} {:>14} {:>14} {:>9} {:>10}",
        "app", "K", "T", "seq ms/cand", "batch ms/cand", "speedup", "identical"
    );
    let mut batch_rows: Vec<String> = Vec::new();
    for (run, config) in &runs {
        let app = run.w.app().expect("bundled workload lowers");
        let workload = Workload::from_arrays(run.w.arrays(SEED));
        let factory = Engine::new(config.clone()).expect("engine");
        let session = factory.session(&app, &workload);
        let prepared = session.prepared().expect("bundled workload prepares");
        let partitioner = Partitioner::new(&session).expect("initial run");
        if let Some(rows) = measure_batch(prepared, config, &partitioner, run.w.name) {
            batch_rows.extend(rows);
        }
    }

    // Engine perf baseline: 8-point hardware-weight sweep, seed's
    // sequential path vs the shared, parallel engine.
    let weights = [0.0, 0.1, 0.2, 0.5, 1.0, 2.0, 4.0, 16.0];
    let threads = resolve_threads(0);
    println!(
        "\nsweep timing ({} points, {} threads):\n",
        weights.len(),
        threads
    );
    println!(
        "{:<8} {:>12} {:>12} {:>9} {:>10}",
        "app", "seq ms", "engine ms", "speedup", "identical"
    );
    let sweep_apps: Vec<&'static str> = match filter.as_deref() {
        Some(name) => vec![by_name(name).expect("validated above").name],
        None => all().iter().map(|w| w.name).collect(),
    };
    let mut sweep_rows: Vec<String> = Vec::new();
    for &name in &sweep_apps {
        let w = by_name(name).expect("paper workload exists");
        let seq_configs = hardware_weight_sweep(&weights, &SystemConfig::new().with_threads(1));

        let seq_start = Instant::now();
        let seq_points = sequential_sweep(&w, &seq_configs);
        let seq_nanos = seq_start.elapsed().as_nanos();

        let app = w.app().expect("bundled workload lowers");
        let workload = Workload::from_arrays(w.arrays(SEED));
        let par_configs = hardware_weight_sweep(&weights, &SystemConfig::new());
        let par_start = Instant::now();
        let exploration = explore(&app, &workload, &par_configs).expect("sweep runs");
        let par_nanos = par_start.elapsed().as_nanos();

        let identical = seq_points == exploration.points;
        let speedup = seq_nanos as f64 / par_nanos.max(1) as f64;
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>8.2}x {:>10}",
            name,
            seq_nanos as f64 / 1e6,
            par_nanos as f64 / 1e6,
            speedup,
            identical
        );
        sweep_rows.push(format!(
            concat!(
                "{{\"app\":\"{}\",\"points\":{},\"threads\":{},",
                "\"seq_nanos\":{},\"par_nanos\":{},\"speedup\":{:.4},",
                "\"identical\":{}}}"
            ),
            name,
            weights.len(),
            threads,
            seq_nanos,
            par_nanos,
            speedup,
            identical
        ));
        assert!(
            identical,
            "parallel sweep must reproduce the sequential points bit-for-bit"
        );
    }

    // Operating-point axis: one simulated 8-point sweep re-weighed to
    // every (node × vdd) point of the default scaling table, versus a
    // from-scratch search at one scaled point. The per-point marginal
    // cost is pure arithmetic — the section pins both the speed claim
    // and the bit-exactness of the re-weighting.
    const VDD_STEPS: usize = 8;
    println!("\nnodes: node x vdd re-weighting of one simulated sweep\n");
    println!(
        "{:<8} {:>7} {:>10} {:>11} {:>11} {:>10} {:>9} {:>10}",
        "app", "points", "base ms", "avg rw ns", "max rw ns", "fresh ms", "marginal", "identical"
    );
    let mut node_rows: Vec<String> = Vec::new();
    for &name in &sweep_apps {
        let w = by_name(name).expect("paper workload exists");
        let app = w.app().expect("bundled workload lowers");
        let workload = Workload::from_arrays(w.arrays(SEED));
        let base_config = SystemConfig::new();
        let configs = hardware_weight_sweep(&weights, &base_config);

        let base_start = Instant::now();
        let base = explore(&app, &workload, &configs).expect("base sweep runs");
        let base_nanos = base_start.elapsed().as_nanos();

        // Every point of the table: each node at VDD_STEPS supplies
        // descending from nominal to the sweep floor.
        let mut points: Vec<ResolvedPoint> = Vec::new();
        for node in base_config.scaling.nodes() {
            let row = base_config.scaling.row(node).expect("listed node");
            for vdd in row.vdd_sweep(&base_config.process, VDD_STEPS) {
                let rp = base_config
                    .clone()
                    .with_operating_point(OperatingPoint { node_nm: node, vdd })
                    .resolved_point()
                    .expect("table point is valid")
                    .expect("point is set");
                points.push(rp);
            }
        }

        // Marginal cost per point: re-weigh every base design point.
        let mut total_rw: u128 = 0;
        let mut max_rw: u128 = 0;
        let mut reweighed: Vec<Vec<(u64, u64, u64)>> = Vec::with_capacity(points.len());
        for rp in &points {
            let rw_start = Instant::now();
            let tuples: Vec<(u64, u64, u64)> = base
                .points
                .iter()
                .map(|p| {
                    let wm = rp.weigh_raw(p.energy, p.cycles, p.geq);
                    (
                        wm.energy.joules().to_bits(),
                        wm.time.secs().to_bits(),
                        wm.area_cells.to_bits(),
                    )
                })
                .collect();
            let nanos = rw_start.elapsed().as_nanos();
            total_rw += nanos;
            max_rw = max_rw.max(nanos);
            reweighed.push(tuples);
        }
        let avg_rw = total_rw / points.len() as u128;

        // From-scratch reference: a full search at the 180 nm nominal
        // point (first supply of its sweep) must reproduce the
        // memoized re-weighting bit for bit.
        let fresh_index = points
            .iter()
            .position(|rp| rp.point.node_nm == 180)
            .expect("180nm is in the default table");
        let fresh_rp = points[fresh_index];
        let fresh_start = Instant::now();
        let fresh_config = configs[0].1.clone().with_operating_point(fresh_rp.point);
        let engine = Engine::new(fresh_config).expect("engine");
        let session = engine.session(&app, &workload);
        let outcome = Partitioner::new(&session)
            .expect("initial run")
            .run()
            .expect("search");
        let fresh_nanos = fresh_start.elapsed().as_nanos();
        // Mirror the sweep's point assembly for the first weight.
        let (energy, cycles, geq) = match &outcome.best {
            Some((_, detail)) => (
                detail.metrics.total_energy(),
                detail.metrics.total_cycles(),
                detail.metrics.geq,
            ),
            None => (
                outcome.initial.total_energy(),
                outcome.initial.total_cycles(),
                GateEq::ZERO,
            ),
        };
        let wm = fresh_rp.weigh_raw(energy, cycles, geq);
        let fresh_tuple = (
            wm.energy.joules().to_bits(),
            wm.time.secs().to_bits(),
            wm.area_cells.to_bits(),
        );
        // base.points[0] is the initial design; [1] is configs[0].
        let identical = reweighed[fresh_index][1] == fresh_tuple;
        let marginal_ratio = avg_rw as f64 / fresh_nanos.max(1) as f64;
        println!(
            "{:<8} {:>7} {:>10.1} {:>11} {:>11} {:>10.1} {:>9.6} {:>10}",
            name,
            points.len(),
            base_nanos as f64 / 1e6,
            avg_rw,
            max_rw,
            fresh_nanos as f64 / 1e6,
            marginal_ratio,
            identical
        );
        node_rows.push(format!(
            concat!(
                "{{\"app\":\"{}\",\"points\":{},\"base_nanos\":{},",
                "\"avg_reweight_nanos\":{},\"max_reweight_nanos\":{},",
                "\"fresh_nanos\":{},\"marginal_ratio\":{:.9},\"identical\":{}}}"
            ),
            name,
            points.len(),
            base_nanos,
            avg_rw,
            max_rw,
            fresh_nanos,
            marginal_ratio,
            identical
        ));
        assert!(
            identical,
            "re-weighted operating point must match the from-scratch flow bit-for-bit"
        );
    }

    // Serve daemon: a warm artifact store versus the cold per-request
    // engines every client paid before it, then Zipf-like fingerprint
    // reuse through a byte-budgeted store.
    const SERVE_REQUESTS: usize = 24;
    println!("\nserve: warm store vs per-request engines ({SERVE_REQUESTS} requests/app)\n");
    println!(
        "{:<8} {:>4} {:>12} {:>12} {:>9} {:>9} {:>10}",
        "app", "N", "cold ms", "warm ms", "speedup", "hit rate", "identical"
    );
    let serve_apps: Vec<PaperWorkload> = match filter.as_deref() {
        Some(name) => vec![by_name(name).expect("validated above")],
        None => all(),
    };
    let mut serve_rows: Vec<String> = Vec::new();
    let mut footprints: Vec<u64> = Vec::new();
    for w in &serve_apps {
        let (row, bytes) = measure_serve_app(w, SERVE_REQUESTS);
        serve_rows.push(row);
        footprints.push(bytes);
    }
    let zipf_row = measure_serve_zipf(&serve_apps, &footprints, 24);
    let pipelined_row = measure_serve_pipelined(&serve_apps, 8);
    let coalesced_row = measure_serve_coalescing(&serve_apps[0], 16);

    // Corpus factory: generated-workload throughput through the
    // sharded, resumable runner, plus a back-to-back determinism
    // re-run (same seed, fresh journal → byte-identical results file).
    const CORPUS_APPS: u64 = 24;
    println!("\ncorpus: generated-workload factory ({CORPUS_APPS} apps, seed {SEED})\n");
    println!(
        "{:>6} {:>6} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "apps", "chunk", "total ms", "apps/sec", "frontier", "buckets", "identical"
    );
    let corpus_row = {
        let scratch = |tag: &str| {
            std::env::temp_dir().join(format!(
                "corepart-bench-corpus-{}-{tag}",
                std::process::id()
            ))
        };
        let mut options = CorpusOptions::new(SystemConfig::new());
        options.chunk = 8;
        let (out_a, journal_a) = (scratch("a.tsv"), scratch("a.journal"));
        let start = Instant::now();
        let outcome = run_gen_corpus(
            SEED,
            CORPUS_APPS,
            options.clone(),
            &journal_a,
            &out_a,
            false,
        )
        .expect("corpus runs");
        let corpus_nanos = start.elapsed().as_nanos();

        let (out_b, journal_b) = (scratch("b.tsv"), scratch("b.journal"));
        run_gen_corpus(
            SEED,
            CORPUS_APPS,
            options.clone(),
            &journal_b,
            &out_b,
            false,
        )
        .expect("corpus re-runs");
        let identical =
            std::fs::read(&out_a).expect("results a") == std::fs::read(&out_b).expect("results b");
        for p in [&out_a, &journal_a, &out_b, &journal_b] {
            let _ = std::fs::remove_file(p);
        }

        let apps_per_sec = CORPUS_APPS as f64 / (corpus_nanos as f64 / 1e9);
        println!(
            "{:>6} {:>6} {:>10.1} {:>9.2} {:>9} {:>9} {:>10}",
            CORPUS_APPS,
            options.chunk,
            corpus_nanos as f64 / 1e6,
            apps_per_sec,
            outcome.frontier.len(),
            outcome.features.len(),
            identical
        );
        assert!(
            identical,
            "corpus results file must be byte-identical across reruns"
        );
        format!(
            concat!(
                "{{\"apps\":{},\"chunk\":{},\"threads\":{},\"total_nanos\":{},",
                "\"apps_per_sec\":{:.4},\"frontier_points\":{},",
                "\"feature_buckets\":{},\"identical\":{}}}"
            ),
            CORPUS_APPS,
            options.chunk,
            threads,
            corpus_nanos,
            apps_per_sec,
            outcome.frontier.len(),
            outcome.features.len(),
            identical
        )
    };

    let json = format!(
        concat!(
            "{{\"seed\":{},\"threads\":{},\"workloads\":[{}],\"batch\":[{}],",
            "\"sweep\":[{}],\"nodes\":[{}],\"serve\":{{\"per_app\":[{}],\"zipf\":{},",
            "\"pipelined\":{},\"coalesced\":{}}},",
            "\"corpus\":{}}}\n"
        ),
        SEED,
        threads,
        outcome_rows.join(","),
        batch_rows.join(","),
        sweep_rows.join(","),
        node_rows.join(","),
        serve_rows.join(","),
        zipf_row,
        pipelined_row,
        coalesced_row,
        corpus_row
    );
    let path = "BENCH_partition.json";
    std::fs::write(path, &json).expect("write BENCH_partition.json");
    println!("\nwrote {path}");
}
