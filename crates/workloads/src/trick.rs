//! `trick` — a trick-animation algorithm.
//!
//! Frame-sequential onion-skinning: every output sample is a recursive
//! blend of the previous output sample, the current source sample and a
//! decaying motion state. The recurrences (`state`, `dst[i-1]`)
//! serialize the computation completely, and three shared-memory
//! accesses per sample dominate — on the ASIC core this executes
//! slower than on the cache-assisted µP (the memory port's uncached
//! 4-cycle accesses cannot be overlapped), yet burns far less energy.
//! This is the paper's one row where the partition *costs* execution
//! time (+69.6 %) while still saving ~95 % energy.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Animation frames.
pub const FRAMES: usize = 24;
/// Samples per frame.
pub const SAMPLES: usize = 480;

/// The behavioral source.
pub const SOURCE: &str = r#"
app trick;

const FRAMES = 24;
const SAMPLES = 480;

var src[480];
var dst[480];
var trail[64];
var ghost[24];

func main() {
    var state = 7;
    for (var f = 0; f < FRAMES; f = f + 1) {
        // Serial onion-skin blend with a state-indexed ghost trail:
        // every sample makes six shared-memory accesses, two of them
        // address-dependent on the running state — no instruction-level
        // parallelism to hide the ASIC's uncached memory latency behind.
        for (var i = 1; i < SAMPLES; i = i + 1) {
            state = (state + src[i]) >> 1;
            var t = trail[state & 63];
            dst[i] = (dst[i - 1] + dst[i] + t + state) >> 1;
            trail[state & 63] = (t + dst[i]) >> 1;
        }
        ghost[f] = dst[SAMPLES - 1];
        state = state + f;
    }
    return state;
}
"#;

/// Deterministic source samples.
pub fn arrays(seed: u64) -> Vec<(String, Vec<i64>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let src: Vec<i64> = (0..SAMPLES).map(|_| rng.gen_range(0..256)).collect();
    vec![("src".to_owned(), src)]
}
