//! # corepart-workloads
//!
//! The six DSP-oriented applications of the paper's evaluation (§4),
//! reconstructed as behavioral-DSL programs with deterministic input
//! generators:
//!
//! | name     | paper description                              |
//! |----------|------------------------------------------------|
//! | `3d`     | 3-D vectors of a motion picture                |
//! | `MPG`    | MPEG-II encoder                                |
//! | `ckey`   | complex chroma-key algorithm                   |
//! | `digs`   | smoothing algorithm for digital images         |
//! | `engine` | engine control algorithm                       |
//! | `trick`  | trick animation algorithm                      |
//!
//! The original C sources (5–230 kB) are proprietary; these kernels
//! recreate each application's *computational signature* — the loop
//! structure, operation mix and memory behaviour that drive the paper's
//! Table 1 — at sizes that simulate in seconds (see DESIGN.md for the
//! substitution rationale).
//!
//! ```
//! use corepart_workloads::{all, by_name};
//!
//! assert_eq!(all().len(), 6);
//! let mpg = by_name("MPG").expect("MPG exists");
//! let app = mpg.app()?;
//! assert_eq!(app.name(), "mpg");
//! # Ok::<(), corepart_ir::error::IrError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ckey;
pub mod digs;
pub mod engine;
pub mod kernels;
pub mod mpg;
pub mod threed;
pub mod trick;

use corepart_ir::cdfg::Application;
use corepart_ir::error::IrError;
use corepart_ir::lower::lower;
use corepart_ir::parser::parse;

/// One of the paper's evaluation applications.
#[derive(Debug, Clone, Copy)]
pub struct PaperWorkload {
    /// The paper's name for the application (Table 1 row label).
    pub name: &'static str,
    /// Behavioral-DSL source text.
    pub source: &'static str,
    arrays_fn: fn(u64) -> Vec<(String, Vec<i64>)>,
}

impl PaperWorkload {
    /// Parses and lowers the application.
    ///
    /// # Errors
    ///
    /// Never fails for the bundled sources; the `Result` guards against
    /// local modifications.
    pub fn app(&self) -> Result<Application, IrError> {
        lower(&parse(self.source)?)
    }

    /// Deterministic input arrays for `seed`.
    pub fn arrays(&self, seed: u64) -> Vec<(String, Vec<i64>)> {
        (self.arrays_fn)(seed)
    }
}

/// All six applications, in the paper's Table-1 order.
pub fn all() -> Vec<PaperWorkload> {
    vec![
        PaperWorkload {
            name: "3d",
            source: threed::SOURCE,
            arrays_fn: threed::arrays,
        },
        PaperWorkload {
            name: "MPG",
            source: mpg::SOURCE,
            arrays_fn: mpg::arrays,
        },
        PaperWorkload {
            name: "ckey",
            source: ckey::SOURCE,
            arrays_fn: ckey::arrays,
        },
        PaperWorkload {
            name: "digs",
            source: digs::SOURCE,
            arrays_fn: digs::arrays,
        },
        PaperWorkload {
            name: "engine",
            source: engine::SOURCE,
            arrays_fn: engine::arrays,
        },
        PaperWorkload {
            name: "trick",
            source: trick::SOURCE,
            arrays_fn: trick::arrays,
        },
    ]
}

/// Looks an application up by its Table-1 name (case-insensitive).
pub fn by_name(name: &str) -> Option<PaperWorkload> {
    all()
        .into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use corepart_ir::interp::Interpreter;

    #[test]
    fn all_six_parse_lower_and_run() {
        for w in all() {
            let app = w.app().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let mut interp = Interpreter::new(&app);
            for (name, data) in w.arrays(1) {
                interp
                    .set_array(&name, &data)
                    .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            }
            let profile = interp
                .run(200_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(
                profile.steps > 1_000,
                "{} too small: {}",
                w.name,
                profile.steps
            );
            assert!(profile.return_value.is_some(), "{}", w.name);
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("mpg").is_some());
        assert!(by_name("MPG").is_some());
        assert!(by_name("nope").is_none());
        assert_eq!(by_name("3d").unwrap().name, "3d");
    }

    #[test]
    fn inputs_deterministic_per_seed() {
        for w in all() {
            assert_eq!(w.arrays(7), w.arrays(7), "{}", w.name);
        }
    }

    #[test]
    fn every_app_has_a_hot_loop_cluster() {
        use corepart_ir::cluster::decompose;
        for w in all() {
            let app = w.app().unwrap();
            let chain = decompose(&app);
            assert!(
                chain.iter().any(|c| c.is_loop()),
                "{} has no loop cluster",
                w.name
            );
        }
    }

    #[test]
    fn mpg_finds_the_planted_motion_vector() {
        let w = by_name("MPG").unwrap();
        let app = w.app().unwrap();
        let mut interp = Interpreter::new(&app);
        for (name, data) in w.arrays(1) {
            interp.set_array(&name, &data).unwrap();
        }
        interp.run(200_000_000).unwrap();
        let mv = interp.array("mv").unwrap();
        assert_eq!((mv[1], mv[2]), (3, 2), "motion vector should be (3,2)");
    }

    #[test]
    fn digs_preserves_edges() {
        let w = by_name("digs").unwrap();
        let app = w.app().unwrap();
        let mut interp = Interpreter::new(&app);
        for (name, data) in w.arrays(1) {
            interp.set_array(&name, &data).unwrap();
        }
        let p = interp.run(200_000_000).unwrap();
        // Some pixels were reverted (the noise is strong enough).
        assert!(p.return_value.unwrap() > 0);
    }

    #[test]
    fn trick_is_serial_and_memory_bound() {
        // Sanity: the trick kernel's loop body is dominated by memory
        // accesses (the property that makes its ASIC mapping slow).
        let w = by_name("trick").unwrap();
        let app = w.app().unwrap();
        let mut interp = Interpreter::new(&app);
        for (name, data) in w.arrays(1) {
            interp.set_array(&name, &data).unwrap();
        }
        let p = interp.run(200_000_000).unwrap();
        let mem_ops = p.loads + p.stores;
        assert!(
            mem_ops * 3 > p.steps / 2,
            "expected memory-bound kernel: {mem_ops} mem ops vs {} steps",
            p.steps
        );
    }
}
