//! Design-space exploration: sweep the objective-function balance and
//! the candidate resource sets for one application, mapping the
//! energy-vs-hardware frontier a designer would examine before
//! committing to a core.
//!
//! ```text
//! cargo run --release -p corepart --example design_space_exploration
//! ```

use corepart::engine::Engine;
use corepart::error::CorepartError;
use corepart::explore::{explore, hardware_weight_sweep};
use corepart::partition::Partitioner;
use corepart::prepare::Workload;
use corepart::system::SystemConfig;
use corepart::tech::resource::{ResourceKind, ResourceSet};
use corepart_ir::lower::lower;
use corepart_ir::parser::parse;

/// A 2-D correlator: rich design space (multipliers vs adders vs
/// memory ports all matter).
const SOURCE: &str = r#"
app correlator;

const N = 48;
const TAPS = 8;

var signal[48];
var pattern[8];
var corr[48];

func main() {
    for (var i = 0; i < N - TAPS; i = i + 1) {
        var acc = 0;
        for (var t = 0; t < TAPS; t = t + 1) {
            acc = acc + signal[i + t] * pattern[t];
        }
        corr[i] = acc >> 4;
    }
    var best = 0;
    var best_i = 0;
    for (var j = 0; j < N - TAPS; j = j + 1) {
        if (corr[j] > best) {
            best = corr[j];
            best_i = j;
        }
    }
    return best_i;
}
"#;

fn main() -> Result<(), CorepartError> {
    let signal: Vec<i64> = (0..48).map(|i| ((i * 13) % 29) - 14).collect();
    let pattern: Vec<i64> = vec![1, 3, 7, 11, 11, 7, 3, 1];
    let workload = Workload::from_arrays([("signal", signal), ("pattern", pattern)]);

    let app = lower(&parse(SOURCE)?)?;

    // Axis 1: hardware-cost pressure (objective-function balance).
    // `explore` shares one preparation, one baseline simulation and
    // one schedule cache across the whole sweep — the points are the
    // same as re-running from scratch per weight, only faster.
    println!("=== hardware-weight sweep (default resource-set family) ===");
    println!(
        "{:>24} {:>10} {:>12} {:>10}",
        "point", "saving%", "cycles", "cells"
    );
    let configs = hardware_weight_sweep(&[0.0, 0.2, 1.0, 4.0, 16.0], &SystemConfig::new());
    let exploration = explore(&app, &workload, &configs)?;
    for p in &exploration.points {
        println!(
            "{:>24} {:>10.1} {:>12} {:>10}",
            p.label,
            p.saving_percent,
            p.cycles.to_string(),
            p.geq.cells(),
        );
    }

    // Axis 2: datapath width (forcing one specific set at a time).
    // Preparation and the baseline simulation only depend on knobs the
    // resource sets don't touch, so one engine serves every
    // datapath-width configuration from its shared pools.
    let engine = Engine::new(SystemConfig::new())?;
    println!("\n=== datapath-width sweep (G = 0.2) ===");
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>8}",
        "set", "saving%", "chg%", "cells", "U_R"
    );
    for (name, muls, alus, ports) in [
        ("1mul-1alu", 1u32, 1u32, 1u32),
        ("1mul-2alu", 1, 2, 1),
        ("2mul-2alu", 2, 2, 2),
        ("4mul-4alu", 4, 4, 2),
    ] {
        let set = ResourceSet::builder(name)
            .with(ResourceKind::Multiplier, muls)
            .with(ResourceKind::Alu, alus)
            .with(ResourceKind::Adder, 1)
            .with(ResourceKind::BarrelShifter, 1)
            .with(ResourceKind::MemPort, ports)
            .build();
        let config = SystemConfig::new().with_resource_sets(vec![set]);
        let session = engine.session_with_config(&app, &workload, config)?;
        let outcome = Partitioner::new(&session)?.run()?;
        match &outcome.best {
            Some((_, detail)) => println!(
                "{:>12} {:>10.1} {:>10.1} {:>10} {:>8.3}",
                name,
                outcome.energy_saving_percent().unwrap_or(0.0),
                outcome.time_change_percent().unwrap_or(0.0),
                detail.metrics.geq.cells(),
                detail.u_r,
            ),
            None => println!(
                "{:>12} {:>10} {:>10} {:>10} {:>8}",
                name, "--", "--", "--", "--"
            ),
        }
    }
    println!(
        "\nReading the frontier: wider datapaths shorten the ASIC schedule but\n\
         dilute utilization — past the knee the extra hardware only adds idle\n\
         switching energy, which is exactly the paper's premise (§3.1)."
    );
    Ok(())
}
