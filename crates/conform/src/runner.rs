//! The conformance runner: seeds → generated apps → oracle batteries →
//! shrunk failures.
//!
//! Each case derives its own seed from the run seed (a SplitMix64
//! step, so neighbouring cases are uncorrelated; case 0 uses the run
//! seed itself, so a reported case seed replays directly), generates
//! one application, runs the differential battery ([`crate::oracle`]) and
//! — on every `fault_every`-th case — the fault battery
//! ([`crate::fault`]). A violation triggers greedy structural
//! shrinking: the runner walks [`crate::gen::shrink_candidates`],
//! keeping any strictly smaller variant that still violates the *same*
//! oracle, until no candidate fails or the step budget runs out. The
//! survivor is what lands in the failure report.

use crate::gen::{self, GenApp};
use crate::{fault, oracle};

/// Runner configuration (mirrors the `conform` binary's flags).
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// The run seed; case `i` uses `mix(seed, i)`.
    pub seed: u64,
    /// How many cases to run.
    pub cases: u64,
    /// Run the fault battery on every n-th case (1 = every case,
    /// 0 = never).
    pub fault_every: u64,
    /// Budget of shrink-candidate evaluations per failure.
    pub max_shrink_steps: usize,
    /// Print per-case progress to stderr.
    pub verbose: bool,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            seed: 1,
            cases: 100,
            fault_every: 5,
            max_shrink_steps: 200,
            verbose: false,
        }
    }
}

/// One shrunk, reportable failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The 0-based case index within the run.
    pub case_index: u64,
    /// The derived per-case seed. `conform --seed <this> --cases 1`
    /// regenerates and re-checks exactly this application: case 0 of
    /// any run uses the run seed directly (see [`case_seed`]).
    pub case_seed: u64,
    /// The violated oracle's stable name.
    pub oracle: &'static str,
    /// The violation detail from the *original* (unshrunk) failure.
    pub detail: String,
    /// Whether the fault battery (not the differential battery) found
    /// it.
    pub fault_case: bool,
    /// Shrink-candidate evaluations spent.
    pub shrink_steps: usize,
    /// Structural size before shrinking.
    pub size_before: usize,
    /// Structural size of the reported reproducer.
    pub size_after: usize,
    /// BDL source of the shrunk reproducer.
    pub source: String,
}

/// The whole run's result.
#[derive(Debug, Clone)]
pub struct Summary {
    /// The run seed.
    pub seed: u64,
    /// Requested case count.
    pub cases: u64,
    /// Cases actually run (== `cases`; kept explicit for the report).
    pub cases_run: u64,
    /// Cases that also ran the fault battery.
    pub fault_cases: u64,
    /// All (shrunk) failures, in case order.
    pub failures: Vec<Failure>,
}

impl Summary {
    /// True when every case passed every oracle.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The seed case `index` of a run seeded with `seed` uses. Case 0 is
/// the run seed itself — that is what makes a reported
/// [`Failure::case_seed`] replayable as `--seed <case_seed> --cases 1`
/// — and later cases take uncorrelated SplitMix64 steps.
pub fn case_seed(seed: u64, index: u64) -> u64 {
    if index == 0 {
        seed
    } else {
        mix(seed, index)
    }
}

/// SplitMix64 — derives uncorrelated per-case seeds from the run seed.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs one case's batteries; returns the first violation, if any.
fn check_case(app: &GenApp, with_faults: bool) -> Option<oracle::Violation> {
    let mut violations = oracle::check_app(app);
    if violations.is_empty() && with_faults {
        violations = fault::check_app(app);
    }
    violations.into_iter().next()
}

/// True when `app` still violates `oracle_name` (in whichever battery
/// originally produced it).
fn still_fails(app: &GenApp, with_faults: bool, oracle_name: &str) -> bool {
    let mut violations = oracle::check_app(app);
    if with_faults {
        violations.extend(fault::check_app(app));
    }
    violations.iter().any(|v| v.oracle == oracle_name)
}

/// Greedy structural shrink: descend through
/// [`gen::shrink_candidates`] while `fails` holds, spending at most
/// `budget` predicate evaluations. Returns the smallest failing app
/// found and the steps spent. Only strictly smaller candidates are
/// tried, so the walk always terminates.
pub fn shrink_while(
    app: &GenApp,
    mut fails: impl FnMut(&GenApp) -> bool,
    budget: usize,
) -> (GenApp, usize) {
    let mut current = app.clone();
    let mut steps = 0;
    'outer: loop {
        for candidate in gen::shrink_candidates(&current) {
            if steps >= budget {
                break 'outer;
            }
            if gen::size(&candidate) >= gen::size(&current) {
                continue;
            }
            steps += 1;
            if fails(&candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        break;
    }
    (current, steps)
}

/// Runs the whole conformance sweep.
pub fn run(options: &RunnerOptions) -> Summary {
    let mut summary = Summary {
        seed: options.seed,
        cases: options.cases,
        cases_run: 0,
        fault_cases: 0,
        failures: Vec::new(),
    };
    for index in 0..options.cases {
        let case_seed = case_seed(options.seed, index);
        let with_faults = options.fault_every != 0 && index % options.fault_every == 0;
        if with_faults {
            summary.fault_cases += 1;
        }
        let app = gen::generate(case_seed);
        if options.verbose {
            eprintln!(
                "case {index}/{}: seed {case_seed} size {}{}",
                options.cases,
                gen::size(&app),
                if with_faults { " +faults" } else { "" }
            );
        }
        if let Some(violation) = check_case(&app, with_faults) {
            let size_before = gen::size(&app);
            let (shrunk, shrink_steps) = shrink_while(
                &app,
                |candidate| still_fails(candidate, with_faults, violation.oracle),
                options.max_shrink_steps,
            );
            summary.failures.push(Failure {
                case_index: index,
                case_seed,
                oracle: violation.oracle,
                detail: violation.detail,
                fault_case: with_faults,
                shrink_steps,
                size_before,
                size_after: gen::size(&shrunk),
                source: shrunk.source(),
            });
        }
        summary.cases_run += 1;
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_spreads_neighbouring_indices() {
        let a = mix(1, 0);
        let b = mix(1, 1);
        let c = mix(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And it is pure.
        assert_eq!(mix(1, 0), a);
    }

    #[test]
    fn reported_case_seeds_replay_directly() {
        // Case 0 of a run uses the run seed itself, so running
        // `--seed <case_seed> --cases 1` regenerates the very app the
        // failure came from — for every case of the original run.
        assert_eq!(case_seed(9, 0), 9);
        for index in 0..16 {
            let derived = case_seed(1, index);
            assert_eq!(
                gen::generate(derived),
                gen::generate(case_seed(derived, 0)),
                "case {index}'s reported seed must regenerate its app"
            );
        }
        // Later cases still take uncorrelated steps.
        assert_ne!(case_seed(1, 1), case_seed(1, 2));
    }

    #[test]
    fn shrink_while_finds_a_minimal_failing_app() {
        // Stand-in "bug": any app that still contains a loop fails.
        // The shrinker must descend to an app that keeps a loop but
        // nothing else it can drop.
        let has_loop = |app: &GenApp| app.source().contains("for (");
        let seed = (0..200)
            .find(|s| has_loop(&gen::generate(*s)))
            .expect("some seed generates a loop");
        let app = gen::generate(seed);
        let (shrunk, steps) = shrink_while(&app, has_loop, 10_000);
        assert!(has_loop(&shrunk), "shrinking lost the failing property");
        assert!(steps > 0);
        assert!(gen::size(&shrunk) < gen::size(&app));
        // A local minimum: no single edit keeps the property.
        assert!(gen::shrink_candidates(&shrunk)
            .iter()
            .filter(|c| gen::size(c) < gen::size(&shrunk))
            .all(|c| !has_loop(c)));
        // And the reproducer still lowers.
        assert!(crate::oracle::lower_app(&shrunk).is_ok());
    }

    #[test]
    fn short_run_passes_and_counts() {
        let summary = run(&RunnerOptions {
            seed: 1,
            cases: 3,
            fault_every: 3,
            max_shrink_steps: 10,
            verbose: false,
        });
        assert!(summary.passed(), "failures: {:?}", summary.failures);
        assert_eq!(summary.cases_run, 3);
        assert_eq!(summary.fault_cases, 1);
    }
}
