//! # corepart-ir
//!
//! Behavioral-description frontend and control/data-flow graph for the
//! `corepart` low-power hardware/software partitioning library.
//!
//! The paper's flow starts from "a behavioral description of an
//! application" (§3.2); this crate provides that entry point:
//!
//! * [`lexer`] / [`parser`] / [`ast`] — a small C-like behavioral
//!   description language (integers, fixed-size shared-memory arrays,
//!   functions, loops, conditionals).
//! * [`lower`] — lowering with full inlining into an
//!   [`cdfg::Application`], the graph `G = {V, E}` of Fig. 1 step 1,
//!   together with the structure tree that drives cluster decomposition.
//! * [`dataflow`] — `gen[·]`/`use[·]` and liveness analyses in the sense
//!   of Aho/Sethi/Ullman, as used by the paper's bus-transfer estimation
//!   (§3.3).
//! * [`cluster`] — structural cluster decomposition (Fig. 1 step 2) into
//!   a linear cluster chain (Fig. 2 b).
//! * [`interp`] — a profiling interpreter providing block execution
//!   counts (`#ex_times`, §3.4 footnote 14) and operand activity
//!   statistics for downstream switching-energy estimation.
//!
//! ## Example
//!
//! ```
//! use corepart_ir::{lower::lower, parser::parse};
//!
//! let program = parse(r#"
//!     app demo;
//!     var buf[64];
//!     func main() {
//!         for (var i = 0; i < 64; i = i + 1) {
//!             buf[i] = i * 3;
//!         }
//!     }
//! "#)?;
//! let app = lower(&program)?;
//! assert_eq!(app.name(), "demo");
//! # Ok::<(), corepart_ir::error::IrError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod cdfg;
pub mod cluster;
pub mod dataflow;
pub mod domtree;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod lower;
pub mod op;
pub mod opt;
pub mod parser;
pub mod pretty;

pub use cdfg::{Application, StructNode};
pub use cluster::{Cluster, ClusterChain};
pub use domtree::{verify_structure, DomTree};
pub use error::IrError;
pub use interp::{ExecProfile, Interpreter};
pub use op::{ArrayId, BinOp, BlockId, Inst, Operand, Terminator, UnOp, VarId};
