//! Ablation **A3** — the objective-function balance (factor `F` vs the
//! hardware-effort weight).
//!
//! Fig. 1 line 13 scores candidates with
//! `OF = F·E/E_0 + G·GEQ/GEQ_0`; §4 explains that the hardware term is
//! what "rejects clusters that would result in an unacceptably high
//! hardware effort" (the `trick` discussion). This sweep scales the
//! *relative* hardware weight `G/F` and reports the chosen partition's
//! saving and cell count: with hardware nearly free the partitioner
//! grabs big savings at big cores; as hardware gets expensive it picks
//! leaner cores and eventually refuses to synthesize anything.
//!
//! ```text
//! cargo run --release -p corepart-bench --bin ablation_factor_f
//! ```

use corepart::system::SystemConfig;
use corepart_bench::run_workload;
use corepart_workloads::all;

fn main() {
    println!("A3: objective-function hardware-weight sweep (F = 1)\n");
    println!(
        "{:<8} {:>8} {:>10} {:>12} {:>10}",
        "app", "G", "saving%", "HW cells", "clusters"
    );
    for w in all() {
        for g in [0.0, 0.1, 0.2, 1.0, 5.0, 50.0] {
            let config = SystemConfig::new().with_factors(1.0, g);
            let result = run_workload(&w, &config);
            match &result.outcome.best {
                Some((partition, detail)) => {
                    println!(
                        "{:<8} {:>8.1} {:>10.1} {:>12} {:>10}",
                        w.name,
                        g,
                        result.outcome.energy_saving_percent().unwrap_or(0.0),
                        detail.metrics.geq.cells(),
                        partition.clusters.len()
                    );
                }
                None => {
                    println!(
                        "{:<8} {:>8.1} {:>10} {:>12} {:>10}",
                        w.name, g, "--", "--", 0
                    );
                }
            }
        }
        println!();
    }
}
