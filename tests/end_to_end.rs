//! End-to-end integration: behavioral source → verified partition,
//! exercising every crate through the public API.

use corepart::flow::DesignFlow;
use corepart::prepare::Workload;
use corepart::system::SystemConfig;

const CONV: &str = r#"
app conv;

const N = 96;

var x[96];
var h[4];
var y[96];

func main() {
    for (var i = 3; i < N; i = i + 1) {
        y[i] = (x[i] * h[0] + x[i - 1] * h[1] + x[i - 2] * h[2] + x[i - 3] * h[3]) >> 6;
    }
    var energy = 0;
    for (var j = 0; j < N; j = j + 1) {
        energy = energy + y[j] * y[j];
    }
    return energy;
}
"#;

fn conv_workload() -> Workload {
    Workload::from_arrays([
        (
            "x",
            (0..96)
                .map(|i| ((i * 29 + 3) % 200) - 100)
                .collect::<Vec<i64>>(),
        ),
        ("h", vec![13, 25, 25, 13]),
    ])
}

#[test]
fn dsp_kernel_partition_saves_energy_and_time() {
    let result = DesignFlow::new()
        .run_source(CONV, conv_workload())
        .expect("flow succeeds");
    let outcome = &result.outcome;
    let (partition, detail) = outcome.best.as_ref().expect("partition found");

    // Savings in the paper's band for a regular DSP kernel.
    let saving = outcome.energy_saving_percent().expect("saving defined");
    assert!(
        (35.0..=96.0).contains(&saving),
        "saving {saving:.1}% out of band"
    );
    // Performance maintained or improved.
    let chg = outcome.time_change_percent().expect("change defined");
    assert!(chg < 0.0, "expected a speedup, got {chg:+.1}%");
    // The utilization argument held (within the configured gate
    // margin).
    let config = SystemConfig::new();
    assert!(detail.u_r > config.gate_margin * detail.u_up);
    // Hardware effort plausible (paper: < 16k cells; we allow slack).
    assert!(detail.metrics.geq.cells() < 25_000);
    assert!(!partition.clusters.is_empty());
}

#[test]
fn partitioned_system_preserves_program_semantics() {
    // The initial and partitioned ISS runs must compute identical
    // results (the partition only moves work, never changes it).
    use corepart::engine::Engine;
    use corepart::evaluate::Partition;
    use corepart::partition::Partitioner;
    use corepart_ir::{lower::lower, parser::parse};

    let app = lower(&parse(CONV).expect("parses")).expect("lowers");
    let engine = Engine::new(SystemConfig::new()).expect("engine");
    let session = engine.session(&app, &conv_workload());
    let config = session.config();
    let prepared = session.prepared().expect("prepares");
    let initial_stats = &session.baseline().expect("initial").stats;

    let partitioner = Partitioner::new(&session).expect("partitioner");
    for cand in partitioner.candidates() {
        let set = config.resource_set(2).expect("set exists").clone();
        let partition = Partition::single(cand.cluster, set);
        if let Ok(_detail) = partitioner.evaluate(&partition) {
            // evaluate_partition runs the same program functionally;
            // cross-check against the profiling interpreter's result.
            assert_eq!(
                Some(initial_stats.return_value),
                prepared.profile.return_value,
                "ISS and interpreter disagree"
            );
        }
    }
}

#[test]
fn objective_knobs_change_outcomes() {
    // Crushing hardware cost => no partition; free hardware => the
    // largest savings the search can find.
    let expensive = DesignFlow::with_config(SystemConfig::new().with_factors(1.0, 500.0))
        .run_source(CONV, conv_workload())
        .expect("flow succeeds");
    assert!(expensive.outcome.best.is_none());

    let free = DesignFlow::with_config(SystemConfig::new().with_factors(1.0, 0.0))
        .run_source(CONV, conv_workload())
        .expect("flow succeeds");
    let default = DesignFlow::new()
        .run_source(CONV, conv_workload())
        .expect("flow succeeds");
    let s_free = free.outcome.energy_saving_percent().expect("found");
    let s_def = default.outcome.energy_saving_percent().expect("found");
    assert!(
        s_free >= s_def - 1.0,
        "free hardware should not save less: {s_free:.1} vs {s_def:.1}"
    );
}

#[test]
fn report_renders_for_flow_result() {
    use corepart::report::{figure6, Table1};
    let result = DesignFlow::new()
        .run_source(CONV, conv_workload())
        .expect("flow succeeds");
    let mut table = Table1::new();
    table.push(result.table1_entry());
    let text = table.to_string();
    assert!(text.contains("conv"));
    assert!(text.contains(" I "));
    assert!(text.contains(" P "));
    let pts = figure6(&table);
    assert_eq!(pts.len(), 1);
    assert!(pts[0].energy_saving > 0.0);
}

#[test]
fn search_statistics_are_consistent() {
    let result = DesignFlow::new()
        .run_source(CONV, conv_workload())
        .expect("flow succeeds");
    let s = &result.outcome.search;
    assert!(s.candidates > 0);
    assert!(s.estimated >= s.candidates);
    assert!(s.verifications >= 1);
    assert!(s.rejected_by_utilization + s.infeasible <= s.estimated);
}
