//! Multi-ASIC-core partitions — an extension of the paper's
//! single-core flow.
//!
//! §1 and §3 speak of "application specific core(s)", but the published
//! algorithm synthesizes one shared datapath for all chosen clusters.
//! When the clusters have *dissimilar* operation mixes (one multiply-
//! bound, one shift/logic-bound), sharing forces every cluster's
//! execution to clock the union of resources — the idle-switching waste
//! of §3.1 reappears inside the ASIC. Splitting the clusters over
//! several tailored cores removes that idle energy at the price of
//! duplicated controllers/registers and (sometimes) duplicated
//! functional units; "whenever one of the cores is performing, all the
//! other cores are shut down" (§3.1) makes the split energetically
//! clean.
//!
//! [`split_search`] starts from the verified single-core partition and
//! greedily peels clusters into their own cores while the objective
//! improves; every step is fully verified (the µP/cache side is
//! identical for every split of the same cluster set, so the expensive
//! simulation is shared).

use corepart_ir::cluster::ClusterId;
use corepart_sched::cache::ScheduledCluster;
use corepart_sched::datapath::estimate_datapath;
use corepart_sched::energy::gate_level_energy;
use corepart_tech::units::{Cycles, Energy, GateEq};

use crate::error::CorepartError;
use crate::evaluate::Partition;
use crate::partition::Partitioner;
use crate::system::DesignMetrics;

/// A partition whose clusters are distributed over several ASIC cores,
/// each with its own designer resource set.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCorePartition {
    /// The cores; cluster sets are disjoint.
    pub cores: Vec<Partition>,
}

impl MultiCorePartition {
    /// A single-core "split".
    pub fn single(partition: Partition) -> Self {
        MultiCorePartition {
            cores: vec![partition],
        }
    }

    /// All clusters across cores, sorted.
    pub fn all_clusters(&self) -> Vec<ClusterId> {
        let mut v: Vec<ClusterId> = self
            .cores
            .iter()
            .flat_map(|p| p.clusters.iter().copied())
            .collect();
        v.sort();
        v
    }
}

/// Per-core summary of a multi-core evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSummary {
    /// The core's clusters + set.
    pub partition: Partition,
    /// Its energy (active + idle).
    pub energy: Energy,
    /// Its execution cycles.
    pub cycles: Cycles,
    /// Its hardware effort.
    pub geq: GateEq,
    /// Its utilization rate.
    pub u_r: f64,
}

/// The evaluated multi-core design.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCoreDetail {
    /// Whole-system metrics (ASIC column = sum over cores).
    pub metrics: DesignMetrics,
    /// Per-core breakdown.
    pub cores: Vec<CoreSummary>,
}

/// Evaluates a multi-core partition.
///
/// The µP/cache/communication side depends only on the *union* of
/// clusters, so it is taken from a single-core evaluation of that
/// union; each core's datapath is then scheduled, bound and estimated
/// separately, replacing the shared-core ASIC numbers.
///
/// # Errors
///
/// Infeasible resource sets, overlapping cores, or simulation failures.
pub fn evaluate_multicore(
    partitioner: &Partitioner<'_>,
    mc: &MultiCorePartition,
) -> Result<MultiCoreDetail, CorepartError> {
    if mc.cores.is_empty() {
        return Err(CorepartError::Config {
            message: "a multi-core partition needs at least one core".into(),
        });
    }
    let all = mc.all_clusters();
    let mut dedup = all.clone();
    dedup.dedup();
    if dedup.len() != all.len() {
        return Err(CorepartError::Config {
            message: "cores must hold disjoint cluster sets".into(),
        });
    }

    // Shared µP/cache/comm side: evaluate the union on the first core's
    // set (the set only affects the ASIC numbers we are about to
    // replace — it must merely be feasible for the union; fall back to
    // trying every core's set).
    let prepared = partitioner.prepared();
    let config = partitioner.config();
    let union = Partition {
        clusters: all,
        set: mc.cores[0].set.clone(),
    };
    let base = mc
        .cores
        .iter()
        .find_map(|c| {
            let candidate = Partition {
                clusters: union.clusters.clone(),
                set: c.set.clone(),
            };
            partitioner.evaluate(&candidate).ok()
        })
        .ok_or(CorepartError::Config {
            message: "no core's resource set can execute the union of clusters".into(),
        })?;

    // Per-core ASIC side.
    let mut cores = Vec::with_capacity(mc.cores.len());
    let mut asic_energy = Energy::ZERO;
    let mut asic_cycles = Cycles::ZERO;
    let mut geq = GateEq::ZERO;
    for core in &mc.cores {
        // Served from the session's shared schedule cache: the
        // single-core estimate phase already synthesized most
        // candidate cores, so split evaluation stops re-scheduling
        // what the search already computed.
        let synth = partitioner.scheduled(core)?;
        let ScheduledCluster {
            sched,
            binding,
            util,
        } = &*synth;
        let datapath = estimate_datapath(sched, binding, &config.library);
        let asic = gate_level_energy(
            &prepared.app,
            sched,
            binding,
            util,
            &prepared.profile,
            &config.library,
            &config.process,
        );
        asic_energy += asic.total();
        asic_cycles += asic.cycles;
        geq += datapath.total();
        cores.push(CoreSummary {
            partition: core.clone(),
            energy: asic.total(),
            cycles: asic.cycles,
            geq: datapath.total(),
            u_r: util.u_r,
        });
    }

    // Replace the shared-core ASIC numbers with the per-core sums; the
    // µP cycles/energy and cache/memory/bus sides are split-invariant.
    let mut metrics = base.metrics.clone();
    metrics.asic_core = Some(asic_energy);
    metrics.asic_cycles = asic_cycles;
    metrics.geq = geq;

    Ok(MultiCoreDetail { metrics, cores })
}

/// Greedy split search: peel clusters out of the verified single-core
/// partition into their own cores while the objective improves.
///
/// Returns `None` when the single-core search itself found nothing.
///
/// # Errors
///
/// Simulation failures (infeasible split attempts are skipped).
pub fn split_search(
    partitioner: &Partitioner<'_>,
) -> Result<Option<(MultiCorePartition, MultiCoreDetail)>, CorepartError> {
    let outcome = partitioner.run()?;
    let Some((single, _)) = outcome.best else {
        return Ok(None);
    };
    let config = partitioner.config();

    let mut best_mc = MultiCorePartition::single(single.clone());
    let mut best_detail = evaluate_multicore(partitioner, &best_mc)?;
    let of = |d: &MultiCoreDetail| {
        partitioner
            .objective()
            .value(d.metrics.total_energy(), d.metrics.geq)
    };
    let mut best_of = of(&best_detail);

    loop {
        let mut improved = false;
        // Try peeling each cluster of each multi-cluster core into a
        // new core under every designer set.
        'outer: for (ci, core) in best_mc.cores.iter().enumerate() {
            if core.clusters.len() < 2 {
                continue;
            }
            for &cluster in &core.clusters {
                for set in &config.resource_sets {
                    let mut cores = best_mc.cores.clone();
                    cores[ci].clusters.retain(|&c| c != cluster);
                    cores.push(Partition::single(cluster, set.clone()));
                    let candidate = MultiCorePartition { cores };
                    match evaluate_multicore(partitioner, &candidate) {
                        Ok(detail) => {
                            let v = of(&detail);
                            if v < best_of {
                                best_mc = candidate;
                                best_detail = detail;
                                best_of = v;
                                improved = true;
                                break 'outer;
                            }
                        }
                        Err(CorepartError::Sched(_)) => continue,
                        Err(other) => return Err(other),
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    Ok(Some((best_mc, best_detail)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::prepare::Workload;
    use crate::system::SystemConfig;
    use corepart_ir::cdfg::Application;
    use corepart_ir::lower::lower;
    use corepart_ir::parser::parse;

    /// Two hot clusters with deliberately dissimilar mixes: a MAC loop
    /// and a shift/logic loop.
    const MIXED: &str = r#"app mixed; var x[128]; var y[128]; var z[128];
        func main() {
            for (var i = 1; i < 127; i = i + 1) {
                y[i] = x[i] * 9 + x[i - 1] * 5;
            }
            for (var j = 0; j < 128; j = j + 1) {
                z[j] = ((y[j] >> 3) ^ (y[j] << 2)) & 1023;
            }
            return z[7];
        }"#;

    fn setup(config: SystemConfig) -> (Engine, Application, Workload) {
        let app = lower(&parse(MIXED).unwrap()).unwrap();
        let workload = Workload::from_arrays([(
            "x",
            (0..128).map(|i| (i * 37) % 251 - 125).collect::<Vec<i64>>(),
        )]);
        (Engine::new(config).unwrap(), app, workload)
    }

    #[test]
    fn single_core_wrapper_matches_plain_evaluation() {
        let (engine, app, workload) = setup(SystemConfig::new());
        let session = engine.session(&app, &workload);
        let partitioner = Partitioner::new(&session).unwrap();
        let outcome = partitioner.run().unwrap();
        let (single, detail) = outcome.best.unwrap();
        let mc = MultiCorePartition::single(single);
        let mcd = evaluate_multicore(&partitioner, &mc).unwrap();
        // Same clusters, same set => identical metrics.
        assert_eq!(
            mcd.metrics.total_energy().joules(),
            detail.metrics.total_energy().joules()
        );
        assert_eq!(mcd.metrics.geq, detail.metrics.geq);
        assert_eq!(mcd.cores.len(), 1);
    }

    #[test]
    fn overlapping_cores_rejected() {
        let (engine, app, workload) = setup(SystemConfig::new());
        let session = engine.session(&app, &workload);
        let partitioner = Partitioner::new(&session).unwrap();
        let config = session.config();
        let hot = partitioner
            .prepared()
            .chain
            .iter()
            .find(|c| c.is_loop())
            .unwrap()
            .id;
        let mc = MultiCorePartition {
            cores: vec![
                Partition::single(hot, config.resource_set(2).unwrap().clone()),
                Partition::single(hot, config.resource_set(1).unwrap().clone()),
            ],
        };
        assert!(matches!(
            evaluate_multicore(&partitioner, &mc),
            Err(CorepartError::Config { .. })
        ));
    }

    #[test]
    fn empty_multicore_rejected() {
        let (engine, app, workload) = setup(SystemConfig::new());
        let session = engine.session(&app, &workload);
        let partitioner = Partitioner::new(&session).unwrap();
        let mc = MultiCorePartition { cores: vec![] };
        assert!(evaluate_multicore(&partitioner, &mc).is_err());
    }

    #[test]
    fn split_search_never_worse_than_single_core() {
        let (engine, app, workload) = setup(SystemConfig::new());
        let session = engine.session(&app, &workload);
        let partitioner = Partitioner::new(&session).unwrap();
        let outcome = partitioner.run().unwrap();
        let (_, single_detail) = outcome.best.as_ref().unwrap();
        let single_of = partitioner.objective().value(
            single_detail.metrics.total_energy(),
            single_detail.metrics.geq,
        );

        let (mc, detail) = split_search(&partitioner)
            .unwrap()
            .expect("partition exists");
        let multi_of = partitioner
            .objective()
            .value(detail.metrics.total_energy(), detail.metrics.geq);
        assert!(
            multi_of <= single_of + 1e-12,
            "split search must not regress: {multi_of} vs {single_of}"
        );
        assert!(!mc.cores.is_empty());
        // Per-core summaries consistent with the totals.
        let sum: Energy = detail.cores.iter().map(|c| c.energy).sum();
        assert!((sum.joules() - detail.metrics.asic_core.unwrap().joules()).abs() < 1e-15);
    }

    /// Regression for the PR-3 bugfix: the multi-core path used to
    /// call the scheduler and simulator directly, re-synthesizing and
    /// re-simulating per core combination. Routed through the
    /// session's shared artifacts, the `mpg` split search must serve
    /// its per-core schedules from the cache entries the single-core
    /// search already computed, and its union verifications from the
    /// replay memo.
    #[test]
    fn split_search_reuses_schedule_cache_and_replay_on_mpg() {
        let w = corepart_workloads::by_name("mpg").expect("paper workload");
        let app = w.app().expect("workload lowers");
        let workload = Workload::from_arrays(w.arrays(0xC0DE));
        let engine = Engine::new(SystemConfig::new()).unwrap();
        let session = engine.session(&app, &workload);
        let partitioner = Partitioner::new(&session).unwrap();

        // The single-core search populates the caches...
        partitioner.run().unwrap();
        let after_run = session.stats();
        assert_eq!(after_run.replays, 1, "one verification, one replay");

        // ...and the split search must reuse them instead of
        // re-scheduling / re-simulating.
        let result = split_search(&partitioner).unwrap();
        assert!(result.is_some(), "mpg finds a partition");
        let after_split = session.stats();
        assert!(
            after_split.schedule_cache_hits > after_run.schedule_cache_hits,
            "per-core synthesis must hit the shared schedule cache: {after_split:?}"
        );
        assert!(
            after_split.replay_hits > after_run.replay_hits,
            "union verification must be served by the replay engine: {after_split:?}"
        );
        assert_eq!(
            after_split.replays, after_run.replays,
            "no new simulations for an already-verified cluster union"
        );
    }
}
