//! Criterion benchmarks of the batched single-decode replay kernel:
//! verifying K candidate hardware-block sets through
//! `corepart::verify::replay_batch` (one decoded walk, K accounting
//! lanes) against K independent `replay_run` calls (the sequential
//! path each lane is bit-identical to).

use std::collections::HashSet;

use criterion::{criterion_group, criterion_main, Criterion};

use corepart::prepare::{prepare, PreparedApp, Workload};
use corepart::system::SystemConfig;
use corepart::verify::{replay_batch, replay_batch_with, replay_run, BatchOptions};
use corepart_cache::hierarchy::Hierarchy;
use corepart_ir::op::BlockId;
use corepart_isa::simulator::{MemSink, SimConfig, Simulator};
use corepart_isa::trace::{ReferenceTrace, TraceBuilder};
use corepart_workloads::by_name;

struct HierarchySink<'a>(&'a mut Hierarchy);

impl MemSink for HierarchySink<'_> {
    fn ifetch(&mut self, addr: u32) {
        self.0.ifetch(addr);
    }
    fn read(&mut self, addr: u32) {
        self.0.dread(addr);
    }
    fn write(&mut self, addr: u32) {
        self.0.dwrite(addr);
    }
}

fn prepared_digs(config: &SystemConfig) -> PreparedApp {
    let w = by_name("digs").expect("digs exists");
    prepare(
        w.app().expect("lowers"),
        Workload::from_arrays(w.arrays(1)),
        config,
    )
    .expect("prepares")
}

fn fresh_hierarchy(config: &SystemConfig) -> Hierarchy {
    Hierarchy::new(
        config.icache.clone(),
        config.dcache.clone(),
        &config.process,
        config.memory_bytes,
    )
}

fn capture_trace(prepared: &PreparedApp, config: &SystemConfig) -> ReferenceTrace {
    let mut hierarchy = fresh_hierarchy(config);
    let mut sim =
        Simulator::with_energy_table(&prepared.prog, &prepared.app, config.energy_table.clone());
    for (name, data) in &prepared.workload.arrays {
        sim.set_array(name, data).expect("workload array");
    }
    let mut builder = TraceBuilder::new(config.trace_cap_bytes);
    let stats = sim
        .run_recorded(
            &SimConfig::initial(config.max_cycles),
            &mut HierarchySink(&mut hierarchy),
            &mut builder,
        )
        .expect("runs");
    builder.finish(stats.return_value).expect("fits the cap")
}

/// Deterministic candidate k: cluster i is hardware iff bit `i % 4` of
/// `k` is set — tiles the all-software through denser mixes exactly as
/// `baseline_perf` does.
fn candidate_set(prepared: &PreparedApp, k: usize) -> HashSet<BlockId> {
    prepared
        .chain
        .iter()
        .enumerate()
        .filter(|(i, _)| (k >> (i % 4)) & 1 == 1)
        .flat_map(|(_, cluster)| cluster.blocks.iter().copied())
        .collect()
}

fn bench_batched_replay(c: &mut Criterion) {
    let config = SystemConfig::new();
    let prepared = prepared_digs(&config);
    let trace = capture_trace(&prepared, &config);

    for k in [1usize, 4, 16] {
        let candidates: Vec<HashSet<BlockId>> =
            (0..k).map(|i| candidate_set(&prepared, i)).collect();

        c.bench_function(&format!("batched-replay/digs/k{k}"), |b| {
            b.iter(|| {
                replay_batch(
                    &prepared,
                    &config,
                    std::hint::black_box(&trace),
                    &candidates,
                )
                .expect("replays")
            })
        });

        // The stretch-sharded, lane-grouped walk: same K lanes, spread
        // over worker threads that rendezvous at shard boundaries.
        // Against the `k{k}` row above this isolates the threading +
        // snapshot-carry delta; results are bit-identical by design.
        for threads in [2usize, 4] {
            c.bench_function(&format!("batched-replay/digs/k{k}-t{threads}"), |b| {
                b.iter(|| {
                    replay_batch_with(
                        &prepared,
                        &config,
                        std::hint::black_box(&trace),
                        &candidates,
                        BatchOptions::threaded(threads),
                    )
                    .expect("replays")
                })
            });
        }

        c.bench_function(&format!("sequential-replay/digs/k{k}"), |b| {
            b.iter(|| {
                candidates
                    .iter()
                    .map(|hw| {
                        replay_run(&prepared, &config, std::hint::black_box(&trace), hw)
                            .expect("replays")
                    })
                    .collect::<Vec<_>>()
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_batched_replay
}
criterion_main!(benches);
