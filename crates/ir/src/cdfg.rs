//! The lowered control/data-flow graph representation.
//!
//! [`crate::lower::lower`] turns a parsed [`crate::ast::Program`] into an
//! [`Application`]: a single, fully inlined control-flow graph of basic
//! blocks — the graph `G = {V, E}` that step 1 of the paper's
//! partitioning algorithm builds (Fig. 1). Alongside the raw graph, the
//! application carries a *structure tree* recording which blocks came
//! from which source construct (loop, branch, inlined call, straight-line
//! run); the cluster decomposition of Fig. 1 step 2 is "done by
//! structural information of the initial behavioral description solely"
//! (§3.2), and this tree is exactly that information.

use std::collections::BTreeMap;
use std::fmt;

use crate::op::{ArrayId, BlockId, Inst, Terminator, VarId};

/// Metadata of one scalar variable (named or temporary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Source name, or `None` for compiler temporaries.
    pub name: Option<String>,
}

/// Metadata of one global array. Arrays live in the shared memory
/// (Fig. 2 a) at consecutive word addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayInfo {
    /// Source name.
    pub name: String,
    /// Element count (words).
    pub len: u32,
    /// Base address in words within the shared memory.
    pub base_word: u32,
}

/// A basic block: a run of instructions plus one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// The terminator. Blocks under construction use a placeholder
    /// `Return(None)` until sealed.
    pub term: Terminator,
}

/// A node of the structure tree.
#[derive(Debug, Clone, PartialEq)]
pub enum StructNode {
    /// A maximal run of simple statements.
    Straight {
        /// Blocks owned by the run (in order).
        blocks: Vec<BlockId>,
    },
    /// A `while`/`for` loop.
    Loop {
        /// Human-readable label (e.g. `loop@3:5`).
        label: String,
        /// The condition-evaluation block(s).
        header_blocks: Vec<BlockId>,
        /// Structure of the loop body.
        body: Vec<StructNode>,
        /// All blocks owned by the loop (header + body + latch).
        all_blocks: Vec<BlockId>,
    },
    /// An `if`/`else`.
    Branch {
        /// Human-readable label.
        label: String,
        /// Blocks evaluating the condition.
        cond_blocks: Vec<BlockId>,
        /// Structure of the then-branch.
        then_body: Vec<StructNode>,
        /// Structure of the else-branch.
        else_body: Vec<StructNode>,
        /// All blocks owned by the branch construct.
        all_blocks: Vec<BlockId>,
    },
    /// The inlined body of a function called as a top-level statement.
    Inlined {
        /// The callee name.
        label: String,
        /// Structure of the inlined body.
        body: Vec<StructNode>,
        /// All blocks owned by the inlined call.
        all_blocks: Vec<BlockId>,
    },
}

impl StructNode {
    /// All blocks owned by this node, in creation order.
    pub fn blocks(&self) -> &[BlockId] {
        match self {
            StructNode::Straight { blocks } => blocks,
            StructNode::Loop { all_blocks, .. }
            | StructNode::Branch { all_blocks, .. }
            | StructNode::Inlined { all_blocks, .. } => all_blocks,
        }
    }

    /// A short label describing the node.
    pub fn label(&self) -> String {
        match self {
            StructNode::Straight { blocks } => format!(
                "straight@{}",
                blocks.first().map(|b| b.0).unwrap_or_default()
            ),
            StructNode::Loop { label, .. }
            | StructNode::Branch { label, .. }
            | StructNode::Inlined { label, .. } => label.clone(),
        }
    }

    /// Child structure nodes (loop body, both branch arms, inlined
    /// body); empty for straight runs.
    pub fn children(&self) -> Vec<&StructNode> {
        match self {
            StructNode::Straight { .. } => Vec::new(),
            StructNode::Loop { body, .. } | StructNode::Inlined { body, .. } => {
                body.iter().collect()
            }
            StructNode::Branch {
                then_body,
                else_body,
                ..
            } => then_body.iter().chain(else_body.iter()).collect(),
        }
    }

    /// True for loop nodes.
    pub fn is_loop(&self) -> bool {
        matches!(self, StructNode::Loop { .. })
    }
}

/// A fully inlined application: the unit the partitioner operates on.
#[derive(Debug, Clone, PartialEq)]
pub struct Application {
    name: String,
    vars: Vec<VarInfo>,
    arrays: Vec<ArrayInfo>,
    blocks: Vec<Block>,
    entry: BlockId,
    globals_init: Vec<(VarId, i64)>,
    structure: Vec<StructNode>,
}

impl Application {
    /// Assembles an application from parts. Intended for
    /// [`crate::lower::lower`] and tests; most users should lower a
    /// parsed program instead.
    ///
    /// # Panics
    ///
    /// Panics when a terminator references an out-of-range block, an
    /// instruction references an out-of-range variable or array, or the
    /// entry block is out of range — the invariants every later pass
    /// relies on.
    pub fn from_parts(
        name: String,
        vars: Vec<VarInfo>,
        arrays: Vec<ArrayInfo>,
        blocks: Vec<Block>,
        entry: BlockId,
        globals_init: Vec<(VarId, i64)>,
        structure: Vec<StructNode>,
    ) -> Self {
        let app = Application {
            name,
            vars,
            arrays,
            blocks,
            entry,
            globals_init,
            structure,
        };
        app.validate();
        app
    }

    fn validate(&self) {
        assert!(
            (self.entry.0 as usize) < self.blocks.len(),
            "entry block {} out of range",
            self.entry
        );
        for (bi, b) in self.blocks.iter().enumerate() {
            for succ in b.term.successors() {
                assert!(
                    (succ.0 as usize) < self.blocks.len(),
                    "bb{bi} jumps to out-of-range {succ}"
                );
            }
            for inst in &b.insts {
                if let Some(d) = inst.def() {
                    assert!((d.0 as usize) < self.vars.len(), "bb{bi}: {inst} bad def");
                }
                for u in inst.uses() {
                    assert!((u.0 as usize) < self.vars.len(), "bb{bi}: {inst} bad use");
                }
                for a in inst.array_use().into_iter().chain(inst.array_def()) {
                    assert!(
                        (a.0 as usize) < self.arrays.len(),
                        "bb{bi}: {inst} bad array"
                    );
                }
            }
        }
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All scalar variables (named + temporaries).
    pub fn vars(&self) -> &[VarInfo] {
        &self.vars
    }

    /// All global arrays.
    pub fn arrays(&self) -> &[ArrayInfo] {
        &self.arrays
    }

    /// Looks up an array's info.
    pub fn array(&self, id: ArrayId) -> &ArrayInfo {
        &self.arrays[id.0 as usize]
    }

    /// All basic blocks, indexed by [`BlockId`].
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// One block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Initial values of global scalars.
    pub fn globals_init(&self) -> &[(VarId, i64)] {
        &self.globals_init
    }

    /// The top-level structure tree.
    pub fn structure(&self) -> &[StructNode] {
        &self.structure
    }

    /// Total shared-memory footprint of the arrays, in words.
    pub fn memory_words(&self) -> u32 {
        self.arrays.iter().map(|a| a.len).sum()
    }

    /// Total number of instructions across all blocks.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Predecessor lists for every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (bi, b) in self.blocks.iter().enumerate() {
            for s in b.term.successors() {
                preds[s.0 as usize].push(BlockId(bi as u32));
            }
        }
        preds
    }

    /// Blocks in reverse postorder from the entry (a topological-ish
    /// order good for forward dataflow).
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS to survive deep graphs.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.0 as usize] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = self.blocks[b.0 as usize].term.successors();
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.0 as usize] {
                    visited[s.0 as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Pretty-prints the whole CFG (blocks, instructions, structure).
    pub fn dump(&self) -> String {
        format!("{self}")
    }
}

impl fmt::Display for Application {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "app {} (entry {})", self.name, self.entry)?;
        for (i, a) in self.arrays.iter().enumerate() {
            writeln!(f, "  array a{i} {}[{}] @w{}", a.name, a.len, a.base_word)?;
        }
        for (bi, b) in self.blocks.iter().enumerate() {
            writeln!(f, "bb{bi}:")?;
            for inst in &b.insts {
                writeln!(f, "  {inst}")?;
            }
            writeln!(f, "  {}", b.term)?;
        }
        fn node(f: &mut fmt::Formatter<'_>, n: &StructNode, indent: usize) -> fmt::Result {
            writeln!(
                f,
                "{}{} [{} blocks]",
                " ".repeat(indent),
                n.label(),
                n.blocks().len()
            )?;
            for c in n.children() {
                node(f, c, indent + 2)?;
            }
            Ok(())
        }
        writeln!(f, "structure:")?;
        for n in &self.structure {
            node(f, n, 2)?;
        }
        Ok(())
    }
}

/// Counts the operations in a set of blocks grouped by a classifying
/// function — a small helper shared by cluster statistics and reports.
pub fn count_ops_by<K: Ord, F: Fn(&Inst) -> K>(
    app: &Application,
    blocks: &[BlockId],
    classify: F,
) -> BTreeMap<K, usize> {
    let mut map = BTreeMap::new();
    for &b in blocks {
        for inst in &app.block(b).insts {
            *map.entry(classify(inst)).or_insert(0) += 1;
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Operand;

    fn tiny_app() -> Application {
        // bb0: v0 = 1; jump bb1
        // bb1: br v0 ? bb2 : bb3
        // bb2: v1 = v0 + 1; jump bb3
        // bb3: ret
        let blocks = vec![
            Block {
                insts: vec![Inst::Const {
                    dst: VarId(0),
                    value: 1,
                }],
                term: Terminator::Jump(BlockId(1)),
            },
            Block {
                insts: vec![],
                term: Terminator::Branch {
                    cond: Operand::Var(VarId(0)),
                    then_block: BlockId(2),
                    else_block: BlockId(3),
                },
            },
            Block {
                insts: vec![Inst::Binary {
                    dst: VarId(1),
                    op: crate::op::BinOp::Add,
                    lhs: Operand::Var(VarId(0)),
                    rhs: Operand::Const(1),
                }],
                term: Terminator::Jump(BlockId(3)),
            },
            Block {
                insts: vec![],
                term: Terminator::Return(None),
            },
        ];
        Application::from_parts(
            "tiny".into(),
            vec![VarInfo { name: None }, VarInfo { name: None }],
            vec![],
            blocks,
            BlockId(0),
            vec![],
            vec![StructNode::Straight {
                blocks: vec![BlockId(0), BlockId(1), BlockId(2), BlockId(3)],
            }],
        )
    }

    #[test]
    fn predecessors_computed() {
        let app = tiny_app();
        let preds = app.predecessors();
        assert_eq!(preds[0], vec![]);
        assert_eq!(preds[1], vec![BlockId(0)]);
        assert_eq!(preds[3], vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn reverse_postorder_starts_at_entry() {
        let app = tiny_app();
        let rpo = app.reverse_postorder();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        // bb3 must come after bb1 and bb2.
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(BlockId(3)) > pos(BlockId(1)));
        assert!(pos(BlockId(3)) > pos(BlockId(2)));
    }

    #[test]
    fn inst_count_and_display() {
        let app = tiny_app();
        assert_eq!(app.inst_count(), 2);
        let text = app.dump();
        assert!(text.contains("bb0:"));
        assert!(text.contains("v1 = v0 + 1"));
        assert!(text.contains("structure:"));
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn validation_catches_bad_successor() {
        let blocks = vec![Block {
            insts: vec![],
            term: Terminator::Jump(BlockId(5)),
        }];
        let _ = Application::from_parts(
            "bad".into(),
            vec![],
            vec![],
            blocks,
            BlockId(0),
            vec![],
            vec![],
        );
    }

    #[test]
    #[should_panic(expected = "bad def")]
    fn validation_catches_bad_var() {
        let blocks = vec![Block {
            insts: vec![Inst::Const {
                dst: VarId(3),
                value: 0,
            }],
            term: Terminator::Return(None),
        }];
        let _ = Application::from_parts(
            "bad".into(),
            vec![],
            vec![],
            blocks,
            BlockId(0),
            vec![],
            vec![],
        );
    }

    #[test]
    fn struct_node_accessors() {
        let n = StructNode::Loop {
            label: "loop@1".into(),
            header_blocks: vec![BlockId(0)],
            body: vec![StructNode::Straight {
                blocks: vec![BlockId(1)],
            }],
            all_blocks: vec![BlockId(0), BlockId(1)],
        };
        assert!(n.is_loop());
        assert_eq!(n.blocks().len(), 2);
        assert_eq!(n.children().len(), 1);
        assert_eq!(n.label(), "loop@1");
    }

    #[test]
    fn count_ops_by_classifier() {
        let app = tiny_app();
        let by_kind = count_ops_by(&app, &[BlockId(0), BlockId(2)], |i| {
            matches!(i, Inst::Binary { .. })
        });
        assert_eq!(by_kind[&false], 1);
        assert_eq!(by_kind[&true], 1);
    }
}
