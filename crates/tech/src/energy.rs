//! Analytical energy models for caches, main memory and the system bus.
//!
//! The paper feeds "analytical models for main memory energy consumption
//! and caches … with parameters (feature sizes, capacitances) of a 0.8µ
//! CMOS process" (§4) and charges each µP↔ASIC transfer an energy
//! `E_bus read/write` (§3.3, Fig. 3 step 5). This module reconstructs
//! those models from first principles: SRAM array geometry for caches, a
//! DRAM-style page model for main memory, and a capacitive wire model for
//! the on-chip system bus.
//!
//! The models are *per-event*: the trace-driven simulators in
//! `corepart-cache` count events and multiply by these energies.

use crate::process::CmosProcess;
use crate::units::Energy;

/// Analytical per-access energy model of an on-chip SRAM cache.
///
/// First-order CACTI-style decomposition: row decode + wordline +
/// bitlines + sense amps for the data array, the same for the tag array,
/// plus comparator and output drivers. Energies scale with the geometry
/// implied by `(size, line, associativity)`.
///
/// ```
/// use corepart_tech::energy::CacheEnergyModel;
/// use corepart_tech::process::CmosProcess;
///
/// let p = CmosProcess::cmos6();
/// let small = CacheEnergyModel::analytical(&p, 1024, 16, 1);
/// let large = CacheEnergyModel::analytical(&p, 16 * 1024, 16, 1);
/// // Bigger arrays burn more energy per access.
/// assert!(large.read_hit().joules() > small.read_hit().joules());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEnergyModel {
    read_hit: Energy,
    write_hit: Energy,
    tag_probe: Energy,
    line_fill: Energy,
    line_writeback: Energy,
}

impl CacheEnergyModel {
    /// Builds the model from cache geometry under a given process.
    ///
    /// * `size_bytes` — total data capacity.
    /// * `line_bytes` — line (block) size.
    /// * `associativity` — ways per set (1 = direct-mapped).
    ///
    /// # Panics
    ///
    /// Panics when the geometry is degenerate (zero sizes, line larger
    /// than the cache, or a non-power-of-two configuration).
    pub fn analytical(
        process: &CmosProcess,
        size_bytes: usize,
        line_bytes: usize,
        associativity: usize,
    ) -> Self {
        assert!(size_bytes > 0 && line_bytes > 0 && associativity > 0);
        assert!(
            size_bytes.is_multiple_of(line_bytes * associativity),
            "cache geometry must divide evenly"
        );
        assert!(size_bytes.is_power_of_two() && line_bytes.is_power_of_two());

        let sets = size_bytes / (line_bytes * associativity);
        let esw = process.gate_switch_energy();

        // Row decode: log2(sets) stages of predecoding, a handful of
        // gates each.
        let decode_gates = 6.0 * (sets.max(2) as f64).log2();
        // Bitline energy: one access precharges/discharges the bitlines
        // of one set across all ways; column height is `sets`, so the
        // bitline capacitance grows linearly with sets. Charged for
        // line_bytes*8 columns of the selected way plus tag columns of
        // all ways. Scale factor 0.12 ≈ bit-cell drain cap relative to a
        // gate equivalent.
        let bitline_per_col = 0.12 * sets as f64;
        let data_cols = (line_bytes * 8) as f64;
        let tag_bits = 28.0; // ~32-bit address minus index/offset
        let tag_cols = tag_bits * associativity as f64;
        // Sense amps + output drivers: a few gates per read-out bit.
        let sense_gates = 3.0 * (data_cols + tag_cols);
        let comparator_gates = 1.5 * tag_bits * associativity as f64;

        let tag_probe = esw * (decode_gates + bitline_per_col * tag_cols + comparator_gates);
        let word_cols = 32.0; // one word read/written on a hit
        let read_hit =
            tag_probe + esw * (bitline_per_col * word_cols + sense_gates * (word_cols / data_cols));
        // Writes drive bitlines full-swing: slightly costlier than reads.
        let write_hit = tag_probe + esw * (bitline_per_col * word_cols * 1.4);
        // A fill writes the whole line.
        let line_fill = tag_probe + esw * (bitline_per_col * data_cols * 1.4);
        let line_writeback = esw * (bitline_per_col * data_cols);

        CacheEnergyModel {
            read_hit,
            write_hit,
            tag_probe,
            line_fill,
            line_writeback,
        }
    }

    /// Builds a model from explicit per-event energies (for calibration
    /// or unit tests).
    pub fn from_energies(
        read_hit: Energy,
        write_hit: Energy,
        tag_probe: Energy,
        line_fill: Energy,
        line_writeback: Energy,
    ) -> Self {
        CacheEnergyModel {
            read_hit,
            write_hit,
            tag_probe,
            line_fill,
            line_writeback,
        }
    }

    /// Energy of a read hit (tag probe + word read-out).
    pub fn read_hit(&self) -> Energy {
        self.read_hit
    }

    /// Energy of a write hit.
    pub fn write_hit(&self) -> Energy {
        self.write_hit
    }

    /// Energy of a miss's tag probe (the array lookup that failed).
    pub fn tag_probe(&self) -> Energy {
        self.tag_probe
    }

    /// Energy of filling one line from the next level.
    pub fn line_fill(&self) -> Energy {
        self.line_fill
    }

    /// Energy of writing one dirty line back.
    pub fn line_writeback(&self) -> Energy {
        self.line_writeback
    }
}

/// Per-access energy model of the main memory core.
///
/// Off-datapath but on-chip (the paper's SOC integrates the memory
/// core); modelled as a DRAM-like array with a fixed page-activation
/// energy plus a per-word transfer energy. Main-memory accesses are an
/// order of magnitude costlier than cache hits, which is what makes the
/// cache-aware accounting of Table 1 matter.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryEnergyModel {
    read_word: Energy,
    write_word: Energy,
}

impl MemoryEnergyModel {
    /// Builds the model for a memory of `size_bytes` under `process`.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero.
    pub fn analytical(process: &CmosProcess, size_bytes: usize) -> Self {
        assert!(size_bytes > 0);
        let esw = process.gate_switch_energy();
        // Page activation dominates; grows slowly (log) with capacity.
        // Calibrated so a main-memory word access costs several times a
        // cache hit — the relation that makes cache-aware accounting
        // matter in Table 1.
        let pages = (size_bytes / 2048).max(2) as f64;
        let activate_gates = 8_000.0 + 800.0 * pages.log2();
        let transfer_gates = 220.0;
        let read = esw * (activate_gates + transfer_gates);
        // Writes also restore the page: ~15% costlier.
        let write = esw * ((activate_gates + transfer_gates) * 1.15);
        MemoryEnergyModel {
            read_word: read,
            write_word: write,
        }
    }

    /// Builds from explicit energies.
    pub fn from_energies(read_word: Energy, write_word: Energy) -> Self {
        MemoryEnergyModel {
            read_word,
            write_word,
        }
    }

    /// Energy to read one word.
    pub fn read_word(&self) -> Energy {
        self.read_word
    }

    /// Energy to write one word.
    pub fn write_word(&self) -> Energy {
        self.write_word
    }
}

/// Energy model of the shared system bus connecting µP core, ASIC core,
/// caches and memory (Fig. 2 a).
///
/// Each µP↔ASIC communication in the paper's pre-selection estimate
/// costs `E_bus read/write` (Fig. 3 step 5); reads and writes "imply
/// different amounts of energy" (footnote 9).
#[derive(Debug, Clone, PartialEq)]
pub struct BusEnergyModel {
    read: Energy,
    write: Energy,
}

impl BusEnergyModel {
    /// Builds the model for an on-chip bus of `wire_length_mm` under
    /// `process`.
    ///
    /// Wire capacitance ≈ 0.2 pF/mm (0.8µ metal); a transfer switches
    /// address + data (64 wires) at ~50 % activity. A read additionally
    /// pays the turnaround/handshake cycle, making it slightly costlier
    /// than a posted write.
    pub fn analytical(process: &CmosProcess, wire_length_mm: f64) -> Self {
        assert!(wire_length_mm > 0.0);
        let v = process.supply_voltage();
        let c_wire = 0.2e-12 * wire_length_mm; // per wire, farads
        let wires = 64.0;
        let activity = 0.5;
        let transfer = Energy::from_joules(activity * wires * c_wire * v * v);
        BusEnergyModel {
            read: transfer * 1.25,
            write: transfer,
        }
    }

    /// Builds from explicit per-transfer energies.
    pub fn from_energies(read: Energy, write: Energy) -> Self {
        BusEnergyModel { read, write }
    }

    /// Energy of one word read over the bus.
    pub fn read(&self) -> Energy {
        self.read
    }

    /// Energy of one word written over the bus.
    pub fn write(&self) -> Energy {
        self.write
    }

    /// Mean of read and write energy — the `E_bus read/write` constant
    /// used in Fig. 3 step 5 when the transfer direction mix is unknown.
    pub fn read_write_avg(&self) -> Energy {
        (self.read + self.write) * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> CmosProcess {
        CmosProcess::cmos6()
    }

    #[test]
    fn cache_energy_grows_with_size() {
        let e1 = CacheEnergyModel::analytical(&p(), 1 << 10, 16, 1);
        let e2 = CacheEnergyModel::analytical(&p(), 1 << 14, 16, 1);
        assert!(e2.read_hit().joules() > e1.read_hit().joules());
        assert!(e2.line_fill().joules() > e1.line_fill().joules());
    }

    #[test]
    fn cache_energy_grows_with_associativity() {
        // More ways -> more tag columns probed per access.
        let dm = CacheEnergyModel::analytical(&p(), 1 << 13, 16, 1);
        let w4 = CacheEnergyModel::analytical(&p(), 1 << 13, 16, 4);
        assert!(w4.tag_probe().joules() > dm.tag_probe().joules());
    }

    #[test]
    fn fill_costs_more_than_hit() {
        let m = CacheEnergyModel::analytical(&p(), 1 << 13, 32, 2);
        assert!(m.line_fill().joules() > m.read_hit().joules());
        assert!(m.write_hit().joules() >= m.read_hit().joules() * 0.5);
    }

    #[test]
    fn cache_hit_energy_plausible_magnitude() {
        // An 8kB 0.8µ cache hit should land in the 0.1–10 nJ band.
        let m = CacheEnergyModel::analytical(&p(), 8 << 10, 16, 1);
        let nj = m.read_hit().nanojoules();
        assert!((0.05..50.0).contains(&nj), "read hit = {nj} nJ");
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn bad_cache_geometry_panics() {
        let _ = CacheEnergyModel::analytical(&p(), 1000, 16, 3);
    }

    #[test]
    fn memory_access_much_costlier_than_cache_hit() {
        let cache = CacheEnergyModel::analytical(&p(), 8 << 10, 16, 1);
        let mem = MemoryEnergyModel::analytical(&p(), 1 << 20);
        assert!(mem.read_word().joules() > 2.0 * cache.read_hit().joules());
    }

    #[test]
    fn memory_write_costlier_than_read() {
        let mem = MemoryEnergyModel::analytical(&p(), 1 << 20);
        assert!(mem.write_word().joules() > mem.read_word().joules());
    }

    #[test]
    fn memory_energy_grows_with_capacity() {
        let a = MemoryEnergyModel::analytical(&p(), 64 << 10);
        let b = MemoryEnergyModel::analytical(&p(), 4 << 20);
        assert!(b.read_word().joules() > a.read_word().joules());
    }

    #[test]
    fn bus_read_costlier_than_write() {
        let bus = BusEnergyModel::analytical(&p(), 8.0);
        assert!(bus.read().joules() > bus.write().joules());
        let avg = bus.read_write_avg().joules();
        assert!(avg > bus.write().joules() && avg < bus.read().joules());
    }

    #[test]
    fn bus_energy_scales_with_length() {
        let short = BusEnergyModel::analytical(&p(), 2.0);
        let long = BusEnergyModel::analytical(&p(), 10.0);
        assert!((long.read().joules() / short.read().joules() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn from_energies_round_trips() {
        let e = Energy::from_nanojoules(1.0);
        let bus = BusEnergyModel::from_energies(e, e * 0.5);
        assert_eq!(bus.read(), e);
        let mem = MemoryEnergyModel::from_energies(e, e);
        assert_eq!(mem.write_word(), e);
        let c = CacheEnergyModel::from_energies(e, e, e, e, e);
        assert_eq!(c.line_writeback(), e);
    }
}
